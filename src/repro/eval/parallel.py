"""Process-pool evaluation of mapping batches (``n_workers`` plumbing).

The reference model is pure Python/NumPy and holds no shared state, so large
candidate batches parallelize trivially across processes: mappings, hardware
specs and :class:`~repro.timeloop.model.PerformanceResult` objects are all
plain picklable dataclasses.  :class:`ParallelEvaluator` splits a batch into
contiguous chunks, ships each chunk to a worker running the vectorized batch
evaluator, and reassembles results in input order — so results are
bit-identical to the serial path and independent of worker scheduling.

Workers are spawned lazily on first use (searchers that never see a batch
above the engine's parallel threshold never pay the pool start-up cost) and
are shut down via :meth:`close` / the context-manager protocol.  On platforms
with ``fork`` the pool uses it to avoid re-importing the package per worker.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.eval.batch import evaluate_mapping_spec_pairs, evaluate_mappings_batched
from repro.mapping.mapping import Mapping
from repro.timeloop.model import PerformanceResult, as_spec


def _evaluate_chunk(
    mappings: list[Mapping], spec: GemminiSpec, check_validity: bool
) -> list[PerformanceResult]:
    """Worker entry point: vectorized evaluation of one contiguous chunk."""
    return evaluate_mappings_batched(mappings, spec, check_validity=check_validity)


def _evaluate_pair_chunk(
    pairs: list[tuple[Mapping, GemminiSpec]], check_validity: bool
) -> list[PerformanceResult]:
    """Worker entry point: vectorized evaluation of one mixed-spec chunk."""
    return evaluate_mapping_spec_pairs(pairs, check_validity=check_validity)


def _pool_context():
    """Prefer ``fork`` (no re-import cost) where available, else the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelEvaluator:
    """Evaluates mapping batches across ``n_workers`` processes, in order."""

    def __init__(self, n_workers: int, min_chunk_size: int = 16) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if min_chunk_size < 1:
            raise ValueError(f"min_chunk_size must be >= 1, got {min_chunk_size}")
        self.n_workers = n_workers
        self.min_chunk_size = min_chunk_size
        self._executor: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=_pool_context())
        return self._executor

    def evaluate_many(
        self,
        mappings: list[Mapping],
        spec: GemminiSpec | HardwareConfig,
        check_validity: bool = True,
    ) -> list[PerformanceResult]:
        """Evaluate ``mappings`` on ``spec`` concurrently; results keep order."""
        if not mappings:
            return []
        spec = as_spec(spec)
        chunk_size = max(self.min_chunk_size,
                         -(-len(mappings) // self.n_workers))
        if len(mappings) <= chunk_size or self.n_workers == 1:
            return evaluate_mappings_batched(mappings, spec,
                                             check_validity=check_validity)
        executor = self._ensure_executor()
        chunks = [mappings[start:start + chunk_size]
                  for start in range(0, len(mappings), chunk_size)]
        futures = [executor.submit(_evaluate_chunk, chunk, spec, check_validity)
                   for chunk in chunks]
        results: list[PerformanceResult] = []
        for future in futures:  # submission order == input order
            results.extend(future.result())
        return results

    def evaluate_pairs(
        self,
        pairs: "list[tuple[Mapping, GemminiSpec | HardwareConfig]]",
        check_validity: bool = True,
    ) -> list[PerformanceResult]:
        """Evaluate mixed-spec ``(mapping, spec)`` pairs concurrently, in order."""
        if not pairs:
            return []
        resolved = [(mapping, as_spec(spec)) for mapping, spec in pairs]
        chunk_size = max(self.min_chunk_size,
                         -(-len(resolved) // self.n_workers))
        if len(resolved) <= chunk_size or self.n_workers == 1:
            return evaluate_mapping_spec_pairs(resolved,
                                               check_validity=check_validity)
        executor = self._ensure_executor()
        chunks = [resolved[start:start + chunk_size]
                  for start in range(0, len(resolved), chunk_size)]
        futures = [executor.submit(_evaluate_pair_chunk, chunk, check_validity)
                   for chunk in chunks]
        results: list[PerformanceResult] = []
        for future in futures:  # submission order == input order
            results.extend(future.result())
        return results

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
