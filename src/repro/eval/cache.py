"""Memoization of reference-model evaluations.

The black-box search baselines (and DOSA's periodic rounding) repeatedly ask
the reference model about identical ``(mapping, hardware)`` pairs: rounding
snaps nearby fractional factors onto the same divisors, and random samplers
revisit small layers' tiny mapping spaces constantly.  Re-running the full
per-level traffic walk for those repeats is pure waste, so the engine keys
finished :class:`~repro.timeloop.model.PerformanceResult` objects on an exact
mapping/hardware fingerprint and serves repeats from memory.

Cache semantics:

* **Keying** — the fingerprint covers everything the reference model reads:
  the layer's problem dimensions and strides (``LayerDims.dims_key``), the
  per-level loop orderings, the raw temporal/spatial factor bytes, and the
  :class:`~repro.arch.config.HardwareConfig`.  Layer *names* and repetition
  counts are deliberately excluded — two layers with identical dimensions
  share cache entries, matching the paper's unique-layer evaluation.
* **Exactness** — factor arrays are fingerprinted bit-for-bit (``tobytes``),
  so a cache hit returns a result bit-identical to re-evaluation; there is no
  tolerance-based matching.
* **Statistics** — :class:`CacheStats` counts hits/misses/evictions so search
  harnesses and benchmarks can report the achieved hit rate.
* **Bounding** — ``max_entries`` turns the cache into an LRU; ``None``
  (default) keeps every entry, which is appropriate for search runs whose
  sample budgets are far below memory limits.

Cache hits deliberately still count as search *samples*: the paper's sample
accounting charges one evaluation per reference-model query, and serving a
repeat from memory makes the query free in wall-clock time only, keeping
best-so-far traces comparable across cached and uncached runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.timeloop.model import PerformanceResult, as_spec, evaluate_mapping

#: A fully-resolved cache key: (mapping fingerprint, hardware config).
CacheKey = tuple


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from memory (0.0 when never queried)."""
        return self.hits / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%} hit rate, {self.evictions} evictions)")


def mapping_fingerprint(mapping: Mapping) -> tuple:
    """Exact, hashable fingerprint of everything the reference model reads.

    Covers problem dimensions + strides, loop orderings, and the raw bytes of
    the factor arrays.  Excludes the layer name and repetition count, which do
    not affect a single-layer :class:`PerformanceResult`.
    """
    return (
        mapping.layer.dims_key(),
        tuple(o.value for o in mapping.orderings),
        mapping.temporal.tobytes(),
        mapping.spatial.tobytes(),
    )


class EvaluationCache:
    """Memo table of reference-model results keyed on ``(mapping, hardware)``.

    Wraps :func:`repro.timeloop.model.evaluate_mapping`: :meth:`evaluate` is a
    drop-in replacement that consults the table first.  The lower-level
    :meth:`key_for` / :meth:`get` / :meth:`store` / :meth:`record` methods let
    the batch engine manage lookups and statistics itself (e.g. counting an
    in-batch duplicate as a hit even though the entry is stored later).
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, PerformanceResult] = OrderedDict()

    # ------------------------------------------------------------------ #
    # Raw key/value access (no statistics)
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(mapping: Mapping, spec: GemminiSpec | HardwareConfig) -> CacheKey:
        config = spec.config if isinstance(spec, GemminiSpec) else spec
        return (mapping_fingerprint(mapping), config)

    def get(self, key: CacheKey) -> PerformanceResult | None:
        """Entry for ``key`` (refreshing its LRU position), without statistics."""
        result = self._entries.get(key)
        if result is not None and self.max_entries is not None:
            self._entries.move_to_end(key)
        return result

    def store(self, key: CacheKey, result: PerformanceResult) -> None:
        self._entries[key] = result
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def record(self, hit: bool) -> None:
        """Account one lookup in the statistics."""
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1

    # ------------------------------------------------------------------ #
    # The evaluate_mapping wrapper
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        mapping: Mapping,
        spec: GemminiSpec | HardwareConfig,
        check_validity: bool = True,
    ) -> PerformanceResult:
        """:func:`evaluate_mapping` with memoization (bit-identical results)."""
        spec = as_spec(spec)
        key = self.key_for(mapping, spec)
        cached = self.get(key)
        self.record(hit=cached is not None)
        if cached is not None:
            return cached
        result = evaluate_mapping(mapping, spec, check_validity=check_validity)
        self.store(key, result)
        return result

    # ------------------------------------------------------------------ #
    def items(self, start: int = 0) -> list[tuple[CacheKey, PerformanceResult]]:
        """Snapshot of entries in insertion order, from ``start`` on (no LRU
        refresh).

        With the default unbounded cache the order is stable append-only,
        which lets the campaign store spill exactly the entries one job
        added: ``cache.items(start=count_before)``.
        """
        items = islice(self._entries.items(), start, None) if start else \
            self._entries.items()
        return list(items)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()
