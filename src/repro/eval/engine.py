"""The evaluation engine: cached + batched + parallel reference-model queries.

:class:`EvaluationEngine` is the single entry point the search strategies use
to query the reference model.  It composes the three acceleration layers of
this package behind the scalar API's semantics:

1. an :class:`~repro.eval.cache.EvaluationCache` serves exact repeats from
   memory (rounded candidates recur constantly in every strategy),
2. the vectorized batch evaluator of :mod:`repro.eval.batch` amortizes the
   per-mapping Python overhead across cache misses,
3. an optional :class:`~repro.eval.parallel.ParallelEvaluator` spreads large
   miss batches over ``n_workers`` processes.

Every path returns results bit-identical to
:func:`repro.timeloop.model.evaluate_mapping`, so search outcomes are
unchanged — only faster.  The engine is deliberately *not* responsible for
search sample accounting: callers spend samples through their
:class:`~repro.search.api.SearchSession` for every requested evaluation,
cache hit or not, keeping the paper's accounting and trace comparability.
"""

from __future__ import annotations

from typing import Sequence

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.eval.batch import evaluate_mapping_spec_pairs, evaluate_mappings_batched
from repro.eval.cache import CacheKey, CacheStats, EvaluationCache
from repro.eval.parallel import ParallelEvaluator
from repro.mapping.mapping import Mapping
from repro.timeloop.model import (
    NetworkPerformance,
    PerformanceResult,
    as_spec,
)

#: Below this many cache misses the serial vectorized path beats the pool.
_MIN_PARALLEL_BATCH = 64


class EvaluationEngine:
    """Cached, batched, optionally parallel reference-model evaluation.

    ``n_workers=None`` (or ``<= 1``) keeps everything in-process; larger
    values enable the process pool for big miss batches.  A shared ``cache``
    may be passed in to persist hits across searches; by default each engine
    owns a fresh unbounded cache.
    """

    def __init__(
        self,
        cache: EvaluationCache | None = None,
        n_workers: int | None = None,
        check_validity: bool = True,
    ) -> None:
        self.cache = cache if cache is not None else EvaluationCache()
        self.check_validity = check_validity
        self.n_workers = n_workers
        self._pool = (ParallelEvaluator(n_workers)
                      if n_workers is not None and n_workers > 1 else None)

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Cache hit/miss statistics accumulated by this engine."""
        return self.cache.stats

    # ------------------------------------------------------------------ #
    def evaluate(
        self, mapping: Mapping, spec: GemminiSpec | HardwareConfig
    ) -> PerformanceResult:
        """Evaluate one mapping (cache-first, scalar fallback)."""
        return self.cache.evaluate(mapping, as_spec(spec),
                                   check_validity=self.check_validity)

    def evaluate_many(
        self, mappings: list[Mapping], spec: GemminiSpec | HardwareConfig
    ) -> list[PerformanceResult]:
        """Evaluate a batch of mappings on one hardware spec, in order.

        Cache hits (including duplicates *within* the batch) are free; the
        remaining unique misses run through the vectorized batch evaluator,
        or the process pool when the miss batch is large enough.
        """
        if not mappings:
            return []
        spec = as_spec(spec)
        results: list[PerformanceResult | None] = [None] * len(mappings)
        pending: dict[CacheKey, list[int]] = {}
        for index, mapping in enumerate(mappings):
            key = self.cache.key_for(mapping, spec)
            cached = self.cache.get(key)
            if cached is not None:
                self.cache.record(hit=True)
                results[index] = cached
            elif key in pending:
                # A duplicate of an earlier miss in this same batch: it will
                # be served by that single evaluation, i.e. it is a hit.
                self.cache.record(hit=True)
                pending[key].append(index)
            else:
                self.cache.record(hit=False)
                pending[key] = [index]

        if pending:
            unique = [mappings[indices[0]] for indices in pending.values()]
            if self._pool is not None and len(unique) >= _MIN_PARALLEL_BATCH:
                evaluated = self._pool.evaluate_many(
                    unique, spec, check_validity=self.check_validity)
            else:
                evaluated = evaluate_mappings_batched(
                    unique, spec, check_validity=self.check_validity)
            for (key, indices), result in zip(pending.items(), evaluated):
                self.cache.store(key, result)
                for index in indices:
                    results[index] = result
        return results  # type: ignore[return-value]

    def evaluate_pairs(
        self, pairs: "Sequence[tuple[Mapping, GemminiSpec | HardwareConfig]]"
    ) -> list[PerformanceResult]:
        """Evaluate ``(mapping, spec)`` pairs with *mixed* hardware, in order.

        The mixed-spec counterpart of :meth:`evaluate_many`: cache hits
        (including duplicate pairs within the batch) are free, and the
        remaining unique misses run through one vectorized pass — the traffic
        walk is hardware-independent, so mappings bound for different specs
        still share a single stacked analysis.
        """
        if not pairs:
            return []
        resolved = [(mapping, as_spec(spec)) for mapping, spec in pairs]
        results: list[PerformanceResult | None] = [None] * len(resolved)
        pending: dict[CacheKey, list[int]] = {}
        for index, (mapping, spec) in enumerate(resolved):
            key = self.cache.key_for(mapping, spec)
            cached = self.cache.get(key)
            if cached is not None:
                self.cache.record(hit=True)
                results[index] = cached
            elif key in pending:
                self.cache.record(hit=True)
                pending[key].append(index)
            else:
                self.cache.record(hit=False)
                pending[key] = [index]

        if pending:
            unique = [resolved[indices[0]] for indices in pending.values()]
            if self._pool is not None and len(unique) >= _MIN_PARALLEL_BATCH:
                evaluated = self._pool.evaluate_pairs(
                    unique, check_validity=self.check_validity)
            else:
                evaluated = evaluate_mapping_spec_pairs(
                    unique, check_validity=self.check_validity)
            for (key, indices), result in zip(pending.items(), evaluated):
                self.cache.store(key, result)
                for index in indices:
                    results[index] = result
        return results  # type: ignore[return-value]

    def evaluate_network_sets(
        self,
        sets: "Sequence[tuple[list[Mapping], GemminiSpec | HardwareConfig]]",
    ) -> list[NetworkPerformance]:
        """Evaluate several whole-network mapping sets in one batched pass.

        Each ``(mappings, spec)`` set composes exactly like
        :meth:`evaluate_network` (same repetition scaling, same summation
        order), so per-set results are bit-identical to evaluating the sets
        one at a time — but all sets' cache misses share a single vectorized
        evaluation, and duplicates *across* sets on the same hardware are
        served once.  The DOSA searcher scores every active start point's
        rounding evaluation through this path — with the walk itself batched
        too (``DosaSettings.batched_rounding`` routes rounding through the
        ``(S, L)`` kernel in :mod:`repro.mapping.rounding_walk`), a rounding
        point is array-at-a-time end to end: round, re-select orderings,
        reference-evaluate, all without a per-start Python loop.
        """
        pairs = [(mapping, spec) for mappings, spec in sets for mapping in mappings]
        flat = self.evaluate_pairs(pairs)
        performances: list[NetworkPerformance] = []
        cursor = 0
        for mappings, _spec in sets:
            if not mappings:
                raise ValueError("evaluate_network_sets requires non-empty sets")
            results = flat[cursor:cursor + len(mappings)]
            cursor += len(mappings)
            total_latency = sum(r.latency_cycles * m.layer.repeats
                                for r, m in zip(results, mappings))
            total_energy = sum(r.energy * m.layer.repeats
                               for r, m in zip(results, mappings))
            performances.append(NetworkPerformance(
                total_latency=total_latency,
                total_energy=total_energy,
                per_layer=tuple(results),
            ))
        return performances

    def evaluate_network(
        self, mappings: list[Mapping], spec: GemminiSpec | HardwareConfig
    ) -> NetworkPerformance:
        """Cached/batched :func:`repro.timeloop.model.evaluate_network_mappings`.

        Composition (repetition scaling, summation order) matches the scalar
        helper exactly, so whole-network EDPs are bit-identical as well.
        """
        if not mappings:
            raise ValueError("evaluate_network requires at least one mapping")
        results = self.evaluate_many(mappings, spec)
        total_latency = sum(r.latency_cycles * m.layer.repeats
                            for r, m in zip(results, mappings))
        total_energy = sum(r.energy * m.layer.repeats
                           for r, m in zip(results, mappings))
        return NetworkPerformance(
            total_latency=total_latency,
            total_energy=total_energy,
            per_layer=tuple(results),
        )

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the worker pool, if any (idempotent)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
