"""Fast reference-model evaluation: caching, batching and parallelism.

The reference (Timeloop-style) model in :mod:`repro.timeloop` is the
evaluation oracle of every search strategy; this package makes querying it
cheap without changing a single result:

* :mod:`repro.eval.cache` — :class:`EvaluationCache` memoizes
  ``(mapping, hardware)`` evaluations with hit/miss statistics,
* :mod:`repro.eval.batch` — NumPy-vectorized traffic analysis for whole
  candidate batches, verified bit-identical to the scalar walk,
* :mod:`repro.eval.parallel` — :class:`ParallelEvaluator` spreads big batches
  over a process pool (``n_workers``),
* :mod:`repro.eval.engine` — :class:`EvaluationEngine`, the facade the search
  strategies use, composing all three.

See ``benchmarks/bench_model_throughput.py`` for the measured speedups.
"""

from repro.eval.batch import (
    BatchTraffic,
    batch_analyze_traffic,
    evaluate_mappings_batched,
)
from repro.eval.cache import CacheStats, EvaluationCache, mapping_fingerprint
from repro.eval.engine import EvaluationEngine
from repro.eval.parallel import ParallelEvaluator

__all__ = [
    "BatchTraffic",
    "batch_analyze_traffic",
    "evaluate_mappings_batched",
    "CacheStats",
    "EvaluationCache",
    "mapping_fingerprint",
    "EvaluationEngine",
    "ParallelEvaluator",
]
