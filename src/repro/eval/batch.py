"""Vectorized (NumPy) batch traffic analysis, bit-identical to the scalar walk.

:mod:`repro.timeloop.loopnest` analyses one mapping at a time with Python
loops over levels, dimensions and tensors; at a few dozen microseconds per
mapping that is the throughput ceiling of every search strategy.  This module
computes the identical quantities — integer tile sizes, loop-order-aware
reload factors, distinct-tile counts, spatial broadcast/reduction products and
the per-level read/write/update tables — for a whole *batch* of mappings with
array operations, so the per-mapping Python overhead is paid once per batch.

Bit-identity with the scalar path is a hard guarantee, not an approximation:
every factor is an integer represented exactly in float64 and every
intermediate product stays far below 2**53, so products are exact regardless
of association order, and the remaining floating-point operations (divisions,
sums) are issued in the same order as the scalar implementation.  The test
suite and ``benchmarks/bench_model_throughput.py`` assert equality with
``==``, not with a tolerance.

Mappings in one batch may target different layers (different dimensions,
strides, loop orderings); only the hardware specification is shared per call,
matching how the search strategies use it (many candidates, one design).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.components import (
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVELS,
    MEMORY_LEVEL_INDICES,
)
from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.constraints import validate_mapping
from repro.mapping.mapping import (
    DIM_INDEX,
    LoopOrdering,
    Mapping,
    SPATIAL_DIMS,
    ordering_for_tensor,
)
from repro.timeloop.accelergy import DRAM_BLOCK_WORDS
from repro.timeloop.loopnest import TrafficBreakdown, _FACTOR_EPS
from repro.timeloop.model import PerformanceResult, as_spec
from repro.workloads.layer import DIMENSIONS, TENSOR_DIMS, TENSORS

# Loop orderings in enum declaration order; ``ordering_index`` below maps a
# mapping's per-level orderings onto rows of the permutation table.
_ORDERINGS: tuple[LoopOrdering, ...] = tuple(LoopOrdering)
_ORDERING_INDEX: dict[LoopOrdering, int] = {o: i for i, o in enumerate(_ORDERINGS)}

# _ORDER_PERM[o] lists dimension indices in loop order (innermost first) for
# ordering o — the vectorized counterpart of Mapping.loop_order().
_ORDER_PERM = np.array(
    [[DIM_INDEX[d] for d in ordering_for_tensor(o)] for o in _ORDERINGS],
    dtype=np.intp,
)

# _RELEVANT[t][j] is True when dimension j is relevant to tensor t.
_RELEVANT = {
    tensor: np.array([d in TENSOR_DIMS[tensor] for d in DIMENSIONS])
    for tensor in TENSOR_DIMS
}

_DIM_COLS = {dim: DIM_INDEX[dim] for dim in DIMENSIONS}


@dataclass
class _MappingArrays:
    """Stacked factor/layer arrays of one batch of mappings."""

    temporal: np.ndarray      # (B, levels, dims)
    spatial: np.ndarray       # (B, levels, dims)
    ordering_idx: np.ndarray  # (B, levels) indices into _ORDERINGS
    stride_p: np.ndarray      # (B,)
    stride_q: np.ndarray      # (B,)

    @staticmethod
    def from_mappings(mappings: list[Mapping]) -> "_MappingArrays":
        return _MappingArrays(
            temporal=np.stack([m.temporal for m in mappings]),
            spatial=np.stack([m.spatial for m in mappings]),
            ordering_idx=np.array(
                [[_ORDERING_INDEX[o] for o in m.orderings] for m in mappings],
                dtype=np.intp,
            ),
            stride_p=np.array([m.layer.stride_p for m in mappings], dtype=np.float64),
            stride_q=np.array([m.layer.stride_q for m in mappings], dtype=np.float64),
        )


def _inner_extents(arrays: _MappingArrays, level: int) -> np.ndarray:
    """(B, dims) integer extents inside the level tile (ceiling semantics)."""
    extent = arrays.spatial.prod(axis=1)
    if level > 0:
        extent = extent * arrays.temporal[:, :level, :].prod(axis=1)
    return np.maximum(1.0, np.ceil(extent - _FACTOR_EPS))


def _tile_words(arrays: _MappingArrays, inner: np.ndarray, tensor: str) -> np.ndarray:
    """(B,) words of ``tensor`` resident at the level ``inner`` was built for."""
    col = _DIM_COLS
    if tensor == "W":
        return (inner[:, col["R"]] * inner[:, col["S"]]
                * inner[:, col["C"]] * inner[:, col["K"]])
    if tensor == "O":
        return (inner[:, col["P"]] * inner[:, col["Q"]]
                * inner[:, col["K"]] * inner[:, col["N"]])
    if tensor == "I":
        words = inner[:, col["C"]] * inner[:, col["N"]]
        height = arrays.stride_p * (inner[:, col["P"]] - 1.0) + inner[:, col["R"]]
        width = arrays.stride_q * (inner[:, col["Q"]] - 1.0) + inner[:, col["S"]]
        return words * height * width
    raise KeyError(f"unknown tensor {tensor!r}")


def _reload_factors(arrays: _MappingArrays, level: int, tensor: str) -> np.ndarray:
    """(B,) loop-order-aware reload factors (vectorized ``reload_factor``).

    The walk sequence (levels outward, innermost loop first within each level)
    is materialized as a (B, positions) factor matrix via ordering-permutation
    gathers; the ``seen_relevant`` state machine becomes a cumulative-or over
    active relevant positions.
    """
    relevant_by_dim = _RELEVANT[tensor]
    factor_segments = []
    relevant_segments = []
    for walk_level in range(level, LEVEL_DRAM + 1):
        perm = _ORDER_PERM[arrays.ordering_idx[:, walk_level]]          # (B, dims)
        factor_segments.append(
            np.take_along_axis(arrays.temporal[:, walk_level, :], perm, axis=1))
        relevant_segments.append(relevant_by_dim[perm])
    factors = np.concatenate(factor_segments, axis=1)
    relevant = np.concatenate(relevant_segments, axis=1)

    active = factors > 1.0 + _FACTOR_EPS
    relevant_active = active & relevant
    # seen_relevant *before* each position: a relevant active factor occurred
    # strictly earlier in the walk.
    seen_before = (np.cumsum(relevant_active, axis=1) - relevant_active) > 0
    include = active & (relevant | seen_before)
    return np.where(include, factors, 1.0).prod(axis=1)


def _distinct_tiles(arrays: _MappingArrays, level: int, tensor: str) -> np.ndarray:
    """(B,) distinct level tiles of ``tensor`` over the layer."""
    relevant_cols = np.flatnonzero(_RELEVANT[tensor])
    return arrays.temporal[:, level:, :][:, :, relevant_cols].prod(axis=(1, 2))


def _spatial_irrelevant(arrays: _MappingArrays, level: int, tensor: str) -> np.ndarray:
    """(B,) Equation 8/10 spatial broadcast/reduction products at ``level``."""
    irrelevant_cols = np.flatnonzero(~_RELEVANT[tensor])
    return arrays.spatial[:, level, irrelevant_cols].prod(axis=1)


def _total_macs(arrays: _MappingArrays) -> np.ndarray:
    """(B,) MAC counts: the product of every spatial and temporal factor."""
    return (arrays.temporal.prod(axis=1) * arrays.spatial.prod(axis=1)).prod(axis=1)


@dataclass
class BatchTraffic:
    """Per-level/per-tensor traffic of a batch, as (B,)-shaped arrays.

    ``reads``/``writes``/``updates`` mirror the dict layout (and insertion
    order) of the scalar :class:`TrafficBreakdown`, with arrays in place of
    scalars; :meth:`breakdown` extracts one mapping's scalar view.
    """

    macs: np.ndarray
    reads: dict[int, dict[str, np.ndarray]]
    writes: dict[int, dict[str, np.ndarray]]
    updates: dict[int, dict[str, np.ndarray]]

    def __len__(self) -> int:
        return len(self.macs)

    def breakdown(self, index: int) -> TrafficBreakdown:
        """Scalar :class:`TrafficBreakdown` of mapping ``index``.

        Tables are populated in the exact insertion order of
        :func:`analyze_traffic` so downstream dict-value sums are performed in
        the same sequence and stay bit-identical.
        """
        breakdown = TrafficBreakdown(macs=float(self.macs[index]))
        for source, target in ((self.reads, breakdown.reads),
                               (self.writes, breakdown.writes),
                               (self.updates, breakdown.updates)):
            for level in MEMORY_LEVEL_INDICES:
                target[level] = {tensor: float(values[index])
                                 for tensor, values in source.get(level, {}).items()}
        return breakdown

    def per_level_accesses(self) -> np.ndarray:
        """(B, levels) access totals, summed in the scalar path's order."""
        totals = np.zeros((len(self.macs), len(MEMORY_LEVEL_INDICES)))
        for position, level in enumerate(MEMORY_LEVEL_INDICES):
            total = np.zeros(len(self.macs))
            for table in (self.reads, self.writes, self.updates):
                entries = list(table.get(level, {}).values())
                if not entries:
                    continue
                table_sum = np.zeros(len(self.macs))
                for values in entries:  # same order as sum(dict.values())
                    table_sum = table_sum + values
                total = total + table_sum
            totals[:, position] = total
        return totals


def batch_analyze_traffic(
    mappings: list[Mapping], arrays: _MappingArrays | None = None
) -> BatchTraffic:
    """Vectorized :func:`repro.timeloop.loopnest.analyze_traffic` over a batch.

    ``arrays`` lets callers that already stacked the batch (the validity
    screen shares the same arrays) skip a second stacking pass.
    """
    if arrays is None:
        arrays = _MappingArrays.from_mappings(mappings)
    macs = _total_macs(arrays)

    inner_registers = _inner_extents(arrays, LEVEL_REGISTERS)
    inner_accumulator = _inner_extents(arrays, LEVEL_ACCUMULATOR)
    inner_scratchpad = _inner_extents(arrays, LEVEL_SCRATCHPAD)

    spatial_c = arrays.spatial[:, LEVEL_ACCUMULATOR, _DIM_COLS["C"]]
    spatial_k = arrays.spatial[:, LEVEL_SCRATCHPAD, _DIM_COLS["K"]]

    # ---- Weights: registers <- scratchpad <- DRAM ---------------------- #
    writes_w_registers = (_tile_words(arrays, inner_registers, "W")
                          * _reload_factors(arrays, LEVEL_REGISTERS, "W"))
    writes_w_scratchpad = (_tile_words(arrays, inner_scratchpad, "W")
                           * _reload_factors(arrays, LEVEL_SCRATCHPAD, "W"))
    reads_w_registers = macs / _spatial_irrelevant(arrays, LEVEL_REGISTERS, "W")
    reads_w_scratchpad = (writes_w_registers
                          / _spatial_irrelevant(arrays, LEVEL_SCRATCHPAD, "W"))

    # ---- Inputs: scratchpad <- DRAM ------------------------------------ #
    writes_i_scratchpad = (_tile_words(arrays, inner_scratchpad, "I")
                           * _reload_factors(arrays, LEVEL_SCRATCHPAD, "I"))
    reads_i_scratchpad = macs / np.maximum(spatial_k, 1.0)

    # ---- Outputs: accumulator <-> DRAM --------------------------------- #
    output_tile = _tile_words(arrays, inner_accumulator, "O")
    reloads_o = _reload_factors(arrays, LEVEL_ACCUMULATOR, "O")
    distinct_o = _distinct_tiles(arrays, LEVEL_ACCUMULATOR, "O")
    drains = output_tile * reloads_o
    refills = output_tile * np.maximum(reloads_o - distinct_o, 0.0)
    updates_o_accumulator = macs / np.maximum(spatial_c, 1.0)

    return BatchTraffic(
        macs=macs,
        reads={
            LEVEL_REGISTERS: {"W": reads_w_registers},
            LEVEL_ACCUMULATOR: {"O": drains},
            LEVEL_SCRATCHPAD: {"W": reads_w_scratchpad, "I": reads_i_scratchpad},
            LEVEL_DRAM: {"W": writes_w_scratchpad, "I": writes_i_scratchpad,
                         "O": refills},
        },
        writes={
            LEVEL_REGISTERS: {"W": writes_w_registers},
            LEVEL_ACCUMULATOR: {"O": refills},
            LEVEL_SCRATCHPAD: {"W": writes_w_scratchpad, "I": writes_i_scratchpad},
            LEVEL_DRAM: {},
        },
        updates={
            LEVEL_REGISTERS: {},
            LEVEL_ACCUMULATOR: {"O": updates_o_accumulator},
            LEVEL_SCRATCHPAD: {},
            LEVEL_DRAM: {"O": drains},
        },
    )


def _batch_validate(mappings: list[Mapping], arrays: _MappingArrays) -> None:
    """Vectorized structural validity screen; delegates failures for messages.

    Mirrors :func:`repro.mapping.constraints.validate_mapping`; on the first
    violating mapping the scalar validator produces the canonical error text,
    so batch and scalar paths raise identical exceptions.
    """
    tolerance = 1e-6
    expected = np.array([[m.layer.dim(d) for d in DIMENSIONS] for m in mappings],
                        dtype=np.float64)
    products = arrays.temporal.prod(axis=1) * arrays.spatial.prod(axis=1)
    ws_forbidden = np.ones((arrays.spatial.shape[1], arrays.spatial.shape[2]), dtype=bool)
    for level, dim in SPATIAL_DIMS:
        ws_forbidden[level, DIM_INDEX[dim]] = False

    suspect = (
        (arrays.temporal < 1.0 - tolerance).any(axis=(1, 2))
        | (arrays.spatial < 1.0 - tolerance).any(axis=(1, 2))
        | (np.abs(arrays.temporal - np.round(arrays.temporal)) > 1e-9).any(axis=(1, 2))
        | (np.abs(arrays.spatial - np.round(arrays.spatial)) > 1e-9).any(axis=(1, 2))
        | (arrays.spatial[:, ws_forbidden] > 1.0 + tolerance).any(axis=1)
        | (np.abs(products - expected) > tolerance * np.maximum(expected, 1.0)).any(axis=1)
    )
    # Only suspect rows pay for the scalar validator, which produces the
    # canonical error message (identical to the evaluate_mapping path).
    for index in np.flatnonzero(suspect):
        problems = validate_mapping(mappings[int(index)])
        if problems:
            raise ValueError(
                "cannot evaluate an invalid mapping: " + "; ".join(problems))


def _dram_accesses_block_rounded(traffic: BatchTraffic) -> np.ndarray:
    """(B,) DRAM accesses, each tensor's traffic rounded up to whole blocks.

    Vectorized :func:`repro.timeloop.accelergy._dram_accesses_block_rounded`:
    tensors accumulate in the same W, I, O order with the same
    skip-nonpositive rule, so totals are bit-identical.
    """
    total = np.zeros(len(traffic))
    for tensor in TENSORS:
        words = np.zeros(len(traffic))
        for table in (traffic.reads, traffic.writes, traffic.updates):
            values = table.get(LEVEL_DRAM, {}).get(tensor)
            if values is not None:
                words = words + values
        blocks = np.ceil(words / DRAM_BLOCK_WORDS) * DRAM_BLOCK_WORDS
        total = total + np.where(words > 0.0, blocks, 0.0)
    return total


def _spec_rate_arrays(
    spec: "GemminiSpec | list[GemminiSpec]",
) -> tuple[np.ndarray, np.ndarray, "float | np.ndarray"]:
    """Bandwidth / access-energy / MAC-energy rates of one spec or one per row.

    For a single spec the arrays are ``(levels,)`` shaped and broadcast over
    the batch exactly as before; for a per-mapping spec list they are
    ``(B, levels)`` shaped, so every downstream operation stays elementwise
    per row — the same float operations in the same order, hence the same
    bit-identity guarantee.
    """
    specs = [spec] if isinstance(spec, GemminiSpec) else spec
    bandwidths = np.empty((len(specs), len(MEMORY_LEVEL_INDICES)))
    access_energy = np.empty((len(specs), len(MEMORY_LEVEL_INDICES)))
    for row, entry in enumerate(specs):
        for position, level in enumerate(MEMORY_LEVEL_INDICES):
            bandwidth = entry.bandwidth(level)
            if not bandwidth > 0.0:
                raise ValueError(
                    f"cannot compute memory latency: level {level} "
                    f"({MEMORY_LEVELS[level].name}) has non-positive bandwidth "
                    f"{bandwidth!r} words/cycle"
                )
            bandwidths[row, position] = bandwidth
            access_energy[row, position] = entry.energy_per_access(level)
    if isinstance(spec, GemminiSpec):
        return bandwidths[0], access_energy[0], spec.mac_energy
    return bandwidths, access_energy, np.array([s.mac_energy for s in specs])


def _results_from_traffic_batch(
    traffic: BatchTraffic, arrays: _MappingArrays,
    spec: "GemminiSpec | list[GemminiSpec]",
) -> list[PerformanceResult]:
    """Assemble :class:`PerformanceResult` objects for a whole batch at once.

    The vectorized counterpart of the per-mapping
    :func:`repro.timeloop.model._result_from_traffic` +
    :func:`repro.timeloop.accelergy.energy_breakdown` walk: latencies, the
    roofline max and the energy sum are computed as ``(B,)`` arrays with the
    scalar path's operation order, so every field stays bit-identical.
    ``spec`` may be one shared spec or a list of one spec per mapping (the
    cross-start rounding-point batches of the DOSA searcher evaluate several
    derived hardware configurations in one call).
    """
    macs = traffic.macs
    count = len(macs)
    parallelism = np.maximum(arrays.spatial.reshape(count, -1).prod(axis=1), 1.0)
    compute_latency = macs / parallelism

    accesses = traffic.per_level_accesses()  # (B, levels), scalar-order sums
    bandwidths, access_energy, mac_energy = _spec_rate_arrays(spec)
    memory_latency = accesses / bandwidths
    latency = np.maximum(compute_latency, memory_latency.max(axis=1))

    # Energy in the scalar association order — mac_energy + (sum of level
    # energies), levels inside out, the DRAM column block-rounded per tensor.
    level_total = np.zeros(count)
    for position, level in enumerate(MEMORY_LEVEL_INDICES):
        level_accesses = (_dram_accesses_block_rounded(traffic)
                          if level == LEVEL_DRAM else accesses[:, position])
        level_total = level_total + level_accesses * access_energy[..., position]
    energy = macs * mac_energy + level_total

    return [
        PerformanceResult(
            latency_cycles=float(latency[index]),
            energy=float(energy[index]),
            compute_latency=float(compute_latency[index]),
            memory_latency={level: float(memory_latency[index, position])
                            for position, level in enumerate(MEMORY_LEVEL_INDICES)},
            accesses={level: float(accesses[index, position])
                      for position, level in enumerate(MEMORY_LEVEL_INDICES)},
            macs=float(macs[index]),
        )
        for index in range(count)
    ]


def evaluate_mappings_batched(
    mappings: list[Mapping],
    spec: GemminiSpec | HardwareConfig,
    check_validity: bool = True,
) -> list[PerformanceResult]:
    """Batch counterpart of :func:`repro.timeloop.model.evaluate_mapping`.

    Returns one :class:`PerformanceResult` per input mapping, in order, with
    every field bit-identical to the scalar path.  All mappings are evaluated
    on the same hardware ``spec``; layers may differ between mappings.
    """
    if not mappings:
        return []
    spec = as_spec(spec)
    arrays = _MappingArrays.from_mappings(mappings)
    if check_validity:
        _batch_validate(mappings, arrays)
    traffic = batch_analyze_traffic(mappings, arrays)
    return _results_from_traffic_batch(traffic, arrays, spec)


def evaluate_mapping_spec_pairs(
    pairs: "list[tuple[Mapping, GemminiSpec | HardwareConfig]]",
    check_validity: bool = True,
) -> list[PerformanceResult]:
    """One vectorized pass over ``(mapping, spec)`` pairs with *mixed* specs.

    The traffic walk is hardware-independent, so a batch spanning several
    hardware configurations (e.g. every start point's rounding evaluation of
    one DOSA step, each on its own derived hardware) still pays the stacked
    array analysis only once; the spec enters only through the per-row
    bandwidth/energy rates.  Each pair's result is bit-identical to
    ``evaluate_mapping(mapping, spec)``.
    """
    if not pairs:
        return []
    mappings = [mapping for mapping, _ in pairs]
    specs = [as_spec(spec) for _, spec in pairs]
    arrays = _MappingArrays.from_mappings(mappings)
    if check_validity:
        _batch_validate(mappings, arrays)
    traffic = batch_analyze_traffic(mappings, arrays)
    return _results_from_traffic_batch(traffic, arrays, specs)
