"""Latency, energy and EDP evaluation of mappings (reference model).

Latency follows the roofline composition of Equation 12: compute latency is
the MAC count divided by the utilized parallelism, each memory level's latency
is its access count divided by its bandwidth, and the layer latency is the
maximum of all of these.  Energy is event-based (Equation 13, via
:mod:`repro.timeloop.accelergy`), and whole-network EDP multiplies the summed
energy by the summed latency (Equation 14), scaling repeated layers by their
repetition count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.arch.components import MEMORY_LEVELS, MEMORY_LEVEL_INDICES
from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.constraints import validate_mapping
from repro.mapping.mapping import Mapping
from repro.timeloop.accelergy import energy_breakdown
from repro.timeloop.loopnest import TrafficBreakdown, analyze_traffic


@lru_cache(maxsize=1024)
def _spec_for_config(config: HardwareConfig) -> GemminiSpec:
    return GemminiSpec(config)


def as_spec(spec: GemminiSpec | HardwareConfig) -> GemminiSpec:
    """Resolve a spec-or-config argument to a :class:`GemminiSpec` once.

    Search strategies evaluate thousands of mappings per hardware design;
    memoizing the config-to-spec wrap keeps that re-wrap out of the per-call
    hot path (configs are frozen and hashable, so reuse is exact).
    """
    if isinstance(spec, HardwareConfig):
        return _spec_for_config(spec)
    return spec


@dataclass(frozen=True)
class PerformanceResult:
    """Latency/energy/EDP of one layer's mapping on one hardware config."""

    latency_cycles: float
    energy: float
    compute_latency: float
    memory_latency: dict[int, float]
    accesses: dict[int, float]
    macs: float

    @property
    def edp(self) -> float:
        return self.latency_cycles * self.energy

    @property
    def bound(self) -> str:
        """Whether the layer is compute- or memory-bound under this mapping."""
        worst_memory = max(self.memory_latency.values())
        return "compute" if self.compute_latency >= worst_memory else "memory"

    @property
    def utilization(self) -> float:
        """Fraction of cycles the PE array spends on useful compute."""
        if self.latency_cycles <= 0:
            return 0.0
        return self.compute_latency / self.latency_cycles


def evaluate_mapping(
    mapping: Mapping,
    spec: GemminiSpec | HardwareConfig,
    check_validity: bool = True,
) -> PerformanceResult:
    """Evaluate one integral mapping on a hardware configuration.

    ``spec`` may be a :class:`GemminiSpec` or a bare :class:`HardwareConfig`.
    ``check_validity`` raises if the mapping violates structural constraints
    (it does *not* check that the mapping fits the hardware — the mapping-first
    flow derives hardware from mappings, so capacity is a derived quantity).
    """
    spec = as_spec(spec)
    if check_validity:
        problems = validate_mapping(mapping)
        if problems:
            raise ValueError(
                "cannot evaluate an invalid mapping: " + "; ".join(problems)
            )
    traffic = analyze_traffic(mapping)
    return _result_from_traffic(traffic, mapping, spec)


def _result_from_traffic(
    traffic: TrafficBreakdown, mapping: Mapping, spec: GemminiSpec
) -> PerformanceResult:
    parallelism = max(mapping.spatial_product(), 1.0)
    compute_latency = traffic.macs / parallelism
    memory_latency = {}
    for level in MEMORY_LEVEL_INDICES:
        bandwidth = spec.bandwidth(level)
        if not bandwidth > 0.0:
            raise ValueError(
                f"cannot compute memory latency: level {level} "
                f"({MEMORY_LEVELS[level].name}) has non-positive bandwidth "
                f"{bandwidth!r} words/cycle"
            )
        memory_latency[level] = traffic.accesses(level) / bandwidth
    latency = max(compute_latency, max(memory_latency.values()))
    energy = energy_breakdown(traffic, spec).total
    return PerformanceResult(
        latency_cycles=latency,
        energy=energy,
        compute_latency=compute_latency,
        memory_latency=memory_latency,
        accesses=traffic.per_level_accesses(),
        macs=traffic.macs,
    )


@dataclass(frozen=True)
class NetworkPerformance:
    """Aggregate performance of a whole network (Equation 14)."""

    total_latency: float
    total_energy: float
    per_layer: tuple[PerformanceResult, ...]

    @property
    def edp(self) -> float:
        return self.total_latency * self.total_energy


def evaluate_network_mappings(
    mappings: list[Mapping],
    spec: GemminiSpec | HardwareConfig,
    check_validity: bool = True,
) -> NetworkPerformance:
    """Evaluate one mapping per unique layer and compose whole-network EDP.

    Each layer's energy and latency are multiplied by its repetition count
    before summation, then EDP = (sum of energies) x (sum of latencies).
    """
    spec = as_spec(spec)
    if not mappings:
        raise ValueError("evaluate_network_mappings requires at least one mapping")
    results = [evaluate_mapping(m, spec, check_validity=check_validity) for m in mappings]
    total_latency = sum(r.latency_cycles * m.layer.repeats for r, m in zip(results, mappings))
    total_energy = sum(r.energy * m.layer.repeats for r, m in zip(results, mappings))
    return NetworkPerformance(
        total_latency=total_latency,
        total_energy=total_energy,
        per_layer=tuple(results),
    )
