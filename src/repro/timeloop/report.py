"""Timeloop-style text reports for a mapping's per-level statistics.

The original Timeloop prints, for every memory level, the tile sizes, access
counts, bandwidth demand and energy split of the evaluated mapping.  These
reports are what architects actually read when debugging a design point, so
the reproduction provides the same view on top of its reference model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components import MEMORY_LEVEL_INDICES
from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.constraints import capacity_requirements
from repro.mapping.mapping import Mapping
from repro.timeloop.accelergy import energy_breakdown
from repro.timeloop.loopnest import analyze_traffic
from repro.timeloop.model import evaluate_mapping
from repro.utils.formatting import format_si, format_table
from repro.workloads.layer import TENSORS

_LEVEL_NAMES = {0: "registers", 1: "accumulator", 2: "scratchpad", 3: "dram"}


@dataclass(frozen=True)
class LevelReport:
    """Per-level statistics of one evaluated mapping."""

    level: int
    name: str
    capacity_required_words: float
    capacity_available_words: float
    reads: float
    writes: float
    updates: float
    bandwidth_demand_words_per_cycle: float
    bandwidth_available_words_per_cycle: float
    energy: float

    @property
    def accesses(self) -> float:
        return self.reads + self.writes + self.updates

    @property
    def occupancy(self) -> float:
        """Fraction of the level's capacity used by the mapping's tiles."""
        if self.capacity_available_words == float("inf"):
            return 0.0
        if self.capacity_available_words <= 0:
            return 0.0
        return self.capacity_required_words / self.capacity_available_words


@dataclass(frozen=True)
class MappingReport:
    """Full report: per-level statistics plus the headline metrics."""

    mapping: Mapping
    hardware: HardwareConfig
    levels: tuple[LevelReport, ...]
    latency_cycles: float
    compute_latency: float
    energy: float
    macs: float
    bound: str

    @property
    def edp(self) -> float:
        return self.latency_cycles * self.energy

    @property
    def pe_utilization(self) -> float:
        """Utilized PEs divided by available PEs."""
        return min(1.0, self.mapping.spatial_product() / self.hardware.num_pes)

    def to_text(self) -> str:
        """Render the report as the loop nest plus an aligned per-level table."""
        rows = []
        for level in self.levels:
            capacity = ("inf" if level.capacity_available_words == float("inf")
                        else format_si(level.capacity_available_words, "w"))
            rows.append([
                level.name,
                format_si(level.capacity_required_words, "w"),
                capacity,
                f"{100.0 * level.occupancy:.1f}%",
                format_si(level.reads),
                format_si(level.writes),
                format_si(level.updates),
                f"{level.bandwidth_demand_words_per_cycle:.2f}/{level.bandwidth_available_words_per_cycle:.0f}",
                format_si(level.energy),
            ])
        table = format_table(
            ["level", "tile", "capacity", "occupancy", "reads", "writes", "updates",
             "bw demand/avail", "energy"],
            rows,
        )
        summary = (
            f"latency = {self.latency_cycles:,.0f} cycles ({self.bound}-bound, "
            f"compute {self.compute_latency:,.0f}); "
            f"energy = {self.energy:,.1f}; EDP = {self.edp:.4e}; "
            f"PE utilization = {100.0 * self.pe_utilization:.1f}%"
        )
        return "\n".join([self.mapping.describe(), "", table, "", summary])


def mapping_report(mapping: Mapping, hardware: HardwareConfig) -> MappingReport:
    """Evaluate ``mapping`` on ``hardware`` and collect the per-level statistics."""
    spec = GemminiSpec(hardware)
    result = evaluate_mapping(mapping, spec, check_validity=False)
    traffic = analyze_traffic(mapping)
    energy = energy_breakdown(traffic, spec)
    requirements = capacity_requirements(mapping)

    levels = []
    for level in MEMORY_LEVEL_INDICES:
        reads = sum(traffic.reads.get(level, {}).get(t, 0.0) for t in TENSORS)
        writes = sum(traffic.writes.get(level, {}).get(t, 0.0) for t in TENSORS)
        updates = sum(traffic.updates.get(level, {}).get(t, 0.0) for t in TENSORS)
        accesses = reads + writes + updates
        levels.append(LevelReport(
            level=level,
            name=_LEVEL_NAMES[level],
            capacity_required_words=requirements[level],
            capacity_available_words=spec.capacity_words(level),
            reads=reads,
            writes=writes,
            updates=updates,
            bandwidth_demand_words_per_cycle=(accesses / result.latency_cycles
                                              if result.latency_cycles > 0 else 0.0),
            bandwidth_available_words_per_cycle=spec.bandwidth(level),
            energy=energy.level_energy[level],
        ))
    return MappingReport(
        mapping=mapping,
        hardware=hardware,
        levels=tuple(levels),
        latency_cycles=result.latency_cycles,
        compute_latency=result.compute_latency,
        energy=result.energy,
        macs=result.macs,
        bound=result.bound,
    )
