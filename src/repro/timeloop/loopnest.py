"""Per-level traffic analysis of an integral mapping (reference semantics).

For each memory level and each tensor it stores, the analysis computes

* **writes** — words brought in from the next-outer level holding the tensor,
* **reads** — words sent toward the processing elements (or drained outward,
  for the accumulator's output tile),
* **updates** — output/partial-sum words written from the MAC side.

The reuse analysis is loop-order aware: walking the temporal loops from the
target level outward (innermost loop first within each level), loops over
dimensions irrelevant to a tensor that appear before the first relevant loop
provide temporal reuse and do not force refetches; every loop after the first
relevant one does (paper Section 4.2).  Spatial factors never force refetches
(they are part of the resident tile) but do reduce traffic through spatial
reduction (partial sums summed inside the array) and broadcast (one read
serving many PEs), per Equations 8-11.

Unlike the differentiable model, this implementation uses integer arithmetic:
tile extents are rounded up to whole elements before being multiplied, which
reproduces the ceiling semantics of program-based analytical models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arch.components import (
    BYPASS_MATRIX,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.mapping.mapping import DIM_INDEX, Mapping
from repro.workloads.layer import DIMENSIONS, TENSOR_DIMS, TENSORS

_FACTOR_EPS = 1e-9


def _integer_inner_extent(mapping: Mapping, level: int, dim: str) -> int:
    """Integer extent of ``dim`` inside the level-``level`` tile (ceil semantics)."""
    j = DIM_INDEX[dim]
    extent = float(mapping.spatial[:, j].prod())
    for inner_level in range(level):
        extent *= float(mapping.temporal[inner_level, j])
    return max(1, int(math.ceil(extent - _FACTOR_EPS)))


def tile_words(mapping: Mapping, level: int, tensor: str) -> int:
    """Words of ``tensor`` resident at ``level`` (integer tile sizes)."""
    layer = mapping.layer
    if tensor == "W":
        words = 1
        for dim in ("R", "S", "C", "K"):
            words *= _integer_inner_extent(mapping, level, dim)
        return words
    if tensor == "O":
        words = 1
        for dim in ("P", "Q", "K", "N"):
            words *= _integer_inner_extent(mapping, level, dim)
        return words
    if tensor == "I":
        words = (_integer_inner_extent(mapping, level, "C")
                 * _integer_inner_extent(mapping, level, "N"))
        height = (layer.stride_p * (_integer_inner_extent(mapping, level, "P") - 1)
                  + _integer_inner_extent(mapping, level, "R"))
        width = (layer.stride_q * (_integer_inner_extent(mapping, level, "Q") - 1)
                 + _integer_inner_extent(mapping, level, "S"))
        return words * height * width
    raise KeyError(f"unknown tensor {tensor!r}")


def reload_factor(mapping: Mapping, level: int, tensor: str) -> float:
    """Number of times the level-``level`` tile of ``tensor`` is (re)loaded.

    Walks the temporal loops from ``level`` outward, innermost loop first
    within each level per that level's ordering.  Loops over dimensions
    irrelevant to ``tensor`` preceding the first relevant loop are reuse loops
    and are skipped; everything afterwards multiplies.
    """
    relevant = TENSOR_DIMS[tensor]
    product = 1.0
    seen_relevant = False
    for walk_level in range(level, LEVEL_DRAM + 1):
        for dim in mapping.loop_order(walk_level):
            factor = mapping.temporal_factor(walk_level, dim)
            if factor <= 1.0 + _FACTOR_EPS:
                continue
            if not seen_relevant and dim not in relevant:
                continue
            product *= factor
            if dim in relevant:
                seen_relevant = True
    return product


def distinct_tiles(mapping: Mapping, level: int, tensor: str) -> float:
    """Number of distinct level-``level`` tiles of ``tensor`` over the layer."""
    relevant = TENSOR_DIMS[tensor]
    product = 1.0
    for walk_level in range(level, LEVEL_DRAM + 1):
        for dim in DIMENSIONS:
            if dim in relevant:
                product *= mapping.temporal_factor(walk_level, dim)
    return product


def spatial_irrelevant_product(mapping: Mapping, level: int, tensor: str) -> float:
    """Equation 8/10: product of level-``level`` spatial factors of dims not in ``tensor``."""
    relevant = TENSOR_DIMS[tensor]
    product = 1.0
    for dim in DIMENSIONS:
        if dim not in relevant:
            product *= mapping.spatial_factor(level, dim)
    return product


def total_macs(mapping: Mapping) -> float:
    """Total multiply-accumulate operations implied by the mapping's factors."""
    product = 1.0
    for dim in DIMENSIONS:
        product *= mapping.factor_product(dim)
    return product


@dataclass
class TrafficBreakdown:
    """Reads / writes / updates per memory level and tensor, plus MAC count."""

    macs: float
    reads: dict[int, dict[str, float]] = field(default_factory=dict)
    writes: dict[int, dict[str, float]] = field(default_factory=dict)
    updates: dict[int, dict[str, float]] = field(default_factory=dict)

    def accesses(self, level: int) -> float:
        """Total accesses at ``level`` (reads + writes + updates over tensors)."""
        total = 0.0
        for table in (self.reads, self.writes, self.updates):
            total += sum(table.get(level, {}).values())
        return total

    def per_level_accesses(self) -> dict[int, float]:
        return {level: self.accesses(level) for level in MEMORY_LEVEL_INDICES}

    def tensor_traffic(self, level: int, tensor: str) -> float:
        """Accesses at ``level`` attributable to ``tensor``."""
        return (self.reads.get(level, {}).get(tensor, 0.0)
                + self.writes.get(level, {}).get(tensor, 0.0)
                + self.updates.get(level, {}).get(tensor, 0.0))


def analyze_traffic(mapping: Mapping) -> TrafficBreakdown:
    """Full per-level, per-tensor traffic analysis of an integral mapping."""
    macs = total_macs(mapping)
    breakdown = TrafficBreakdown(macs=macs)
    for table in (breakdown.reads, breakdown.writes, breakdown.updates):
        for level in MEMORY_LEVEL_INDICES:
            table[level] = {}

    spatial_c = mapping.spatial_factor(LEVEL_ACCUMULATOR, "C")
    spatial_k = mapping.spatial_factor(LEVEL_SCRATCHPAD, "K")

    # ---- Weights: registers <- scratchpad <- DRAM -------------------- #
    writes_w_registers = tile_words(mapping, LEVEL_REGISTERS, "W") * reload_factor(
        mapping, LEVEL_REGISTERS, "W"
    )
    writes_w_scratchpad = tile_words(mapping, LEVEL_SCRATCHPAD, "W") * reload_factor(
        mapping, LEVEL_SCRATCHPAD, "W"
    )
    breakdown.writes[LEVEL_REGISTERS]["W"] = writes_w_registers
    breakdown.writes[LEVEL_SCRATCHPAD]["W"] = writes_w_scratchpad
    # Each MAC consumes the stationary weight from its local register.
    breakdown.reads[LEVEL_REGISTERS]["W"] = macs / spatial_irrelevant_product(
        mapping, LEVEL_REGISTERS, "W"
    )
    # Scratchpad feeds the register file; DRAM feeds the scratchpad.
    breakdown.reads[LEVEL_SCRATCHPAD]["W"] = writes_w_registers / spatial_irrelevant_product(
        mapping, LEVEL_SCRATCHPAD, "W"
    )
    breakdown.reads[LEVEL_DRAM]["W"] = writes_w_scratchpad

    # ---- Inputs: scratchpad <- DRAM ----------------------------------- #
    writes_i_scratchpad = tile_words(mapping, LEVEL_SCRATCHPAD, "I") * reload_factor(
        mapping, LEVEL_SCRATCHPAD, "I"
    )
    breakdown.writes[LEVEL_SCRATCHPAD]["I"] = writes_i_scratchpad
    # The scratchpad is the innermost input level; one read feeds all PEs the
    # input is broadcast to (the spatial K columns).
    breakdown.reads[LEVEL_SCRATCHPAD]["I"] = macs / max(spatial_k, 1.0)
    breakdown.reads[LEVEL_DRAM]["I"] = writes_i_scratchpad

    # ---- Outputs: accumulator <-> DRAM -------------------------------- #
    output_tile = tile_words(mapping, LEVEL_ACCUMULATOR, "O")
    reloads_o = reload_factor(mapping, LEVEL_ACCUMULATOR, "O")
    distinct_o = distinct_tiles(mapping, LEVEL_ACCUMULATOR, "O")
    drains = output_tile * reloads_o
    refills = output_tile * max(reloads_o - distinct_o, 0.0)
    # MAC-side partial-sum updates, reduced spatially along the C dimension.
    breakdown.updates[LEVEL_ACCUMULATOR]["O"] = macs / max(spatial_c, 1.0)
    # Drains toward DRAM read the accumulator; revisited tiles are refilled.
    breakdown.reads[LEVEL_ACCUMULATOR]["O"] = drains
    breakdown.writes[LEVEL_ACCUMULATOR]["O"] = refills
    breakdown.updates[LEVEL_DRAM]["O"] = drains
    breakdown.reads[LEVEL_DRAM]["O"] = refills

    return breakdown
