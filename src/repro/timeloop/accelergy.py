"""Event-based energy estimation (the Accelergy/CACTI stand-in).

Energy is the sum of MAC energy plus, for every memory level, the number of
accesses times that level's energy-per-access from Table 2.  Matching the
behaviour the paper attributes to Timeloop/Accelergy, DRAM energy is charged
per 64-byte block: each tensor's DRAM traffic is rounded up to whole blocks
before being multiplied by the per-word energy, which is what produces the
small-layer discrepancy with the differentiable model (Section 4.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.components import LEVEL_DRAM, MEMORY_LEVEL_INDICES
from repro.arch.gemmini import GemminiSpec
from repro.timeloop.loopnest import TrafficBreakdown
from repro.workloads.layer import TENSORS

# DRAM burst/block granularity in words (64-byte blocks of 8-bit words).
DRAM_BLOCK_WORDS = 64


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy split into compute and per-level memory contributions."""

    mac_energy: float
    level_energy: dict[int, float]

    @property
    def total(self) -> float:
        return self.mac_energy + sum(self.level_energy.values())


def _dram_accesses_block_rounded(traffic: TrafficBreakdown) -> float:
    """DRAM accesses with each tensor's traffic rounded up to whole blocks."""
    total = 0.0
    for tensor in TENSORS:
        words = traffic.tensor_traffic(LEVEL_DRAM, tensor)
        if words <= 0.0:
            continue
        total += math.ceil(words / DRAM_BLOCK_WORDS) * DRAM_BLOCK_WORDS
    return total


def energy_breakdown(traffic: TrafficBreakdown, spec: GemminiSpec) -> EnergyBreakdown:
    """Energy of a mapping's traffic on ``spec`` (Equation 13, ceil semantics)."""
    level_energy: dict[int, float] = {}
    for level in MEMORY_LEVEL_INDICES:
        if level == LEVEL_DRAM:
            accesses = _dram_accesses_block_rounded(traffic)
        else:
            accesses = traffic.accesses(level)
        level_energy[level] = accesses * spec.energy_per_access(level)
    return EnergyBreakdown(
        mac_energy=traffic.macs * spec.mac_energy,
        level_energy=level_energy,
    )
