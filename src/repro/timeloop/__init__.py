"""Reference analytical model ("Gemmini-TL" stand-in for Timeloop + Accelergy).

The paper validates its differentiable model against Timeloop, an iterative
program-based analytical model, and uses Timeloop/Accelergy as the evaluation
oracle for the search baselines.  This package plays that role in the
reproduction: an independent implementation of the per-level traffic, roofline
latency and event-based energy analysis that

* works on integral (rounded) mappings only,
* uses integer/ceiling semantics for tile sizes, and
* charges DRAM energy per 64-byte block rather than per element,

which is exactly the behaviour the paper cites as the source of the small
disagreement with the differentiable model on tiny layers (Section 4.6).
"""

from repro.timeloop.loopnest import (
    TrafficBreakdown,
    analyze_traffic,
    reload_factor,
    tile_words,
)
from repro.timeloop.model import (
    PerformanceResult,
    as_spec,
    evaluate_mapping,
    evaluate_network_mappings,
    NetworkPerformance,
)
from repro.timeloop.accelergy import energy_breakdown, EnergyBreakdown

__all__ = [
    "TrafficBreakdown",
    "analyze_traffic",
    "reload_factor",
    "tile_words",
    "PerformanceResult",
    "as_spec",
    "evaluate_mapping",
    "evaluate_network_mappings",
    "NetworkPerformance",
    "energy_breakdown",
    "EnergyBreakdown",
]
