"""Finding reporters: the human text form and the machine JSON form.

Both render the same :class:`~repro.analysis.findings.Finding` list in the
same order, so the text output, ``--json`` output, the baseline file and
``scripts/check_docs.py`` (which borrows these reporters) all agree on what
a finding looks like.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.analysis.findings import Finding

REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], **counts: Any) -> str:
    """One line per finding plus a summary line.

    ``counts`` are extra ``name=value`` pairs for the summary (e.g.
    ``checked_files=97, suppressed=6``); zero-valued extras are omitted.
    """
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    extras = ", ".join(f"{name.replace('_', ' ')}: {value}"
                       for name, value in counts.items() if value)
    summary = f"{len(findings)} {noun}" + (f" ({extras})" if extras else "")
    lines.append(summary if findings else f"lint OK: {summary}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], **counts: Any) -> str:
    """The machine form: versioned, sorted keys, trailing newline."""
    payload: dict[str, Any] = {
        "version": REPORT_VERSION,
        "findings": [finding.to_dict() for finding in findings],
    }
    payload.update(counts)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
