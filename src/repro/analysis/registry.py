"""The checker registry: one class per rule id, docstrings as the catalog.

Every rule is a :class:`Checker` subclass registered with
:func:`register_checker`.  The class *docstring* is the rule's reference
text: its first line is the summary shown by ``repro.cli lint --rules`` and
the full docstring is what ``--explain <rule-id>`` prints, so the catalog
cannot drift from the code (the satellite of docs/lint.md renders the same
strings).

Checkers are zone-scoped: ``zones`` names the first-level directories of the
``repro`` package the rule applies to (``None`` means the whole package).
The deterministic zones — the subsystems whose outputs the repo's
byte-identity guarantees cover — are listed in :data:`DETERMINISTIC_ZONES`.
"""

from __future__ import annotations

import inspect
from typing import Iterable, Iterator, TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.analysis.source import SourceFile

#: Package zones whose results are covered by a byte-identity guarantee
#: (seeded searches, campaign reports, served results).  Nondeterminism
#: inside them breaks reproducibility silently, so the determinism rules
#: apply here.  ``analysis`` itself is included: lint output is diffed and
#: baselined, so it must be deterministic too.
DETERMINISTIC_ZONES: tuple[str, ...] = (
    "core", "autodiff", "mapping", "search", "eval", "campaign", "analysis",
)


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule_id`` (the stable identifier used by ``--rules``,
    suppressions and the baseline), optionally ``zones`` (first-level
    package directories the rule applies to; ``None`` = everywhere), and
    implement :meth:`check`.  The subclass docstring is the rule's
    user-facing documentation.
    """

    rule_id: str = ""
    zones: tuple[str, ...] | None = None

    def applies_to(self, source: "SourceFile") -> bool:
        return self.zones is None or source.zone in self.zones

    def check(self, source: "SourceFile") -> Iterator[Finding]:
        raise NotImplementedError

    # -- documentation -------------------------------------------------- #
    @classmethod
    def summary(cls) -> str:
        doc = inspect.getdoc(cls) or ""
        return doc.splitlines()[0] if doc else ""

    @classmethod
    def explanation(cls) -> str:
        return inspect.getdoc(cls) or ""


_CHECKERS: dict[str, type[Checker]] = {}


def register_checker(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a rule to the registry (keyed by ``rule_id``)."""
    if not cls.rule_id:
        raise ValueError(f"checker {cls.__name__} declares no rule_id")
    if cls.rule_id in _CHECKERS:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _CHECKERS[cls.rule_id] = cls
    return cls


def _ensure_builtin_checkers() -> None:
    """Import the checker modules so their registrations run."""
    import repro.analysis.checkers  # noqa: F401  (registers everything)


def all_rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    _ensure_builtin_checkers()
    return tuple(sorted(_CHECKERS))


def get_checker(rule_id: str) -> type[Checker]:
    """Look up one registered checker class by rule id."""
    _ensure_builtin_checkers()
    if rule_id not in _CHECKERS:
        raise KeyError(f"unknown lint rule {rule_id!r}; "
                       f"options: {list(all_rule_ids())}")
    return _CHECKERS[rule_id]


def select_checkers(rules: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate the selected checkers (all of them when ``rules=None``)."""
    _ensure_builtin_checkers()
    selected = all_rule_ids() if rules is None else tuple(rules)
    return [get_checker(rule_id)() for rule_id in selected]


def rule_catalog() -> list[tuple[str, str]]:
    """``(rule_id, one-line summary)`` pairs for ``--rules`` and the docs."""
    _ensure_builtin_checkers()
    return [(rule_id, _CHECKERS[rule_id].summary())
            for rule_id in all_rule_ids()]
