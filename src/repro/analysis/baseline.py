"""The grandfather file: findings accepted as-is until someone fixes them.

The baseline lets the lint gate turn on *before* every historical finding is
fixed: ``repro.cli lint --update-baseline`` records the current findings in
``lint-baseline.json`` at the repo root, and subsequent runs subtract them.
A baselined finding is matched by ``(rule, path, message)`` — no line
number — so it stays grandfathered across unrelated edits, and disappears
from the baseline the moment the underlying code is fixed (re-run
``--update-baseline`` to shrink the file; it never grows on its own).

This repository ships an *empty* baseline: every invariant violation the
checkers know about has been fixed, and CI keeps it that way.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding
from repro.utils.atomic import write_json_atomic

BASELINE_VERSION = 1
BASELINE_NAME = "lint-baseline.json"


def load_baseline(path: str | Path) -> list[Finding]:
    """Baseline entries from ``path`` (a missing file is an empty baseline)."""
    path = Path(path)
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    version = int(payload.get("version", BASELINE_VERSION))
    if version > BASELINE_VERSION:
        raise ValueError(f"baseline version {version} is newer than "
                         f"supported version {BASELINE_VERSION}")
    return [Finding.from_dict(entry) for entry in payload.get("findings", [])]


def save_baseline(path: str | Path, findings: list[Finding]) -> Path:
    """Atomically write ``findings`` as the new baseline (sorted, line 0).

    Lines are zeroed out on purpose: the baseline identity excludes them,
    and storing live line numbers would churn the file on every edit.
    """
    entries = sorted({(f.rule, f.path, f.message) for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": path_, "line": 0, "rule": rule, "message": message}
            for rule, path_, message in entries
        ],
    }
    return write_json_atomic(path, payload)


def apply_baseline(findings: list[Finding],
                   baseline: list[Finding]) -> tuple[list[Finding], int]:
    """Subtract baselined findings; returns (kept, number_baselined).

    Each baseline entry absorbs every finding with the same identity (one
    grandfathered pattern may surface on several lines of the same file).
    """
    allowed = Counter(entry.baseline_key for entry in baseline)
    kept: list[Finding] = []
    baselined = 0
    for finding in findings:
        if allowed[finding.baseline_key] > 0:
            baselined += 1
        else:
            kept.append(finding)
    return kept, baselined
