"""The lint vocabulary: rules and findings.

A :class:`Finding` is one rule violation at one source location; every
checker, the suppression machinery, the baseline file and both reporters
speak this type.  Findings are JSON round-trippable (the baseline file and
``repro.cli lint --json`` both persist them), and their *baseline identity*
deliberately excludes the line number so grandfathered findings survive
unrelated edits that shift code up or down a file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative (posix separators) so findings are stable
    across machines; ``line`` is 1-based.  Ordering is (path, line, rule,
    message), the order both reporters emit.
    """

    path: str
    line: int
    rule: str
    message: str

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used by the baseline file: line numbers excluded."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Finding":
        return Finding(
            path=str(payload["path"]),
            line=int(payload.get("line", 0)),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
        )

    def render(self) -> str:
        """The one-line text form: ``path:line: rule-id message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
