"""One parsed source file: text, AST, zone, imports, and suppressions.

A :class:`SourceFile` is parsed exactly once per lint run and shared by all
checkers.  It carries the pieces every checker needs:

* the AST (with a child -> parent map, so pattern matchers can ask "is this
  call directly wrapped in ``sorted(...)``?"),
* the file's *zone* — its first directory component under the linted
  package (``"search"`` for ``repro/search/api.py``, ``""`` for top-level
  modules like ``repro/cli.py``) — which the zone-scoped rules filter on,
* the module's imports (so ``time.time`` is only matched when ``time`` is
  actually the imported module, not a same-named attribute), and
* the inline suppressions::

      risky_call()  # repro-lint: allow[rule-id] why this use is fine

  A suppression on a code line covers that line; a suppression on a
  comment-only line covers the next line.  Several rules may be listed
  (``allow[rule-a,rule-b]``).  The reason is mandatory — the whole point is
  that exceptions to an invariant are written down — and unused or unknown
  suppressions are themselves reported (rule ``lint-suppression``), so
  stale exceptions cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[([^\]]*)\]\s*(.*)$")


@dataclass
class Suppression:
    """One ``# repro-lint: allow[...]`` comment."""

    line: int                 # the line the comment sits on
    applies_to: int           # the line it suppresses findings on
    rules: tuple[str, ...]
    reason: str
    used: set[str] = field(default_factory=set)  # rule ids it suppressed


class SourceFile:
    """A lint target: path bookkeeping + lazily shared parse products."""

    def __init__(self, path: Path, package_dir: Path, display_base: Path) -> None:
        self.path = path
        #: Path relative to the linted package, posix ("search/api.py").
        self.package_relpath = PurePosixPath(
            path.relative_to(package_dir).as_posix())
        #: Repo-relative display path ("src/repro/search/api.py").
        self.display = path.relative_to(display_base).as_posix()
        parts = self.package_relpath.parts
        #: First-level package directory, "" for top-level modules.
        self.zone = parts[0] if len(parts) > 1 else ""
        self.text = path.read_text()
        self.tree = ast.parse(self.text, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._imports: dict[str, str] | None = None
        self.suppressions = self._parse_suppressions()

    # ------------------------------------------------------------------ #
    # Parse products shared by the checkers
    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (None for the module node)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)

    @property
    def imports(self) -> dict[str, str]:
        """Local name -> imported module/symbol dotted path.

        ``import numpy as np`` maps ``np -> numpy``; ``from random import
        choice`` maps ``choice -> random.choice``; ``import os`` maps
        ``os -> os``.  Checkers use this to anchor dotted-name patterns to
        the modules they actually target.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            table[alias.asname] = alias.name
                        else:
                            root = alias.name.split(".")[0]
                            table[root] = root
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def dotted_name(self, node: ast.AST) -> str | None:
        """The dotted source text of a Name/Attribute chain, import-resolved.

        ``np.random.rand`` (with ``import numpy as np``) resolves to
        ``numpy.random.rand``.  Chains rooted in anything but an *imported*
        name resolve to ``None``: a local variable that happens to be
        called ``time`` must not satisfy a ``time.time`` pattern.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or node.id not in self.imports:
            return None
        parts.append(self.imports[node.id])
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------ #
    # Suppressions
    # ------------------------------------------------------------------ #
    def _parse_suppressions(self) -> list[Suppression]:
        suppressions: list[Suppression] = []
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return suppressions
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            line, column = token.start
            rules = tuple(part.strip() for part in match.group(1).split(",")
                          if part.strip())
            reason = match.group(2).strip()
            # A comment-only line shields the next line; an inline comment
            # shields its own.
            standalone = not token.line[:column].strip()
            suppressions.append(Suppression(
                line=line, applies_to=line + 1 if standalone else line,
                rules=rules, reason=reason))
        return suppressions

    def suppression_for(self, rule_id: str, line: int) -> Suppression | None:
        """The suppression covering ``rule_id`` at ``line``, if any."""
        for suppression in self.suppressions:
            if suppression.applies_to == line and rule_id in suppression.rules:
                return suppression
        return None
