"""repro-lint: AST-based invariant checks for this repository's own source.

The repo's correctness story rests on invariants no unit test can see from
inside one function: seeded byte-identity (nothing in a deterministic zone
reads global RNG state or a wall clock), lossless serialization round trips,
complete-or-absent file writes, and the service daemon's fork-before-threads
ordering.  This package checks them statically over the whole package —
stdlib only (``ast`` + ``tokenize``) — and is wired up as
``repro.cli lint``.  See ``docs/lint.md`` for the rule catalog and the
suppression/baseline workflow.
"""

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Checker,
    DETERMINISTIC_ZONES,
    all_rule_ids,
    get_checker,
    register_checker,
    rule_catalog,
)
from repro.analysis.runner import LintResult, run_lint
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Checker",
    "DETERMINISTIC_ZONES",
    "Finding",
    "LintResult",
    "all_rule_ids",
    "get_checker",
    "register_checker",
    "render_json",
    "render_text",
    "rule_catalog",
    "run_lint",
]
