"""The lint driver: walk the package, run checkers, apply suppressions.

:func:`run_lint` is the one entry point used by ``repro.cli lint``, the
tests, and CI.  It walks every ``*.py`` file under the package directory in
sorted order (lint output is deterministic and diffable), parses each file
once, runs the selected checkers, subtracts inline suppressions, audits the
suppressions themselves (rule ``lint-suppression``: unknown rule ids,
missing reasons, and suppressions that shielded nothing are all findings),
and finally subtracts the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import BASELINE_NAME, apply_baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Checker,
    all_rule_ids,
    register_checker,
    select_checkers,
)
from repro.analysis.source import SourceFile


@register_checker
class SuppressionHygiene(Checker):
    """Suppression comments must name real rules, give a reason, and earn their keep.

    ``# repro-lint: allow[<rule>] <reason>`` is the escape hatch for code
    that violates a rule *on purpose* (the service daemon's wall-clock
    timestamps, for example).  This meta-rule keeps the escape hatch
    honest: a suppression naming an unknown rule id, one with an empty
    reason, or one that suppressed no finding in this run is itself
    reported.  Unused suppressions are only audited when every rule runs
    (a ``--rules`` subset would otherwise misreport suppressions for the
    deselected rules as unused).

    Fix by deleting the stale comment, correcting the rule id, or writing
    down why the exception is sound.
    """

    rule_id = "lint-suppression"

    def check(self, source):  # pragma: no cover - driven by the runner
        return iter(())


@register_checker
class ParseError(Checker):
    """Every linted file must parse as Python.

    A file the ``ast`` module cannot parse cannot be checked, so a syntax
    error is surfaced as a finding instead of crashing the run (the rest of
    the tree is still linted).  Fix the syntax error.
    """

    rule_id = "lint-parse"

    def check(self, source):  # pragma: no cover - driven by the runner
        return iter(())


#: Rules emitted by the runner itself rather than a per-file checker pass.
_META_RULES = ("lint-suppression", "lint-parse")


@dataclass
class LintResult:
    """What one lint run produced (post-suppression, post-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    checked_files: int = 0
    rules: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings


def default_package_dir() -> Path:
    """The ``repro`` package directory this module is installed in."""
    return Path(__file__).resolve().parent.parent


def repo_root_for(package_dir: Path) -> Path:
    """The repository root a package dir belongs to (``src/`` layouts)."""
    package_dir = package_dir.resolve()
    if package_dir.parent.name == "src":
        return package_dir.parent.parent
    return package_dir.parent


def default_baseline_path(package_dir: Path) -> Path:
    return repo_root_for(package_dir) / BASELINE_NAME


def iter_source_files(package_dir: Path) -> list[Path]:
    """Every ``*.py`` under the package, sorted (deterministic output)."""
    return [path for path in sorted(package_dir.rglob("*.py"))
            if "__pycache__" not in path.parts]


def _audit_suppressions(source: SourceFile, full_run: bool,
                        known_rules: frozenset[str]) -> list[Finding]:
    findings: list[Finding] = []
    for suppression in source.suppressions:
        unknown = [rule for rule in suppression.rules
                   if rule not in known_rules]
        for rule in unknown:
            findings.append(Finding(
                path=source.display, line=suppression.line,
                rule="lint-suppression",
                message=f"suppression names unknown rule {rule!r}"))
        if not suppression.rules:
            findings.append(Finding(
                path=source.display, line=suppression.line,
                rule="lint-suppression",
                message="suppression lists no rules (allow[] is empty)"))
        if not suppression.reason:
            findings.append(Finding(
                path=source.display, line=suppression.line,
                rule="lint-suppression",
                message="suppression gives no reason; say why the "
                        "exception is sound"))
        if full_run:
            unused = [rule for rule in suppression.rules
                      if rule in known_rules and rule not in _META_RULES
                      and rule not in suppression.used]
            for rule in unused:
                findings.append(Finding(
                    path=source.display, line=suppression.line,
                    rule="lint-suppression",
                    message=f"unused suppression for {rule!r} "
                            "(nothing to allow here any more)"))
    return findings


def run_lint(
    package_dir: str | Path | None = None,
    rules: list[str] | None = None,
    baseline_path: str | Path | None = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint ``package_dir`` (default: the installed ``repro`` package).

    ``rules`` selects a subset of rule ids (default: all).  The baseline at
    ``baseline_path`` (default: ``lint-baseline.json`` at the repo root; a
    missing file is an empty baseline) is subtracted unless
    ``use_baseline=False`` — which is what ``--update-baseline`` uses to
    capture the full finding set.
    """
    package_dir = Path(package_dir) if package_dir else default_package_dir()
    package_dir = package_dir.resolve()
    display_base = repo_root_for(package_dir)
    checkers = [checker for checker in select_checkers(rules)
                if checker.rule_id not in _META_RULES]
    selected = tuple(sorted({c.rule_id for c in checkers} |
                            set(_META_RULES)))
    full_run = rules is None
    known_rules = frozenset(all_rule_ids())

    result = LintResult(rules=selected)
    for path in iter_source_files(package_dir):
        try:
            source = SourceFile(path, package_dir, display_base)
        except SyntaxError as error:
            result.findings.append(Finding(
                path=path.relative_to(display_base).as_posix(),
                line=error.lineno or 0, rule="lint-parse",
                message=f"file does not parse: {error.msg}"))
            result.checked_files += 1
            continue
        result.checked_files += 1
        for checker in checkers:
            if not checker.applies_to(source):
                continue
            for finding in checker.check(source):
                suppression = source.suppression_for(checker.rule_id,
                                                     finding.line)
                if suppression is not None:
                    suppression.used.add(checker.rule_id)
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
        result.findings.extend(
            _audit_suppressions(source, full_run, known_rules))

    if use_baseline:
        baseline_path = (Path(baseline_path) if baseline_path
                         else default_baseline_path(package_dir))
        baseline = load_baseline(baseline_path)
        result.findings, result.baselined = apply_baseline(
            result.findings, baseline)
    result.findings.sort()
    return result
