"""API surface rule: ``__all__`` tells the truth about a package's exports.

``__init__.py`` files are the repo's public-API declarations: downstream
code (and ``from repro import *`` in notebooks) trusts ``__all__``.  Two
drifts happen in practice — an ``__all__`` entry survives the removal of
the symbol it named, or a new convenience import never gets listed, so the
symbol works interactively but is invisible to ``*``-imports, API docs and
anyone auditing the surface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register_checker


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module level: imports, assignments, defs, classes."""
    bindings: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bindings.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bindings.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings.add(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            bindings.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bindings.add(node.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional imports (feature gates, optional deps) still bind.
            bindings |= _module_bindings(node)  # type: ignore[arg-type]
    return bindings


def _dunder_all(tree: ast.Module) -> tuple[list[tuple[str, int]], bool]:
    """``(name, line)`` entries of a literal ``__all__``, and whether one exists.

    A dynamically built ``__all__`` (concatenation of variables, list
    comprehension, ...) returns ``([], True)`` — present but unauditable,
    so the checker stays quiet rather than guessing.
    """
    entries: list[tuple[str, int]] = []
    present = False
    for node in tree.body:
        values: ast.expr | None = None
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets):
            values = node.value
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == "__all__":
            values = node.value
        if values is None:
            continue
        present = True
        if not isinstance(values, (ast.List, ast.Tuple)):
            return [], True
        for element in values.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                entries.append((element.value, element.lineno))
            else:
                return [], True
    return entries, present


@register_checker
class ApiSurface(Checker):
    """__all__ out of sync with a package __init__'s imports.

    In every ``__init__.py`` that declares a literal ``__all__``, the list
    must match the module's actual bindings in both directions: each
    ``__all__`` entry must name a symbol the module defines or imports
    (an entry for a removed symbol makes ``from repro import *`` raise
    ``AttributeError``), and each public name the module ``from``-imports
    must appear in ``__all__`` (an unlisted import is a symbol that works
    by accident — present at runtime, absent from the declared surface,
    the drift this repo's top-level ``repro/__init__.py`` accumulated for
    its campaign exports).  Names starting with ``_`` and plain ``import
    x`` module bindings are exempt; a dynamically built ``__all__`` is not
    audited.

    Fix by adding the missing names to ``__all__`` or deleting the stale
    entry; imports used only internally can be renamed with a leading
    underscore.
    """

    rule_id = "api-surface"

    def applies_to(self, source) -> bool:
        return source.package_relpath.name == "__init__.py"

    def check(self, source) -> Iterator[Finding]:
        entries, present = _dunder_all(source.tree)
        if not present or not entries:
            return
        bindings = _module_bindings(source.tree)
        listed = {name for name, _ in entries}
        for name, line in entries:
            if name not in bindings:
                yield Finding(
                    path=source.display, line=line, rule=self.rule_id,
                    message=f"__all__ names {name!r}, which this module "
                            "neither defines nor imports")
        for node in source.tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "*" or bound.startswith("_"):
                    continue
                if bound not in listed:
                    yield Finding(
                        path=source.display, line=node.lineno,
                        rule=self.rule_id,
                        message=f"{bound!r} is imported into the package "
                                "namespace but missing from __all__")
