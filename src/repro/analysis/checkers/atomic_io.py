"""Atomic I/O rules: persisted state is complete-or-absent, never partial.

The campaign store resumes from its manifest, the service daemon recovers
jobs from tenant records, and CI diffs regenerated reports byte-for-byte.
All of that assumes a reader never observes a half-written file — the
property ``utils/atomic.py`` provides (temp + fsync + rename + dir fsync)
and a bare ``open(path, "w")`` silently does not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register_checker

#: Zones that persist state other components read back later.
_PERSISTING_ZONES = ("campaign", "service", "experiments", "utils", "analysis")

#: ``Path`` convenience writers that truncate in place.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

_RENAMES = frozenset({"os.rename", "os.replace"})


def _literal_mode(node: ast.Call) -> str | None:
    """The literal mode string of an ``open(...)`` call, if recoverable."""
    mode: ast.expr | None = node.args[1] if len(node.args) > 1 else None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _enclosing_function(source, node: ast.AST) -> ast.AST | None:
    """The nearest enclosing function of ``node`` (None = module scope)."""
    current = source.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = source.parent(current)
    return None


@register_checker
class AtomicWrite(Checker):
    """Truncating write outside utils/atomic.py; readers may see a partial file.

    A bare ``open(path, "w")`` (or ``"x"``/``"wb"``) and the ``Path``
    shortcuts ``write_text``/``write_bytes`` truncate the target before the
    new content lands, so a crash — or a concurrent reader like campaign
    resume or service job recovery — can observe an empty or half-written
    file.  In the zones that persist state (``campaign``, ``service``,
    ``experiments``, ``utils``, ``analysis``), every file write must go
    through :func:`repro.utils.atomic.write_atomic` /
    :func:`~repro.utils.atomic.write_json_atomic` instead.  Append
    (``"a"``) and read-modify (``"r+b"``) opens are not flagged — they do
    not truncate, and the store's segment appends rely on them.

    Fix by building the content as a string (``io.StringIO`` for csv) and
    handing it to ``write_atomic``; suppress only for genuinely transient
    files no other component ever reads.
    """

    rule_id = "atomic-write"
    zones = _PERSISTING_ZONES

    def applies_to(self, source) -> bool:
        # utils/atomic.py is the one place a bare open() is the point.
        return (super().applies_to(source)
                and str(source.package_relpath) != "utils/atomic.py")

    def check(self, source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                mode = _literal_mode(node)
                if mode is not None and mode[0] in "wx":
                    yield Finding(
                        path=source.display, line=node.lineno,
                        rule=self.rule_id,
                        message=f"bare open(..., {mode!r}) truncates in "
                                "place; route the write through "
                                "utils/atomic.write_atomic")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _WRITE_METHODS:
                yield Finding(
                    path=source.display, line=node.lineno, rule=self.rule_id,
                    message=f".{node.func.attr}(...) truncates in place; "
                            "route the write through "
                            "utils/atomic.write_atomic")


@register_checker
class RenameFsync(Checker):
    """os.rename/os.replace in a function that never fsyncs; rename may not stick.

    Renaming a freshly written temp file over its target is only durable if
    the data was fsynced first (and the directory after): without the
    fsync, a crash can leave the *rename* visible but the *content* empty —
    the exact corruption atomic writes exist to prevent.  Any function that
    calls ``os.rename`` or ``os.replace`` must also call ``os.fsync``
    somewhere in its body, the shape ``utils/atomic.write_atomic`` models.

    Fix by using ``write_atomic`` instead of a hand-rolled temp+rename, or
    by adding the missing fsync calls.
    """

    rule_id = "atomic-rename"
    zones = _PERSISTING_ZONES

    def check(self, source) -> Iterator[Finding]:
        renames: list[tuple[ast.Call, str, ast.AST | None]] = []
        fsync_scopes: set[ast.AST | None] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = source.dotted_name(node.func)
            if dotted in _RENAMES:
                renames.append((node, dotted,
                                _enclosing_function(source, node)))
            elif dotted == "os.fsync":
                fsync_scopes.add(_enclosing_function(source, node))
        for node, dotted, scope in renames:
            if scope not in fsync_scopes:
                yield Finding(
                    path=source.display, line=node.lineno, rule=self.rule_id,
                    message=f"{dotted}() in a function with no os.fsync; "
                            "the renamed content is not durable (use "
                            "utils/atomic.write_atomic)")
