"""Determinism rules: no hidden entropy inside the deterministic zones.

Everything this repo claims — batched kernels bit-identical to scalar
oracles, interrupt+resume reports byte-equal to uninterrupted runs, served
results byte-equal to offline ``repro.optimize()`` — rests on the
deterministic zones (``core``, ``autodiff``, ``mapping``, ``search``,
``eval``, ``campaign``, and ``analysis`` itself) being pure functions of
their seeds and inputs.  Three entropy sources sneak in most easily:
global-state RNG, wall clocks, and filesystem iteration order.  One rule
per source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Checker,
    DETERMINISTIC_ZONES,
    register_checker,
)

#: ``numpy.random`` attributes that are fine to *reference* (they are types
#: or the seeded-generator constructor make_rng itself wraps) — everything
#: else on ``numpy.random`` is the legacy global-state API.
_NUMPY_RANDOM_ALLOWED = frozenset({"Generator", "BitGenerator", "SeedSequence"})

#: Wall-clock reads.  ``time.monotonic``/``perf_counter`` are deliberately
#: *not* listed: the zones use them only for elapsed-time fields
#: (``wall_time_seconds``) that the canonical payloads exclude.
_CLOCK_NAMES = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Directory-iteration callables whose order is OS-dependent.
_LISTING_FUNCTIONS = frozenset({"os.listdir", "os.scandir",
                                "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


@register_checker
class DeterminismRng(Checker):
    """Global-state RNG in a deterministic zone; use utils/rng.make_rng.

    Seeded searches and campaigns must be bit-reproducible, so every
    stochastic component threads an explicit ``numpy.random.Generator``
    built by :func:`repro.utils.rng.make_rng` from a seed carried in its
    settings.  Calls into the stdlib ``random`` module or the legacy
    ``numpy.random.<fn>`` global-state API (``np.random.rand``, ``seed``,
    ``shuffle``, even ``default_rng`` — which hides the seed argument this
    repo requires to be explicit) draw from process-global or ad-hoc state
    that campaign resume, fork workers and the service daemon cannot
    reproduce.

    Fix by accepting a ``SeedLike`` and calling ``make_rng(seed)`` (the
    single conversion point), then passing the generator down.
    """

    rule_id = "determinism-rng"
    zones = DETERMINISTIC_ZONES

    def check(self, source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = source.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted == "random" or dotted.startswith("random."):
                yield Finding(
                    path=source.display, line=node.lineno, rule=self.rule_id,
                    message=f"stdlib global-state RNG call {dotted}(); "
                            "thread a make_rng(seed) Generator instead")
            elif dotted.startswith("numpy.random."):
                attr = dotted.split(".", 2)[2]
                if attr.split(".")[0] not in _NUMPY_RANDOM_ALLOWED:
                    yield Finding(
                        path=source.display, line=node.lineno,
                        rule=self.rule_id,
                        message=f"numpy global/ad-hoc RNG call {dotted}(); "
                                "use utils/rng.make_rng so the seed is "
                                "explicit and reproducible")


@register_checker
class DeterminismClock(Checker):
    """Wall-clock read in a deterministic zone; keep clocks out of results.

    ``time.time()`` and ``datetime.now()`` values differ between the runs
    that byte-identity tests compare, so any result, record or file that
    embeds one silently breaks reproducibility (elapsed-time measurement
    via ``time.monotonic`` is exempt: the zones only feed it into fields
    like ``wall_time_seconds`` that canonical payloads strip).  The rule
    also covers ``service/``: the daemon's lifecycle timestamps and uptime
    metrics are legitimate wall-clock uses, but each one carries an
    explicit ``allow[determinism-clock]`` so a reviewer can see at a
    glance that no timestamp leaks into a served result payload.

    Fix by removing the clock from the deterministic computation, deriving
    the value from inputs/seeds, or — for operational metadata that never
    reaches a canonical payload — adding a reasoned suppression.
    """

    rule_id = "determinism-clock"
    zones = DETERMINISTIC_ZONES + ("service",)

    def check(self, source) -> Iterator[Finding]:
        seen: set[int] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = source.dotted_name(node)
            if dotted in _CLOCK_NAMES and id(node) not in seen:
                seen.add(id(node))
                yield Finding(
                    path=source.display, line=node.lineno, rule=self.rule_id,
                    message=f"wall-clock read {dotted} in a deterministic "
                            "zone; results must not depend on the clock")


@register_checker
class DeterminismListdir(Checker):
    """Unsorted directory iteration; wrap listings in sorted().

    ``os.listdir``, ``glob.glob`` and ``Path.glob``/``iterdir`` yield
    entries in filesystem order, which differs across machines and even
    across runs — enough to reorder cache-spill replay, job recovery, or a
    report table.  Every listing a deterministic zone (or the service's
    recovery path) iterates must be wrapped *directly* in ``sorted(...)``.

    Fix with ``sorted(path.glob(...))`` — the repo-wide idiom (see
    ``campaign/store.py``).
    """

    rule_id = "determinism-listdir"
    zones = DETERMINISTIC_ZONES + ("service",)

    def check(self, source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = source.dotted_name(node.func)
            if dotted in _LISTING_FUNCTIONS:
                listing = dotted
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _LISTING_METHODS:
                listing = f".{node.func.attr}(...)"
            else:
                continue
            parent = source.parent(node)
            if isinstance(parent, ast.Call) \
                    and isinstance(parent.func, ast.Name) \
                    and parent.func.id == "sorted":
                continue
            yield Finding(
                path=source.display, line=node.lineno, rule=self.rule_id,
                message=f"directory listing {listing} iterated in "
                        "filesystem order; wrap it directly in sorted()")
