"""Built-in checkers; importing this package registers every rule.

Each module groups the rules guarding one invariant family.  Adding a
checker = writing a :class:`~repro.analysis.registry.Checker` subclass with
a ``rule_id`` and a docstring, decorating it with ``register_checker``, and
importing its module here.
"""

import repro.analysis.checkers.api_surface  # noqa: F401
import repro.analysis.checkers.atomic_io  # noqa: F401
import repro.analysis.checkers.determinism  # noqa: F401
import repro.analysis.checkers.fork_safety  # noqa: F401
import repro.analysis.checkers.serde  # noqa: F401
