"""Serialization parity: every key a serializer writes, its twin reads back.

The bug class this catches shipped in PR 6: ``outcome_to_dict`` wrote
``num_candidates`` but ``outcome_from_dict`` never read it, so the
dict -> ``SearchOutcome`` -> dict round trip silently dropped the field and
broke byte-identity between pool and inline campaign runs.  Nothing about
that bug was visible at either function alone — only the *pair* is wrong —
which is exactly what a per-function review keeps missing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register_checker

#: Method names treated as the writing half of a class pair.
_WRITER_METHODS = ("to_dict", "as_dict", "to_json")
#: Method names treated as the reading half.
_READER_METHODS = ("from_dict", "from_json")

_READ_CALL_METHODS = frozenset({"get", "pop"})


def _literal_written_keys(writer: ast.FunctionDef) -> dict[str, int]:
    """String keys the writer emits, with the line each first appears on.

    Collected from dict literals (nested ones included — serializers build
    nested payloads) and from ``payload["key"] = ...`` stores.  Keys built
    dynamically (comprehensions, ``**`` merges, variables) are invisible to
    the AST and are deliberately not checked.
    """
    keys: dict[str, int] = {}
    for node in ast.walk(writer):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.setdefault(key.value, key.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    keys.setdefault(target.slice.value, target.lineno)
    return keys


def _read_keys(reader: ast.FunctionDef) -> set[str]:
    """String keys the reader touches, on any receiver.

    Counts ``payload["key"]`` subscripts, ``payload.get("key", ...)`` /
    ``pop`` calls and ``"key" in payload`` membership tests.  The receiver
    is deliberately ignored: readers routinely alias sub-payloads
    (``best = payload["best"]; best["edp"]``), and chasing aliases buys
    little for a lint that only asks "is this key ever read back?".
    """
    keys: set[str] = set()
    for node in ast.walk(reader):
        if isinstance(node, ast.Subscript) \
                and isinstance(node.slice, ast.Constant) \
                and isinstance(node.slice.value, str):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _READ_CALL_METHODS \
                and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            keys.add(node.args[0].value)
        elif isinstance(node, ast.Compare) \
                and isinstance(node.left, ast.Constant) \
                and isinstance(node.left.value, str) \
                and any(isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
            keys.add(node.left.value)
    return keys


def _function_pairs(source) -> Iterator[tuple[str, ast.FunctionDef,
                                              ast.FunctionDef]]:
    """(pair name, writer, reader) for module-level and class pairs.

    Module level: ``<x>_to_dict`` pairs with ``<x>_from_dict``.  Class
    level: a ``to_dict``/``as_dict``/``to_json`` method pairs with the
    class's ``from_dict``/``from_json``.
    """
    module_functions = {node.name: node for node in source.tree.body
                        if isinstance(node, ast.FunctionDef)}
    for name, writer in module_functions.items():
        for writer_suffix in _WRITER_METHODS:
            if not name.endswith(f"_{writer_suffix}"):
                continue
            prefix = name[: -len(writer_suffix)]
            reader_suffix = ("from_json" if writer_suffix == "to_json"
                             else "from_dict")
            reader = module_functions.get(f"{prefix}{reader_suffix}")
            if reader is not None:
                yield f"{name}/{reader.name}", writer, reader

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        reader = next((methods[name] for name in _READER_METHODS
                       if name in methods), None)
        if reader is None:
            continue
        for writer_name in _WRITER_METHODS:
            if writer_name in methods:
                yield (f"{node.name}.{writer_name}/{reader.name}",
                       methods[writer_name], reader)


@register_checker
class SerdeParity(Checker):
    """A serializer writes a key its deserializer never reads back.

    For every serialize/deserialize pair — ``to_dict``/``as_dict`` with
    ``from_dict`` methods on one class, or module-level
    ``<x>_to_dict``/``<x>_from_dict`` functions — each string key the
    writer emits (dict literals and ``payload["k"] = ...`` stores,
    including nested payloads) must be read somewhere in the reader
    (``payload["k"]``, ``.get("k")``, ``.pop("k")`` or ``"k" in payload``).
    A written-but-never-read key means the round trip silently drops data:
    the PR 6 ``num_candidates`` bug class, where pool campaign runs lost a
    field that inline runs kept.

    Fix by reading the key back into the rebuilt object (add a carrier
    field if the live type has nowhere to put it), or — when a field is a
    deliberate write-only annotation — suppressing with a reason that says
    where the reader's contract documents the drop.
    """

    rule_id = "serde-parity"

    def check(self, source) -> Iterator[Finding]:
        for pair_name, writer, reader in _function_pairs(source):
            written = _literal_written_keys(writer)
            if not written:
                continue
            read = _read_keys(reader)
            for key, line in sorted(written.items()):
                if key not in read:
                    yield Finding(
                        path=source.display, line=line, rule=self.rule_id,
                        message=f"{pair_name}: key {key!r} is written but "
                                "never read back; the round trip drops it")
