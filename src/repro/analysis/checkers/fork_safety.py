"""Fork-safety rules for the service daemon.

The daemon's ordering contract (see ``service/daemon.py``): build
multiprocessing primitives first, fork the worker pool, and only then start
any thread.  A thread alive at fork time is duplicated into every child as
a corpse — its locks may be held forever and its target never runs — and an
mp queue or event created *after* the fork never reaches the children at
all, because fork-inherited objects are copies frozen at fork time.  Both
mistakes pass every single-process test and only deadlock or drop results
under the real pool, so they are checked statically here.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register_checker

#: Thread-spawning constructors (module-qualified via the import table).
_THREAD_CONSTRUCTORS = frozenset({"threading.Thread", "threading.Timer"})

#: Multiprocessing communication primitives the forked workers must inherit.
_MP_PRIMITIVES = frozenset({
    "Queue", "JoinableQueue", "SimpleQueue", "Event", "Lock", "RLock",
    "Semaphore", "BoundedSemaphore", "Condition", "Barrier", "Pipe",
    "Value", "Array",
})

#: Receiver names treated as a multiprocessing context object
#: (``context.Queue()`` where ``context = multiprocessing.get_context(...)``).
_CONTEXT_NAMES = frozenset({"context", "_context", "ctx", "mp_context"})


def _enclosing_function(source, node: ast.AST) -> ast.AST | None:
    current = source.parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = source.parent(current)
    return None


def _receiver_name(node: ast.expr) -> str | None:
    """The trailing identifier of a call receiver (``self._context`` -> ``_context``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_mp_primitive(source, node: ast.Call) -> bool:
    dotted = source.dotted_name(node.func)
    if dotted is not None and dotted.startswith("multiprocessing."):
        return dotted.rsplit(".", 1)[-1] in _MP_PRIMITIVES
    if isinstance(node.func, ast.Attribute) \
            and node.func.attr in _MP_PRIMITIVES:
        receiver = _receiver_name(node.func.value)
        return receiver in _CONTEXT_NAMES
    return False


@register_checker
class ThreadBeforeFork(Checker):
    """Thread constructed at import time or in __init__, before the pool forks.

    The service constructs its objects, forks the worker pool inside
    ``start()``, and starts its dispatcher/collector threads afterwards.  A
    ``threading.Thread`` (or ``Timer``) built at module scope or inside an
    ``__init__`` therefore exists *before* the fork, and every forked
    worker inherits a dead copy of it — holding whatever locks it held at
    fork time, never running its target.  That manifests as a worker that
    hangs on its first queue operation, only under the real fork pool.
    Plain ``threading.Lock``/``Event`` objects are fine in ``__init__``
    (an unheld lock copies harmlessly); it is live *threads* that must not
    predate the fork.

    Fix by deferring thread construction to ``start()`` (after the pool is
    warmed up), the pattern ``service/daemon.py`` follows.
    """

    rule_id = "fork-thread-early"
    zones = ("service",)

    def check(self, source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = source.dotted_name(node.func)
            if dotted not in _THREAD_CONSTRUCTORS:
                continue
            scope = _enclosing_function(source, node)
            if scope is None:
                where = "at module scope"
            elif scope.name == "__init__":
                where = "in __init__"
            else:
                continue
            yield Finding(
                path=source.display, line=node.lineno, rule=self.rule_id,
                message=f"{dotted} constructed {where}, before the worker "
                        "pool forks; build threads in start() after the "
                        "fork")


@register_checker
class MpAfterFork(Checker):
    """Multiprocessing primitive created after construction; workers never see it.

    Forked workers inherit the queues, events and locks that existed when
    the pool forked — anything created later lives only in the parent, so
    a job put on a post-fork queue is silently never consumed.  Mp
    primitives (``Queue``, ``Event``, ``Lock``, ... from the
    ``multiprocessing`` module or a ``get_context(...)`` context object)
    must be created at module scope or in ``__init__``, before ``start()``
    can possibly fork the pool.

    Fix by moving the primitive's construction into ``__init__`` and
    passing it to the workers through the pool initializer, as
    ``service/daemon.py`` does with its job and result queues.
    """

    rule_id = "fork-mp-late"
    zones = ("service",)

    def check(self, source) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) \
                    or not _is_mp_primitive(source, node):
                continue
            scope = _enclosing_function(source, node)
            if scope is None or scope.name == "__init__":
                continue
            name = (node.func.attr if isinstance(node.func, ast.Attribute)
                    else ast.unparse(node.func))
            yield Finding(
                path=source.display, line=node.lineno, rule=self.rule_id,
                message=f"multiprocessing {name} created in "
                        f"{scope.name}(), after workers may have forked; "
                        "create it in __init__ so the pool inherits it")
