"""A minimal neural-network layer library on top of the autodiff engine.

The paper's learned latency-difference predictor (Section 4.7) is a small
fully-connected network "similar to that of the model used in Mind Mappings...
7 hidden fully-connected layers and a total of 5737 parameters".  This module
provides the :class:`Linear`, :class:`MLP` and loss functions needed to train
such a model from scratch, plus simple feature normalization utilities.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.utils.rng import SeedLike, make_rng


class Module:
    """Base class for layers: exposes parameters and train/eval switching."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def num_parameters(self) -> int:
        """Total number of trainable scalars in the module."""
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter index to a copy of its data."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state dict has {len(state)} entries but module has {len(params)} parameters"
            )
        for i, parameter in enumerate(params):
            data = np.asarray(state[f"param_{i}"], dtype=np.float64)
            if data.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {i}: {data.shape} vs {parameter.data.shape}"
                )
            parameter.data = data.copy()


class Linear(Module):
    """Affine layer ``y = x W + b`` with Kaiming-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, seed: SeedLike = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = make_rng(seed)
        bound = float(np.sqrt(6.0 / in_features))
        weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(weight, requires_grad=True, name="weight")
        self.bias = Tensor(np.zeros(out_features), requires_grad=True, name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias


_ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "identity": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``hidden_sizes`` lists the width of each hidden layer; the Mind-Mappings
    style predictor used for the Gemmini-RTL experiments uses seven hidden
    layers sized so that the parameter count lands near the paper's 5737.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int = 1,
        activation: str = "relu",
        seed: SeedLike = None,
    ) -> None:
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}; options: {sorted(_ACTIVATIONS)}")
        rng = make_rng(seed)
        sizes = [in_features, *hidden_sizes, out_features]
        self.layers = [
            Linear(sizes[i], sizes[i + 1], seed=rng) for i in range(len(sizes) - 1)
        ]
        self.activation_name = activation
        self._activation = _ACTIVATIONS[activation]

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for layer in self.layers[:-1]:
            out = self._activation(layer(out))
        return self.layers[-1](out)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth-L1) loss; robust to outlier latencies in RTL data."""
    diff = (prediction - target).abs()
    quadratic = ops.minimum(diff, Tensor(delta))
    linear = diff - quadratic
    return (0.5 * quadratic * quadratic + delta * linear).mean()


class StandardScaler:
    """Feature standardization fitted on training data (mean 0, std 1)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
