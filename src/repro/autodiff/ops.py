"""Functional operations on :class:`~repro.autodiff.tensor.Tensor` values.

These are the building blocks of the DOSA differentiable model: products of
tiling factors, smooth maxima for the roofline latency, the softmax used for
gradient-based loop-ordering (paper Section 5.2.2), and the hinge penalty used
to keep tiling factors valid (Equation 18).

Every op records a forward-recompute closure (see
:mod:`repro.autodiff.tensor`), so graphs built from these functions can be
replayed by :class:`repro.autodiff.tape.Tape` without re-tracing.  The two
fused reductions at the bottom — :func:`fold_max` and :func:`reload_product` —
replace long chains of scalar nodes in the layer-batched DOSA model with a
single array node each, while reproducing the chained ops' values and
(sub)gradients exactly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor

TensorLike = "Tensor | float | int | np.ndarray"


def _as_tensor(value: TensorLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------------- #
# Elementwise functions
# --------------------------------------------------------------------------- #
def exp(x: TensorLike) -> Tensor:
    return _as_tensor(x).exp()


def log(x: TensorLike) -> Tensor:
    return _as_tensor(x).log()


def sqrt(x: TensorLike) -> Tensor:
    return _as_tensor(x).sqrt()


def relu(x: TensorLike) -> Tensor:
    x = _as_tensor(x)

    def forward():
        return np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray):
        return ((x, grad * (x.data > 0)),)

    return x._make_child(forward(), (x,), backward, forward)


def sigmoid(x: TensorLike) -> Tensor:
    x = _as_tensor(x)

    def forward():
        return 1.0 / (1.0 + np.exp(-x.data))

    out = x._make_child(forward(), (x,), None, forward)

    def backward(grad: np.ndarray):
        return ((x, grad * out.data * (1.0 - out.data)),)

    return out._set_backward(backward)


def tanh(x: TensorLike) -> Tensor:
    x = _as_tensor(x)

    def forward():
        return np.tanh(x.data)

    out = x._make_child(forward(), (x,), None, forward)

    def backward(grad: np.ndarray):
        return ((x, grad * (1.0 - out.data**2)),)

    return out._set_backward(backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise maximum with subgradient split evenly at ties."""
    a = _as_tensor(a)
    b = _as_tensor(b)

    def forward():
        return np.maximum(a.data, b.data)

    def backward(grad: np.ndarray):
        tie = (a.data == b.data) * 0.5
        a_mask = (a.data > b.data) + tie
        b_mask = (b.data > a.data) + tie
        return ((a, grad * a_mask), (b, grad * b_mask))

    return a._make_child(forward(), (a, b), backward, forward)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise minimum (dual of :func:`maximum`)."""
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def clamp_min(x: TensorLike, lower: float) -> Tensor:
    """Clamp ``x`` from below at ``lower`` (gradient passes where x > lower)."""
    return maximum(_as_tensor(x), Tensor(lower))


def clamp_max(x: TensorLike, upper: float) -> Tensor:
    """Clamp ``x`` from above at ``upper``."""
    return minimum(_as_tensor(x), Tensor(upper))


def where(condition: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable selection: ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is a plain boolean array (no gradient flows through it).
    The condition is captured statically, so this op is tape-replayable only
    when the condition does not depend on values that change between replays;
    for the value-dependent structural masks of the DOSA model use
    :func:`reload_product`, which re-derives its masks every pass.
    """
    a = _as_tensor(a)
    b = _as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    a_mask = cond.astype(np.float64)
    b_mask = 1.0 - a_mask

    def forward():
        return np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray):
        return ((a, grad * a_mask), (b, grad * b_mask))

    return a._make_child(forward(), (a, b), backward, forward)


def hinge_below(x: TensorLike, threshold: float = 1.0) -> Tensor:
    """``max(threshold - x, 0)`` summed over all elements.

    This is the validity penalty of Equation 18, which discourages the
    optimizer from pushing tiling factors below 1.
    """
    x = _as_tensor(x)
    return relu(Tensor(threshold) - x).sum()


# --------------------------------------------------------------------------- #
# Reductions and combinations
# --------------------------------------------------------------------------- #
def total_sum(values: Iterable[TensorLike]) -> Tensor:
    """Sum of an iterable of tensors/scalars (at least one element required)."""
    values = [_as_tensor(v) for v in values]
    if not values:
        raise ValueError("total_sum of an empty sequence")
    out = values[0]
    for value in values[1:]:
        out = out + value
    return out


def total_prod(values: Iterable[TensorLike]) -> Tensor:
    """Product of an iterable of tensors/scalars (empty product is 1.0)."""
    values = [_as_tensor(v) for v in values]
    out = Tensor(1.0)
    for value in values:
        out = out * value
    return out


def mean(values: Iterable[TensorLike]) -> Tensor:
    values = list(values)
    return total_sum(values) / float(len(values))


def stack(values: Sequence[TensorLike]) -> Tensor:
    """Stack same-shape tensors (scalars, vectors, matrices) into a new leading axis."""
    tensors = [_as_tensor(v) for v in values]
    if not tensors:
        raise ValueError("stack of an empty sequence")
    shapes = [t.data.shape for t in tensors]

    def forward():
        return np.stack([t.data for t in tensors])

    def backward(grad: np.ndarray):
        return tuple((t, grad[i].reshape(shapes[i])) for i, t in enumerate(tensors))

    return tensors[0]._make_child(forward(), tuple(tensors), backward, forward)


def concat(values: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(v) for v in values]
    if not tensors:
        raise ValueError("concat of an empty sequence")
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum([0] + sizes)

    def forward():
        return np.concatenate([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = []
        for i, t in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(int(boundaries[i]), int(boundaries[i + 1]))
            pieces.append((t, grad[tuple(index)]))
        return tuple(pieces)

    return tensors[0]._make_child(forward(), tuple(tensors), backward, forward)


def transpose(x: TensorLike, axes: Sequence[int]) -> Tensor:
    """Permute the axes of a tensor (``np.transpose`` with explicit axes).

    Used by the multi-start model to interleave per-layer columns inside each
    start's row (e.g. ``(2, S, L) -> (S, L, 2)`` before flattening to the
    per-start candidate order of the hardware derivation).
    """
    x = _as_tensor(x)
    axes = tuple(int(a) for a in axes)
    inverse = tuple(int(a) for a in np.argsort(axes))

    def forward():
        return np.transpose(x.data, axes)

    def backward(grad: np.ndarray):
        return ((x, np.transpose(grad, inverse)),)

    return x._make_child(forward(), (x,), backward, forward)


def softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Used by the gradient-based loop-ordering strategy (Equation 16) to weight
    per-ordering energies/latencies by their inverse EDP.
    """
    x = _as_tensor(x)

    def forward():
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
        exps = np.exp(shifted)
        return exps / exps.sum(axis=axis, keepdims=True)

    out = x._make_child(forward(), (x,), None, forward)

    def backward(grad: np.ndarray):
        dot = (grad * out.data).sum(axis=axis, keepdims=True)
        return ((x, out.data * (grad - dot)),)

    return out._set_backward(backward)


def log_sum_exp(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable log-sum-exp reduction along ``axis``.

    Not tape-replayable: the stabilizing shift is captured as a constant at
    trace time (the default DOSA model uses the exact max instead).
    """
    x = _as_tensor(x)
    max_data = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(max_data)
    summed = shifted.exp().sum(axis=axis, keepdims=True)
    return summed.log() + Tensor(max_data.reshape(summed.data.shape))


def smooth_max(values: Sequence[TensorLike], sharpness: float = 32.0) -> Tensor:
    """Differentiable approximation of max via log-sum-exp.

    As ``sharpness`` grows this approaches the exact maximum; it is offered as
    an alternative to the piecewise-linear :func:`maximum` for experiments on
    gradient smoothness, though the paper (and our default model) uses the
    exact max with subgradients.
    """
    stacked = stack(values) * sharpness
    return log_sum_exp(stacked, axis=0).reshape(()) / sharpness


def dot(a: Sequence[TensorLike] | Tensor, b: Sequence[TensorLike] | Tensor) -> Tensor:
    """Inner product of two vectors (lists of scalars or 1-D tensors)."""
    a_tensor = a if isinstance(a, Tensor) else stack(list(a))
    b_tensor = b if isinstance(b, Tensor) else stack(list(b))
    return (a_tensor * b_tensor).sum()


# --------------------------------------------------------------------------- #
# Fused reductions for the layer-batched DOSA model
# --------------------------------------------------------------------------- #
def fold_sum(x: TensorLike, axis: int = -1) -> Tensor:
    """Left-fold sum along ``axis``, as a single node.

    Value-identical to chaining ``x[0] + x[1] + ...`` the way
    :func:`total_sum` folds a Python list (NumPy's ``sum`` uses pairwise
    summation, which rounds differently).  On a 1-D tensor this reduces to a
    scalar; on an ``(S, L)`` stack it reduces every row independently (the
    multi-start model folds each start's layers exactly as the per-start fold
    would).  The backward pass broadcasts the incoming gradient along the
    reduced axis, which is order-independent.
    """
    x = _as_tensor(x)
    if x.data.ndim == 0 or x.data.size == 0:
        raise ValueError(f"fold_sum expects a non-empty tensor with ndim >= 1, "
                         f"got shape {x.shape}")
    axis_n = axis % x.data.ndim

    def forward():
        return np.asarray(np.take(np.cumsum(x.data, axis=axis_n), -1, axis=axis_n))

    def backward(grad: np.ndarray):
        grad = np.expand_dims(np.asarray(grad, dtype=np.float64), axis_n)
        return ((x, np.broadcast_to(grad, x.data.shape)),)

    return x._make_child(forward(), (x,), backward, forward)


def fold_max(x: TensorLike, axis: int = -1) -> Tensor:
    """Left-fold maximum along ``axis``, as a single node.

    Equivalent — in value *and* subgradient — to chaining
    ``maximum(maximum(x[0], x[1]), x[2]) ...`` the way the per-layer hardware
    derivation folds its candidates: at every pairwise tie the gradient splits
    0.5/0.5, so earlier tied candidates receive geometrically smaller shares
    (unlike :meth:`Tensor.max`, which splits evenly among *all* ties).  Like
    :func:`fold_sum`, rows of an N-D tensor fold independently, so each start
    of a multi-start stack sees exactly the per-start fold semantics.
    """
    x = _as_tensor(x)
    if x.data.ndim == 0:
        raise ValueError(f"fold_max expects a tensor with ndim >= 1, got shape {x.shape}")
    axis_n = axis % x.data.ndim

    def forward():
        return np.asarray(np.maximum.reduce(x.data, axis=axis_n))

    def backward(grad: np.ndarray):
        data = np.moveaxis(x.data, axis_n, -1)
        grad = np.asarray(grad, dtype=np.float64)[..., None]
        n = data.shape[-1]
        if n == 1:
            contribution = np.broadcast_to(grad, data.shape)
            return ((x, np.moveaxis(contribution, -1, axis_n)),)
        running = np.maximum.accumulate(data, axis=-1)
        prev, new = running[..., :-1], data[..., 1:]
        # Share of the gradient taken by each newcomer / kept by the running
        # max at every fold step (ties split evenly, as in ops.maximum).
        take = (new > prev) + 0.5 * (new == prev)
        keep = 1.0 - take
        suffix = np.ones_like(data)
        np.multiply.accumulate(keep[..., ::-1], axis=-1, out=suffix[..., -2::-1])
        shares = np.empty_like(data)
        shares[..., 0] = suffix[..., 0]
        shares[..., 1:] = take * suffix[..., 1:]
        return ((x, np.moveaxis(grad * shares, -1, axis_n)),)

    return x._make_child(forward(), (x,), backward, forward)


def reload_product(walk: Tensor, relevant: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Loop-order-aware reload-factor product over a ``(..., positions)`` walk.

    ``walk`` holds, per batch row, the temporal factors in walk order (levels
    outward, innermost loop first within each level); ``relevant`` marks the
    positions whose dimension is relevant to the tensor being analyzed.  Any
    number of leading batch axes is supported — ``(L, positions)`` for the
    layer-batched model, ``(S, L, positions)`` for the multi-start model —
    with each row reduced independently along the last axis.  A position
    multiplies into the product iff its factor exceeds ``1 + eps`` and it is
    either relevant or preceded by an active relevant position — exactly the
    ``seen_relevant`` state machine of
    :func:`repro.timeloop.loopnest.reload_factor` and its differentiable
    counterpart.  Excluded positions contribute a factor of exactly 1.0 and
    receive zero gradient, matching the per-layer graph that simply omits
    them.  The inclusion masks are re-derived from ``walk.data`` on every
    forward/backward pass, so the op stays correct under tape replay while
    the graph wiring remains static.
    """
    relevant = np.asarray(relevant, dtype=bool)
    if walk.data.shape != relevant.shape:
        raise ValueError(
            f"walk/relevant shape mismatch: {walk.data.shape} vs {relevant.shape}")

    def include_mask() -> np.ndarray:
        active = walk.data > 1.0 + eps
        relevant_active = active & relevant
        seen_before = (np.cumsum(relevant_active, axis=-1) - relevant_active) > 0
        return active & (relevant | seen_before)

    def forward():
        gated = np.where(include_mask(), walk.data, 1.0)
        return np.multiply.reduce(gated, axis=-1)

    def backward(grad: np.ndarray):
        include = include_mask()
        gated = np.where(include, walk.data, 1.0)
        prefix = np.ones_like(gated)
        suffix = np.ones_like(gated)
        if gated.shape[-1] > 1:
            np.multiply.accumulate(gated[..., :-1], axis=-1, out=prefix[..., 1:])
            np.multiply.accumulate(gated[..., :0:-1], axis=-1, out=suffix[..., -2::-1])
        partials = grad[..., None] * prefix * suffix
        return ((walk, np.where(include, partials, 0.0)),)

    return walk._make_child(forward(), (walk,), backward, forward)
