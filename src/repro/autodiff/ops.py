"""Functional operations on :class:`~repro.autodiff.tensor.Tensor` values.

These are the building blocks of the DOSA differentiable model: products of
tiling factors, smooth maxima for the roofline latency, the softmax used for
gradient-based loop-ordering (paper Section 5.2.2), and the hinge penalty used
to keep tiling factors valid (Equation 18).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor

TensorLike = "Tensor | float | int | np.ndarray"


def _as_tensor(value: TensorLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# --------------------------------------------------------------------------- #
# Elementwise functions
# --------------------------------------------------------------------------- #
def exp(x: TensorLike) -> Tensor:
    return _as_tensor(x).exp()


def log(x: TensorLike) -> Tensor:
    return _as_tensor(x).log()


def sqrt(x: TensorLike) -> Tensor:
    return _as_tensor(x).sqrt()


def relu(x: TensorLike) -> Tensor:
    x = _as_tensor(x)
    mask = (x.data > 0).astype(np.float64)
    out_data = x.data * mask

    def backward(grad: np.ndarray):
        return ((x, grad * mask),)

    return x._make_child(out_data, (x,), backward)


def sigmoid(x: TensorLike) -> Tensor:
    x = _as_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray):
        return ((x, grad * out_data * (1.0 - out_data)),)

    return x._make_child(out_data, (x,), backward)


def tanh(x: TensorLike) -> Tensor:
    x = _as_tensor(x)
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray):
        return ((x, grad * (1.0 - out_data**2)),)

    return x._make_child(out_data, (x,), backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise maximum with subgradient split evenly at ties."""
    a = _as_tensor(a)
    b = _as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_mask = (a.data > b.data).astype(np.float64)
    b_mask = (b.data > a.data).astype(np.float64)
    tie = (a.data == b.data).astype(np.float64) * 0.5
    a_mask = a_mask + tie
    b_mask = b_mask + tie

    def backward(grad: np.ndarray):
        return ((a, grad * a_mask), (b, grad * b_mask))

    return a._make_child(out_data, (a, b), backward)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise minimum (dual of :func:`maximum`)."""
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def clamp_min(x: TensorLike, lower: float) -> Tensor:
    """Clamp ``x`` from below at ``lower`` (gradient passes where x > lower)."""
    return maximum(_as_tensor(x), Tensor(lower))


def clamp_max(x: TensorLike, upper: float) -> Tensor:
    """Clamp ``x`` from above at ``upper``."""
    return minimum(_as_tensor(x), Tensor(upper))


def where(condition: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable selection: ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is a plain boolean array (no gradient flows through it).
    """
    a = _as_tensor(a)
    b = _as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)
    a_mask = cond.astype(np.float64)
    b_mask = 1.0 - a_mask

    def backward(grad: np.ndarray):
        return ((a, grad * a_mask), (b, grad * b_mask))

    return a._make_child(out_data, (a, b), backward)


def hinge_below(x: TensorLike, threshold: float = 1.0) -> Tensor:
    """``max(threshold - x, 0)`` summed over all elements.

    This is the validity penalty of Equation 18, which discourages the
    optimizer from pushing tiling factors below 1.
    """
    x = _as_tensor(x)
    return relu(Tensor(threshold) - x).sum()


# --------------------------------------------------------------------------- #
# Reductions and combinations
# --------------------------------------------------------------------------- #
def total_sum(values: Iterable[TensorLike]) -> Tensor:
    """Sum of an iterable of tensors/scalars (at least one element required)."""
    values = [_as_tensor(v) for v in values]
    if not values:
        raise ValueError("total_sum of an empty sequence")
    out = values[0]
    for value in values[1:]:
        out = out + value
    return out


def total_prod(values: Iterable[TensorLike]) -> Tensor:
    """Product of an iterable of tensors/scalars (empty product is 1.0)."""
    values = [_as_tensor(v) for v in values]
    out = Tensor(1.0)
    for value in values:
        out = out * value
    return out


def mean(values: Iterable[TensorLike]) -> Tensor:
    values = list(values)
    return total_sum(values) / float(len(values))


def stack(values: Sequence[TensorLike]) -> Tensor:
    """Stack scalars/1-D tensors of identical shape into a new leading axis."""
    tensors = [_as_tensor(v) for v in values]
    if not tensors:
        raise ValueError("stack of an empty sequence")
    out_data = np.stack([t.data for t in tensors])
    shapes = [t.data.shape for t in tensors]

    def backward(grad: np.ndarray):
        return tuple((t, grad[i].reshape(shapes[i])) for i, t in enumerate(tensors))

    return tensors[0]._make_child(out_data, tuple(tensors), backward)


def concat(values: Sequence[TensorLike], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [_as_tensor(v) for v in values]
    if not tensors:
        raise ValueError("concat of an empty sequence")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        pieces = []
        for i, t in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(int(boundaries[i]), int(boundaries[i + 1]))
            pieces.append((t, grad[tuple(index)]))
        return tuple(pieces)

    return tensors[0]._make_child(out_data, tuple(tensors), backward)


def softmax(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Used by the gradient-based loop-ordering strategy (Equation 16) to weight
    per-ordering energies/latencies by their inverse EDP.
    """
    x = _as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return ((x, out_data * (grad - dot)),)

    return x._make_child(out_data, (x,), backward)


def log_sum_exp(x: TensorLike, axis: int = -1) -> Tensor:
    """Numerically stable log-sum-exp reduction along ``axis``."""
    x = _as_tensor(x)
    max_data = x.data.max(axis=axis, keepdims=True)
    shifted = x - Tensor(max_data)
    summed = shifted.exp().sum(axis=axis, keepdims=True)
    return summed.log() + Tensor(max_data.reshape(summed.data.shape))


def smooth_max(values: Sequence[TensorLike], sharpness: float = 32.0) -> Tensor:
    """Differentiable approximation of max via log-sum-exp.

    As ``sharpness`` grows this approaches the exact maximum; it is offered as
    an alternative to the piecewise-linear :func:`maximum` for experiments on
    gradient smoothness, though the paper (and our default model) uses the
    exact max with subgradients.
    """
    stacked = stack(values) * sharpness
    return log_sum_exp(stacked, axis=0).reshape(()) / sharpness


def dot(a: Sequence[TensorLike] | Tensor, b: Sequence[TensorLike] | Tensor) -> Tensor:
    """Inner product of two vectors (lists of scalars or 1-D tensors)."""
    a_tensor = a if isinstance(a, Tensor) else stack(list(a))
    b_tensor = b if isinstance(b, Tensor) else stack(list(b))
    return (a_tensor * b_tensor).sum()
