"""Finite-difference gradient checking for the autodiff engine.

The correctness of every gradient the DOSA optimizer consumes rests on the
autodiff engine, so the test suite verifies analytic gradients against central
finite differences for both the raw ops and the full differentiable
performance model.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


def numeric_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
) -> list[np.ndarray]:
    """Central finite-difference gradient of ``func`` w.r.t. each input tensor.

    ``func`` must return a scalar ``Tensor``; inputs are perturbed elementwise.
    """
    grads: list[np.ndarray] = []
    for tensor in inputs:
        grad = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        grad_flat = grad.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + eps
            plus = float(func(inputs).data)
            flat[index] = original - eps
            minus = float(func(inputs).data)
            flat[index] = original
            grad_flat[index] = (plus - minus) / (2.0 * eps)
        grads.append(grad)
    return grads


def check_gradients(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare autodiff gradients of ``func`` against finite differences.

    Returns True when all gradients match within tolerance; raises
    ``AssertionError`` with a description of the first mismatch otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(inputs)
    if output.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()
    numeric = numeric_gradient(func, inputs, eps=eps)
    for i, (tensor, expected) in enumerate(zip(inputs, numeric)):
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, rtol=rtol, atol=atol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch on input {i}: max abs diff {worst:.3e}\n"
                f"analytic={actual}\nnumeric={expected}"
            )
    return True
