"""First-order optimizers operating on :class:`Tensor` parameters.

The paper uses Adam ("an optimizer similar to gradient descent with momentum",
Section 6.1) to descend the differentiable EDP model; plain SGD is provided as
well for comparison and for the tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class: tracks parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: list[Tensor] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer created with no parameters")
        for parameter in self.parameters:
            if not parameter.requires_grad:
                raise ValueError("all optimized parameters must require grad")

    def zero_grad(self) -> None:
        """Drop every parameter's gradient to ``None`` (torch semantics).

        No zero arrays are allocated: ``backward`` initializes each gradient
        on its first accumulation, so clearing costs nothing per step.
        """
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the descent algorithm used by DOSA.

    ``fused=True`` selects an allocation-free update path: moments and the
    parameter arrays are updated in place through two preallocated scratch
    buffers per parameter.  The fused update computes bit-identical values to
    the default path (same operations in the same order); the only observable
    difference is that ``parameter.data`` is mutated rather than replaced, so
    callers holding references to the old array will see it change.  The
    DOSA inner loop runs fused; the default stays allocation-per-step for
    code that snapshots ``.data`` between steps.
    """

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        fused: bool = False,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.fused = fused
        self._step_count = 0
        self._m: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch: list[tuple[np.ndarray, np.ndarray]] = (
            [(np.empty_like(p.data), np.empty_like(p.data)) for p in self.parameters]
            if fused else [])

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        if self.fused:
            self._fused_step(bias1, bias2)
            return
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _fused_step(self, bias1: float, bias2: float) -> None:
        """In-place Adam update through scratch buffers (no allocations)."""
        for parameter, m, v, (s1, s2) in zip(self.parameters, self._m, self._v,
                                             self._scratch):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m *= self.beta1
            m += s1
            np.multiply(grad, grad, out=s1)
            s1 *= 1.0 - self.beta2
            v *= self.beta2
            v += s1
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            s2 *= self.lr
            s2 /= s1
            parameter.data -= s2


class LearningRateSchedule:
    """Simple multiplicative step decay schedule for an optimizer's ``lr``."""

    def __init__(self, optimizer: SGD | Adam, decay: float = 1.0, every: int = 100) -> None:
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.optimizer = optimizer
        self.decay = decay
        self.every = every
        self._steps = 0

    def step(self) -> None:
        """Advance one optimization step; decay the learning rate on schedule."""
        self._steps += 1
        if self._steps % self.every == 0:
            self.optimizer.lr *= self.decay
