"""First-order optimizers operating on :class:`Tensor` parameters.

The paper uses Adam ("an optimizer similar to gradient descent with momentum",
Section 6.1) to descend the differentiable EDP model; plain SGD is provided as
well for comparison and for the tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


class Optimizer:
    """Base class: tracks parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: list[Tensor] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer created with no parameters")
        for parameter in self.parameters:
            if not parameter.requires_grad:
                raise ValueError("all optimized parameters must require grad")

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data = parameter.data + velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the descent algorithm used by DOSA."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: Sequence[float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: list[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LearningRateSchedule:
    """Simple multiplicative step decay schedule for an optimizer's ``lr``."""

    def __init__(self, optimizer: SGD | Adam, decay: float = 1.0, every: int = 100) -> None:
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        self.optimizer = optimizer
        self.decay = decay
        self.every = every
        self._steps = 0

    def step(self) -> None:
        """Advance one optimization step; decay the learning rate on schedule."""
        self._steps += 1
        if self._steps % self.every == 0:
            self.optimizer.lr *= self.decay
