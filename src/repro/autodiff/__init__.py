"""Reverse-mode automatic differentiation over NumPy arrays.

This package is the reproduction's substitute for PyTorch: the DOSA
differentiable performance model (Equations 1-18 of the paper) and the DNN
surrogate model are both built on the :class:`~repro.autodiff.tensor.Tensor`
type defined here.  It provides:

* ``Tensor`` — an array wrapper recording a dynamic computation graph and
  supporting broadcasting-aware reverse-mode backpropagation,
* ``ops`` — a functional library (exp, log, power, maximum, softmax,
  reductions, matmul, stacking, clamping, fused fold/reload reductions ...),
* ``optim`` — SGD and Adam optimizers (Adam with a fused in-place path),
* ``tape`` — compiled-tape replay of a traced graph (re-trace once per
  structural change instead of once per step),
* ``nn`` — a minimal neural-network layer library (Linear, MLP, losses),
* ``gradcheck`` — finite-difference gradient verification used by the tests.
"""

from repro.autodiff.tensor import Tensor, no_grad
from repro.autodiff import ops
from repro.autodiff.ops import (
    concat,
    stack,
    exp,
    log,
    sqrt,
    maximum,
    minimum,
    relu,
    sigmoid,
    tanh,
    softmax,
    clamp_min,
    clamp_max,
    where,
    total_sum,
    total_prod,
    mean,
)
from repro.autodiff.optim import SGD, Adam, Optimizer
from repro.autodiff.tape import Tape, TapeError
from repro.autodiff import nn
from repro.autodiff.gradcheck import numeric_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "ops",
    "nn",
    "concat",
    "stack",
    "exp",
    "log",
    "sqrt",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "clamp_min",
    "clamp_max",
    "where",
    "total_sum",
    "total_prod",
    "mean",
    "SGD",
    "Adam",
    "Optimizer",
    "Tape",
    "TapeError",
    "numeric_gradient",
    "check_gradients",
]
