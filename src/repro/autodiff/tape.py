"""Compiled-tape replay of a traced autodiff graph.

Re-tracing the DOSA loss every gradient step rebuilds the same Python graph —
the same ops, the same wiring — hundreds of times with fresh ``Tensor``
allocations, closure objects and a fresh topological sort.  Between rounding
points the graph *structure* is static (loop orderings only change when a
mapping is re-snapped), so all of that work can be paid once: :class:`Tape`
traces the loss closure a single time, caches the topological order and the
per-node forward/backward closures, and thereafter **replays** the graph —
forward by re-executing each node's recompute closure against the parents'
current ``.data``, backward by running the standard reverse accumulation over
the cached order.

Replay is exact, not approximate: recompute closures read parent data at call
time and value-dependent masks (``ops.relu``, ``ops.maximum`` subgradients,
``ops.reload_product`` inclusion masks) are re-derived on every pass, so a
replayed forward/backward is bit-identical to re-tracing the same closure —
the regression tests assert ``==``, not a tolerance.  What must stay fixed is
the *wiring*: the traced closure may not branch on parameter values or bake
them into constants (e.g. :func:`repro.autodiff.ops.log_sum_exp` captures its
stabilizing shift and is not replayable).  When the structure does change —
DOSA re-selects loop orderings at a rounding point — call :meth:`invalidate`
and the next :meth:`forward` re-traces.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autodiff.tensor import Tensor, backpropagate, topological_order


class TapeError(RuntimeError):
    """Raised when a traced graph cannot be replayed."""


class Tape:
    """Trace a loss closure once, then replay its forward/backward cheaply.

    ``build`` is a zero-argument closure returning a scalar loss ``Tensor``
    over a fixed set of leaf parameters.  Typical use, mirroring the usual
    re-tracing loop::

        tape = Tape(lambda: model_loss(factors))
        for _ in range(steps):
            optimizer.zero_grad()
            loss = tape.forward()     # first call traces, later calls replay
            tape.backward()           # == loss.backward() on a fresh trace
            optimizer.step()

    The tape holds the traced output tensor and the cached topological order;
    parameters keep their identity across steps, so optimizer state attached
    to them stays valid.
    """

    def __init__(self, build: Callable[[], Tensor]) -> None:
        self._build = build
        self._output: Tensor | None = None
        self._order: list[Tensor] = []
        self._replay_nodes: list[Tensor] = []

    # ------------------------------------------------------------------ #
    @property
    def recorded(self) -> bool:
        """Whether a traced graph is currently cached."""
        return self._output is not None

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes in the cached topological order."""
        return len(self._order)

    def invalidate(self) -> None:
        """Drop the cached graph; the next :meth:`forward` re-traces.

        Call this whenever the graph *structure* may have changed — for DOSA,
        after a rounding point re-selects loop orderings (the walk-order
        gather indices are baked into the wiring).
        """
        self._output = None
        self._order = []
        self._replay_nodes = []

    # ------------------------------------------------------------------ #
    def forward(self) -> Tensor:
        """Return the loss tensor: trace on first use, replay afterwards."""
        if self._output is None:
            return self._trace()
        for node in self._replay_nodes:
            node.data = node._recompute()
        return self._output

    def backward(self) -> None:
        """Reverse accumulation over the cached order (grads into leaves)."""
        if self._output is None:
            raise TapeError("backward() before forward(): nothing is recorded")
        backpropagate(self._output, self._order, np.ones_like(self._output.data))

    # ------------------------------------------------------------------ #
    def _trace(self) -> Tensor:
        output = self._build()
        if not isinstance(output, Tensor):
            raise TapeError(f"traced closure must return a Tensor, got {type(output).__name__}")
        if not output.requires_grad:
            raise TapeError("traced closure returned a tensor that does not require grad "
                            "(no differentiable parameters reached the output)")
        if output.data.size != 1:
            raise TapeError(f"traced loss must be a scalar, got shape {output.shape}")
        order = topological_order(output)
        replay_nodes = []
        for node in order:
            if node._parents and node._recompute is None:
                raise TapeError(
                    "traced graph contains an op without a forward-recompute "
                    "closure and cannot be replayed"
                    + (f" (node {node.name!r})" if node.name else ""))
            if node._recompute is not None:
                replay_nodes.append(node)
        self._output = output
        self._order = order
        self._replay_nodes = replay_nodes
        return output
