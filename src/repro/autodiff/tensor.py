"""The :class:`Tensor` type: a NumPy array with reverse-mode autodiff.

Every differentiable quantity in the DOSA model — tiling factors, capacities,
access counts, latencies, energies, and the final EDP loss — is represented as
a ``Tensor``.  Calling :meth:`Tensor.backward` on a scalar loss walks the
recorded computation graph in reverse topological order and accumulates
gradients into every leaf tensor created with ``requires_grad=True``.

The implementation intentionally mirrors the small, explicit style of
micro-autograd engines: each operation stores its parents, a closure that
propagates the incoming gradient, and a closure that recomputes its forward
value from the parents' *current* ``.data``.  The recompute closures are what
make :class:`repro.autodiff.tape.Tape` possible: a captured graph can be
replayed forward and backward with fresh parameter values instead of being
re-traced from Python every optimizer step.  To keep replay faithful, backward
closures read ``.data`` at call time rather than capturing arrays at trace
time.  Broadcasting is supported; gradients are summed back to the parent's
shape before accumulation.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

ArrayLike = "Tensor | np.ndarray | float | int | list | tuple"

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    """Return whether operations currently record the computation graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def topological_order(root: "Tensor") -> list["Tensor"]:
    """Ancestors of ``root`` that require grad, parents before children.

    This is the traversal order used by :meth:`Tensor.backward`; it is exposed
    so :class:`repro.autodiff.tape.Tape` can cache it once and replay the same
    schedule every step.
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    return order


def backpropagate(root: "Tensor", topo_order: list["Tensor"], grad: np.ndarray) -> None:
    """Run reverse-mode accumulation along a precomputed topological order.

    Shared by :meth:`Tensor.backward` (which computes the order on the fly)
    and :class:`repro.autodiff.tape.Tape` (which caches it), so a tape replay
    performs bit-for-bit the same accumulation as a fresh re-trace.
    """
    grads: dict[int, np.ndarray] = {id(root): grad}
    for node in reversed(topo_order):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node._backward is not None:
            for parent, contribution in node._backward(node_grad):
                if not parent.requires_grad or contribution is None:
                    continue
                contribution = _unbroadcast(
                    np.asarray(contribution, dtype=np.float64), parent.data.shape
                )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution
        if not node._parents:
            # Leaf tensor: expose the accumulated gradient via ``.grad``.
            node._accumulate(node_grad)


class Tensor:
    """A NumPy-backed tensor participating in a dynamic autodiff graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "_recompute", "name")

    # Make numpy defer to Tensor for mixed operations such as ``2.0 * tensor``.
    __array_priority__ = 200

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._recompute: Callable[[], np.ndarray] | None = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape: Sequence[int] | int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int] | int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int] | int, value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=np.float64), requires_grad=requires_grad)

    @staticmethod
    def as_tensor(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._raise_item()

    def _raise_item(self) -> float:
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def numpy(self) -> np.ndarray:
        """Return a copy of the underlying data as a NumPy array."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #
    def _make_child(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None] | None,
        forward: Callable[[], np.ndarray] | None = None,
    ) -> "Tensor":
        """Create an op result wired into the graph when grad is enabled.

        ``backward`` propagates an incoming gradient to the parents;
        ``forward`` recomputes this node's value from the parents' current
        ``.data`` (used by tape replay).  Ops whose backward needs the output
        value pass ``backward=None`` here and attach it with
        :meth:`_set_backward` once the child exists.
        """
        child = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            child.requires_grad = True
            child._parents = parents
            child._backward = backward
            child._recompute = forward
        return child

    def _set_backward(self, backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Attach a late-bound backward closure (only if this node is wired)."""
        if self._parents:
            self._backward = backward
        return self

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            # Gradients are initialized on first accumulation (``zero_grad``
            # drops them to ``None``), so no per-step zero buffers are
            # allocated.  The copy keeps ``.grad`` an owned, writable array:
            # the incoming contribution may be a read-only broadcast view or
            # an array also delivered to a sibling leaf.
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Reset the accumulated gradient of this tensor (drops it to None)."""
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1.0 and must match this tensor's shape otherwise.
        Gradients accumulate into ``.grad`` of every reachable tensor that was
        created with ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.broadcast_to(np.asarray(grad, dtype=np.float64), self.data.shape).copy()
        backpropagate(self, topological_order(self), grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)

        def forward():
            return self.data + other.data

        def backward(grad: np.ndarray):
            return ((self, grad), (other, grad))

        return self._make_child(forward(), (self, other), backward, forward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) + self

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)

        def forward():
            return self.data - other.data

        def backward(grad: np.ndarray):
            return ((self, grad), (other, -grad))

        return self._make_child(forward(), (self, other), backward, forward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) - self

    def __neg__(self) -> "Tensor":
        def forward():
            return -self.data

        def backward(grad: np.ndarray):
            return ((self, -grad),)

        return self._make_child(forward(), (self,), backward, forward)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)

        def forward():
            return self.data * other.data

        def backward(grad: np.ndarray):
            return ((self, grad * other.data), (other, grad * self.data))

        return self._make_child(forward(), (self, other), backward, forward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) * self

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor.as_tensor(other)

        def forward():
            return self.data / other.data

        def backward(grad: np.ndarray):
            return (
                (self, grad / other.data),
                (other, -grad * self.data / (other.data**2)),
            )

        return self._make_child(forward(), (self, other), backward, forward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            return self._tensor_pow(exponent)

        def forward():
            return self.data**exponent

        def backward(grad: np.ndarray):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        return self._make_child(forward(), (self,), backward, forward)

    def _tensor_pow(self, exponent: "Tensor") -> "Tensor":
        def forward():
            return self.data**exponent.data

        out = self._make_child(forward(), (self, exponent), None, forward)

        def backward(grad: np.ndarray):
            base_data, exp_data = self.data, exponent.data
            grad_base = grad * exp_data * base_data ** (exp_data - 1)
            with np.errstate(divide="ignore", invalid="ignore"):
                log_base = np.where(base_data > 0, np.log(np.maximum(base_data, 1e-300)), 0.0)
            grad_exp = grad * out.data * log_base
            return ((self, grad_base), (exponent, grad_exp))

        return out._set_backward(backward)

    # ------------------------------------------------------------------ #
    # Matrix multiply, reshaping, indexing
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = Tensor.as_tensor(other)

        def forward():
            return self.data @ other.data

        def backward(grad: np.ndarray):
            self_data, other_data = self.data, other.data
            if self_data.ndim == 1 and other_data.ndim == 1:
                # inner product: grad is scalar
                return ((self, grad * other_data), (other, grad * self_data))
            if self_data.ndim == 1:
                grad_self = grad @ other_data.T
                grad_other = np.outer(self_data, grad)
                return ((self, grad_self), (other, grad_other))
            if other_data.ndim == 1:
                grad_self = np.outer(grad, other_data)
                grad_other = self_data.T @ grad
                return ((self, grad_self), (other, grad_other))
            grad_self = grad @ np.swapaxes(other_data, -1, -2)
            grad_other = np.swapaxes(self_data, -1, -2) @ grad
            return ((self, grad_self), (other, grad_other))

        return self._make_child(forward(), (self, other), backward, forward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape

        def forward():
            return self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return ((self, grad.reshape(original_shape)),)

        return self._make_child(forward(), (self,), backward, forward)

    def transpose(self) -> "Tensor":
        def forward():
            return self.data.T

        def backward(grad: np.ndarray):
            return ((self, grad.T),)

        return self._make_child(forward(), (self,), backward, forward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        shape = self.data.shape

        def forward():
            return self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros(shape, dtype=np.float64)
            np.add.at(full, index, grad)
            return ((self, full),)

        return self._make_child(forward(), (self,), backward, forward)

    # ------------------------------------------------------------------ #
    # Reductions and elementwise functions (method forms)
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        shape = self.data.shape

        def forward():
            return self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(grad, shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                if not keepdims:
                    for ax in sorted(a % len(shape) for a in axes):
                        grad = np.expand_dims(grad, ax)
                expanded = np.broadcast_to(grad, shape)
            return ((self, expanded),)

        return self._make_child(forward(), (self,), backward, forward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def prod(self) -> "Tensor":
        """Product over all elements (differentiable, tolerant of zeros)."""

        def forward():
            return np.asarray(float(np.prod(self.data)))

        def backward(grad: np.ndarray):
            grad_value = float(np.asarray(grad).reshape(-1)[0])
            flat = self.data.reshape(-1)
            n = flat.size
            # Gradient of the product w.r.t. each element is the product of
            # all the others; computed with exclusive prefix/suffix products
            # so that a single zero element does not wipe out every gradient.
            prefix = np.ones(n)
            suffix = np.ones(n)
            if n > 1:
                np.multiply.accumulate(flat[:-1], out=prefix[1:])
                np.multiply.accumulate(flat[:0:-1], out=suffix[-2::-1])
            partials = prefix * suffix
            return ((self, (grad_value * partials).reshape(self.data.shape)),)

        return self._make_child(forward(), (self,), backward, forward)

    def max(self) -> "Tensor":
        def forward():
            return np.asarray(self.data.max())

        out = self._make_child(forward(), (self,), None, forward)

        def backward(grad: np.ndarray):
            grad_value = float(np.asarray(grad).reshape(-1)[0])
            mask = (self.data == out.data).astype(np.float64)
            mask /= mask.sum()
            return ((self, grad_value * mask),)

        return out._set_backward(backward)

    def min(self) -> "Tensor":
        return -((-self).max())

    def exp(self) -> "Tensor":
        def forward():
            return np.exp(self.data)

        out = self._make_child(forward(), (self,), None, forward)

        def backward(grad: np.ndarray):
            return ((self, grad * out.data),)

        return out._set_backward(backward)

    def log(self) -> "Tensor":
        def forward():
            return np.log(self.data)

        def backward(grad: np.ndarray):
            return ((self, grad / self.data),)

        return self._make_child(forward(), (self,), backward, forward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        def forward():
            return np.abs(self.data)

        def backward(grad: np.ndarray):
            return ((self, grad * np.sign(self.data)),)

        return self._make_child(forward(), (self,), backward, forward)

    # ------------------------------------------------------------------ #
    # Comparisons (non-differentiable, return plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __lt__(self, other: ArrayLike):
        return self.data < Tensor.as_tensor(other).data

    def __le__(self, other: ArrayLike):
        return self.data <= Tensor.as_tensor(other).data

    def __gt__(self, other: ArrayLike):
        return self.data > Tensor.as_tensor(other).data

    def __ge__(self, other: ArrayLike):
        return self.data >= Tensor.as_tensor(other).data


def parameters_size(tensors: Iterable[Tensor]) -> int:
    """Total number of scalar parameters across ``tensors``."""
    return sum(t.size for t in tensors)
