"""The DOSA searcher: one-loop, mapping-first gradient-descent co-search.

For each start point (random hardware + CoSA mappings), DOSA descends the
differentiable whole-model EDP with Adam, jointly over all layers' tiling
factors.  Every ``rounding_period`` steps the fractional factors are snapped
to the nearest valid mapping, the loop orderings are (optionally) re-selected,
the minimal hardware configuration is derived, and the candidate design is
scored with the reference (Timeloop-style) model.  The best reference-scored
design across all start points is the search result.

By default the descent runs start-batched *and* layer-batched
(:class:`~repro.core.dmodel.factors.MultiStartFactors`: all S start points x
L layers in one ``(S, L, ...)`` array-op graph, so a single gradient step
advances every start point) with a compiled
:class:`~repro.autodiff.tape.Tape` replayed between rounding points and a
fused in-place Adam.  Start points share no graph nodes, so each start's
descent trajectory — losses, gradients, Adam updates, rounded designs — is
bit-identical to descending it alone, and seeded outcomes match the
sequential schedule (``DosaSettings(batched_starts=False)``) and the
per-layer model (``DosaSettings(batched_model=False)``) design-for-design.
What changes under start batching is only *interleaving*: candidates arrive
grouped by rounding point rather than by start point, so ``candidates`` /
``trace`` ordering (not membership) and callback order differ.

Sample accounting follows the paper: every gradient step counts as one model
evaluation per start point ("evaluations done using Timeloop are considered
equivalent to evaluations done using DOSA's differentiable model"), and each
reference evaluation at a rounding point also counts one sample per layer
mapping.  Under a binding ``max_samples`` budget the batched descent narrows
via a per-start *active mask*: when the remaining allowance cannot fund one
sample for every active start, trailing starts are frozen (masked out of the
loss and no longer rounded) so the leading starts — the ones the sequential
schedule would have funded — keep descending.

The searcher implements the unified :mod:`repro.search.api` protocol: it is
registered as strategy ``"dosa"`` and returns a :class:`SearchOutcome` whose
``extras["start_points"]`` holds the generated GD start points.  Reference
evaluations at rounding points go through one per-run
:class:`~repro.eval.engine.EvaluationEngine` (``n_workers`` selects its
process pool), so re-visited rounded designs are served from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np

from repro.arch.config import HardwareBounds, HardwareConfig
from repro.autodiff import Adam, Tape, Tensor, ops
from repro.eval.cache import EvaluationCache
from repro.eval.engine import EvaluationEngine
from repro.core.dmodel.factors import (
    LayerFactors,
    MultiStartFactors,
    NetworkFactors,
)
from repro.core.dmodel.loss import (
    best_ordering_per_layer,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.core.dmodel.model import DifferentiableModel
from repro.core.optimizer.startpoints import (
    StartPoint,
    generate_start_points,
    stack_start_points,
)
from repro.mapping.constraints import minimal_hardware_for_mappings
from repro.mapping.mapping import Mapping, NUM_LEVELS
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchOutcome,
    SearchSession,
    register_searcher,
)
from repro.timeloop.model import NetworkPerformance
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


class LoopOrderingStrategy(str, Enum):
    """Loop-ordering search strategies compared in Figure 6."""

    NONE = "baseline"      # keep the start point's orderings
    ITERATE = "iterate"    # re-select WS/IS/OS at every rounding point
    SOFTMAX = "softmax"    # gradient-based softmax weighting (Eq. 15-17)


@dataclass
class DosaSettings:
    """Hyperparameters of the DOSA search (paper Section 6.1).

    ``batched_model`` selects the layer-batched differentiable model
    (:class:`~repro.core.dmodel.factors.NetworkFactors`): one array-op graph
    per gradient step instead of one scalar graph per layer.  Loss values
    are bit-identical to the per-layer model and gradients agree to
    floating-point accumulation order, so seeded outcomes match; the batched
    path is simply faster.  ``use_tape`` additionally replays a compiled
    :class:`~repro.autodiff.tape.Tape` between rounding points instead of
    re-tracing the graph every step (replay is bit-identical to re-tracing).

    ``batched_starts`` extends the batching one axis further
    (:class:`~repro.core.dmodel.factors.MultiStartFactors`): all
    ``num_start_points`` descents advance together in one ``(S, L, ...)``
    graph instead of running one after another.  Per-start trajectories are
    bit-identical to the sequential schedule, so seeded best designs and
    total sample counts match; only the order in which candidates are
    discovered (grouped by rounding point instead of by start point) and the
    budget-exhaustion behaviour (trailing starts are frozen via a mask when
    the sample allowance runs short, and every still-active start receives a
    final rounding evaluation) differ.  It requires — and is only consulted
    with — ``batched_model=True``.

    ``batched_rounding`` vectorizes the rounding points themselves: the
    nearest-divisor walk runs as one ``(S, L)`` integer-rounding kernel
    (:mod:`repro.mapping.rounding_walk`) over every active start at once, and
    ITERATE ordering re-selection restacks all starts' rounded mappings into
    a single :class:`~repro.core.dmodel.factors.MultiStartFactors` pass — two
    kernel calls per rounding point instead of S x L Python walks.  Rounded
    mappings are bit-identical to the scalar
    :func:`~repro.mapping.rounding.round_mapping` oracle (property-fuzzed in
    ``tests/test_rounding_parity.py``) and re-selections match decision for
    decision, so seeded outcomes are design-identical with the flag off.
    """

    num_start_points: int = 7
    gd_steps: int = 890
    rounding_period: int = 300
    learning_rate: float = 0.05
    penalty_weight: float = 1e9
    ordering_strategy: LoopOrderingStrategy = LoopOrderingStrategy.ITERATE
    rejection_threshold: float = 10.0
    batched_model: bool = True
    use_tape: bool = True
    batched_starts: bool = True
    batched_rounding: bool = True
    fixed_pe_dim: int | None = None
    # A fresh HardwareBounds per settings object (never the shared module-level
    # DEFAULT_BOUNDS instance) so one searcher's bounds can't leak into another.
    bounds: HardwareBounds = field(default_factory=HardwareBounds)
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_start_points < 1:
            raise ValueError("num_start_points must be at least 1")
        if self.gd_steps < 1:
            raise ValueError("gd_steps must be at least 1")
        if self.rounding_period < 1:
            raise ValueError("rounding_period must be at least 1")
        self.ordering_strategy = LoopOrderingStrategy(self.ordering_strategy)


# A latency adjuster rescales per-layer reference latencies when selecting the
# best candidate (used by the Gemmini-RTL experiments, where latency may come
# from a DNN-augmented model or the RTL simulator instead of the analytical
# model).  It receives the mappings and hardware and returns per-layer latencies.
LatencyAdjuster = Callable[[list[Mapping], HardwareConfig], list[float]]


@register_searcher("dosa")
class DosaSearcher:
    """Runs the DOSA one-loop search for a target network."""

    settings_type = DosaSettings

    def __init__(
        self,
        network: Network,
        settings: DosaSettings | None = None,
        latency_adjuster: LatencyAdjuster | None = None,
        n_workers: int | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        self.network = network
        self.settings = settings or DosaSettings()
        self.latency_adjuster = latency_adjuster
        self.n_workers = n_workers
        self.cache = cache
        self._repeats = [layer.repeats for layer in network.layers]

    # ------------------------------------------------------------------ #
    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        """Run the full search and return the best reference-scored design."""
        settings = self.settings
        rng = make_rng(settings.seed)
        # The session is created first so start-point generation counts
        # against the wall-time budget and the reported wall_time_seconds.
        session = SearchSession("dosa", budget=budget, callbacks=callbacks,
                                settings=settings, network=self.network)
        start_points = generate_start_points(
            self.network,
            count=settings.num_start_points,
            seed=rng,
            rejection_threshold=settings.rejection_threshold,
            fixed_pe_dim=settings.fixed_pe_dim,
        )
        # One engine per run: rounding points snap onto the same divisors
        # across steps and start points, so repeats are common.  A shared
        # cache (e.g. from an experiment harness running several strategies)
        # persists those hits across runs.
        with EvaluationEngine(cache=self.cache, n_workers=self.n_workers) as engine, \
                session.absorb_interrupt():
            if settings.batched_starts and settings.batched_model:
                if not session.exhausted():
                    self._descend_all(start_points, session, engine)
            else:
                for start_point in start_points:
                    if session.exhausted():
                        break
                    self._descend_from(start_point, session, engine)
        return session.finish(extras={"start_points": start_points})

    # ------------------------------------------------------------------ #
    def _descend_all(self, start_points: list[StartPoint],
                     session: SearchSession, engine: EvaluationEngine) -> None:
        """Descend every start point at once on the start-batched model.

        One :class:`MultiStartFactors` graph advances all S starts per
        gradient step; ``active`` masks out starts frozen by a binding sample
        budget (the scalar training loss folds only active per-start losses,
        so frozen rows receive exactly-zero gradients).  Rounding points round,
        re-order and reference-evaluate each active start independently, in
        start order, preserving the sequential path's per-start sample
        accounting (one GD sample per start per step, one reference sample
        per layer per rounding evaluation).
        """
        settings = self.settings
        factors = stack_start_points(start_points)
        optimizer = Adam(factors.parameters(), lr=settings.learning_rate,
                         fused=True)
        active = np.ones(factors.num_starts, dtype=bool)
        # The mask is read at trace time; every mask change below invalidates
        # the tape, so replays never see a stale mask.
        tape = (Tape(lambda: self._loss(factors, active=active))
                if settings.use_tape else None)
        evaluated_once = False

        for step in range(settings.gd_steps):
            count = int(active.sum())
            allowance = session.sample_allowance(count)
            if allowance == 0:
                # Unreachable when budget checks below ran (exhaustion
                # returns), but guards direct callers with a spent budget.
                return
            if allowance < count:
                # Freeze trailing starts: the sequential schedule funds
                # earlier start points first, so they keep descending.
                active[np.flatnonzero(active)[allowance:]] = False
                if tape is not None:
                    tape.invalidate()
            optimizer.zero_grad()
            if tape is not None:
                tape.forward()
                tape.backward()
            else:
                self._loss(factors, active=active).backward()
            optimizer.step()
            session.spend(int(active.sum()))

            out_of_budget = session.exhausted()
            at_rounding_point = ((step + 1) % settings.rounding_period == 0
                                 or step == settings.gd_steps - 1
                                 or out_of_budget)
            if not at_rounding_point:
                continue

            self._round_and_evaluate_all(factors, active, session, engine)
            evaluated_once = True
            if tape is not None:
                tape.invalidate()
            if out_of_budget or session.exhausted():
                return
        if not evaluated_once:  # pragma: no cover - defensive; loop always rounds
            self._round_and_evaluate_all(factors, active, session, engine)

    # ------------------------------------------------------------------ #
    def _round_and_evaluate_all(self, factors: MultiStartFactors,
                                active: np.ndarray, session: SearchSession,
                                engine: EvaluationEngine) -> None:
        """Round + reference-evaluate every active start, then re-snap them.

        Under ``batched_rounding`` (the default) the walk itself is batched
        too: one ``(S, L)`` pass of the integer-rounding kernel rounds every
        active start, and one restacked :class:`MultiStartFactors` pass
        re-selects all starts' orderings, so a rounding point costs two
        kernel calls plus the evaluation batch.  All active starts' reference
        evaluations then go through one
        :meth:`~repro.eval.engine.EvaluationEngine.evaluate_network_sets`
        call: the traffic analysis is hardware-independent, so S starts' L
        mappings share a single vectorized pass even when each start derived
        different hardware, and starts that snapped onto identical rounded
        designs are evaluated once.  Sample accounting, candidate order and
        every result stay identical to scoring the starts one at a time.
        """
        max_spatial = (self.settings.fixed_pe_dim
                       or self.settings.bounds.max_pe_dim)
        starts = [int(start) for start in np.flatnonzero(active)]
        if self.settings.batched_rounding:
            prepared = self._prepare_rounded_sets(
                factors.rounded_mapping_sets(starts, max_spatial=max_spatial))
        else:
            prepared = [
                self._prepare_rounded(
                    factors.rounded_mappings_of(start, max_spatial=max_spatial),
                    batched_ordering=True)
                for start in starts
            ]
        performances = engine.evaluate_network_sets(prepared)
        snapped: dict[int, list[Mapping]] = {}
        for start, (rounded, hardware), performance in zip(starts, prepared,
                                                           performances):
            candidate = self._candidate_from(rounded, hardware, performance,
                                             session)
            session.offer(candidate)
            snapped[start] = candidate.mappings
        # Continue each active descent from its snapped point.
        factors.load_mapping_sets(snapped)

    # ------------------------------------------------------------------ #
    def _descend_from(self, start_point: StartPoint, session: SearchSession,
                      engine: EvaluationEngine) -> None:
        settings = self.settings
        if settings.batched_model:
            factors = NetworkFactors.from_mappings(start_point.mappings)
            parameters = factors.parameters()
        else:
            factors = [LayerFactors.from_mapping(m) for m in start_point.mappings]
            parameters = [p for f in factors for p in f.parameters()]
        optimizer = Adam(parameters, lr=settings.learning_rate,
                         fused=settings.batched_model)
        # The compiled tape replays one traced graph between rounding points;
        # a rounding point may re-select loop orderings (changing the graph
        # structure), so the tape is invalidated there and re-traced.
        tape = (Tape(lambda: self._loss(factors))
                if settings.batched_model and settings.use_tape else None)
        evaluated_once = False

        for step in range(settings.gd_steps):
            optimizer.zero_grad()
            if tape is not None:
                tape.forward()
                tape.backward()
            else:
                loss = self._loss(factors)
                loss.backward()
            optimizer.step()
            session.spend(1)

            out_of_budget = session.exhausted()
            at_rounding_point = ((step + 1) % settings.rounding_period == 0
                                 or step == settings.gd_steps - 1
                                 or out_of_budget)
            if not at_rounding_point:
                continue

            session.offer(self._round_and_evaluate(factors, session, engine))
            evaluated_once = True
            if tape is not None:
                tape.invalidate()
            # Re-check after the rounding evaluation: the reference samples it
            # spent may themselves have crossed the budget.
            if out_of_budget or session.exhausted():
                return
        if not evaluated_once:  # pragma: no cover - defensive; loop always rounds
            session.offer(self._round_and_evaluate(factors, session, engine))

    # ------------------------------------------------------------------ #
    def _loss(self, factors: "list[LayerFactors] | NetworkFactors",
              active: np.ndarray | None = None):
        settings = self.settings
        if isinstance(factors, NetworkFactors):
            # One factor grid serves hardware derivation, evaluation and the
            # validity penalty — the whole loss is a single array-op graph.
            grid = factors.factor_grid()
        else:
            grid = None
        hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
        if settings.ordering_strategy is LoopOrderingStrategy.SOFTMAX:
            objective = softmax_ordering_loss(factors, self._repeats, hardware,
                                              grid=grid)
        else:
            performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                                grid=grid)
            objective = network_edp_loss(performances, self._repeats)
        objective = objective + settings.penalty_weight * validity_penalty(
            factors, grid=grid)
        if not isinstance(factors, MultiStartFactors):
            return objective
        # Multi-start: ``objective`` is the (S,) vector of per-start losses.
        # Fold it to the scalar the tape/backward need — each start receives
        # gradient 1.0, exactly as if its own loss had been backpropagated.
        # Budget-frozen starts are multiplied out (mask changes re-trace the
        # tape); while every start is active no mask node is recorded, so the
        # default graph is untouched.
        if active is not None and not active.all():
            objective = objective * Tensor(active.astype(np.float64))
        return ops.fold_sum(objective)

    # ------------------------------------------------------------------ #
    def _round_and_evaluate(
        self, factors: "list[LayerFactors] | NetworkFactors",
        session: SearchSession, engine: EvaluationEngine,
    ) -> CandidateDesign:
        max_spatial = (self.settings.fixed_pe_dim
                       or self.settings.bounds.max_pe_dim)
        if isinstance(factors, NetworkFactors):
            rounded = factors.rounded_mappings(
                max_spatial=max_spatial,
                batched=self.settings.batched_rounding)
        else:
            rounded = [f.rounded_mapping(max_spatial=max_spatial) for f in factors]

        candidate = self._score_rounded(
            rounded, session, engine,
            batched_ordering=isinstance(factors, NetworkFactors))

        # Continue the descent from the snapped point.
        if isinstance(factors, NetworkFactors):
            factors.load_mappings(candidate.mappings)
        else:
            for layer_factors, mapping in zip(factors, candidate.mappings):
                layer_factors.load_mapping(mapping)

        return candidate

    # ------------------------------------------------------------------ #
    def _prepare_rounded(
        self, rounded: list[Mapping], *, batched_ordering: bool,
    ) -> tuple[list[Mapping], HardwareConfig]:
        """Ordering re-selection + hardware derivation for one rounded start.

        ``batched_ordering`` selects ITERATE orderings over a stacked
        :class:`NetworkFactors` in one pass (same decisions); the per-layer
        scan is kept as the parity oracle for the per-layer model path.
        """
        settings = self.settings
        if settings.ordering_strategy is LoopOrderingStrategy.ITERATE:
            if batched_ordering:
                selections = best_ordering_per_layer(
                    NetworkFactors.from_mappings(rounded))
            else:
                selections = best_ordering_per_layer(
                    [LayerFactors.from_mapping(m) for m in rounded]
                )
            rounded = [m.with_orderings([ordering] * NUM_LEVELS)
                       for m, ordering in zip(rounded, selections)]
        return self._derive_hardware_for(rounded)

    def _prepare_rounded_sets(
        self, rounded_sets: list[list[Mapping]],
    ) -> list[tuple[list[Mapping], HardwareConfig]]:
        """Ordering re-selection + hardware derivation for all rounded starts.

        The cross-start counterpart of per-start :meth:`_prepare_rounded`:
        ITERATE re-selection restacks every start's rounded mappings into one
        :class:`MultiStartFactors` and selects all starts' orderings in a
        single ``(3, S, L)`` EDP pass — per-start rows are bit-identical to
        the per-start ``(3, L)`` matrices, so decisions match.  Hardware
        derivation stays per start (each start's mappings imply their own
        minimal configuration).
        """
        settings = self.settings
        if settings.ordering_strategy is LoopOrderingStrategy.ITERATE and rounded_sets:
            selections = best_ordering_per_layer(
                MultiStartFactors.from_mapping_sets(rounded_sets))
            rounded_sets = [
                [m.with_orderings([ordering] * NUM_LEVELS)
                 for m, ordering in zip(rounded, per_start)]
                for rounded, per_start in zip(rounded_sets, selections)
            ]
        return [self._derive_hardware_for(rounded) for rounded in rounded_sets]

    def _derive_hardware_for(
        self, rounded: list[Mapping],
    ) -> tuple[list[Mapping], HardwareConfig]:
        """Minimal hardware for one start's rounded mappings (+ PE override)."""
        settings = self.settings
        hardware = minimal_hardware_for_mappings(rounded, bounds=settings.bounds)
        if settings.fixed_pe_dim is not None:
            hardware = HardwareConfig(
                pe_dim=settings.fixed_pe_dim,
                accumulator_kb=hardware.accumulator_kb,
                scratchpad_kb=hardware.scratchpad_kb,
            )
        return rounded, hardware

    def _candidate_from(
        self, rounded: list[Mapping], hardware: HardwareConfig,
        performance: NetworkPerformance, session: SearchSession,
    ) -> CandidateDesign:
        """Latency adjustment + sample accounting for one evaluated start."""
        performance = self._adjust_performance(rounded, hardware, performance)
        session.spend(len(rounded))
        return CandidateDesign(hardware=hardware, mappings=rounded,
                               performance=performance)

    def _score_rounded(self, rounded: list[Mapping], session: SearchSession,
                       engine: EvaluationEngine, *,
                       batched_ordering: bool) -> CandidateDesign:
        """Turn one start's rounded mappings into a reference-scored candidate.

        The shared tail of every rounding point — ITERATE ordering
        re-selection, minimal-hardware derivation (with the ``fixed_pe_dim``
        override), reference evaluation, latency adjustment and sample
        accounting — so the sequential and start-batched schedules construct
        candidates through literally the same code (the start-batched
        schedule only swaps the single-set evaluation for the cross-start
        :meth:`~repro.eval.engine.EvaluationEngine.evaluate_network_sets`
        batch, which is bit-identical per set).
        """
        rounded, hardware = self._prepare_rounded(
            rounded, batched_ordering=batched_ordering)
        performance = engine.evaluate_network(rounded, hardware)
        return self._candidate_from(rounded, hardware, performance, session)

    # ------------------------------------------------------------------ #
    def _adjust_performance(
        self,
        mappings: list[Mapping],
        hardware: HardwareConfig,
        performance: NetworkPerformance,
    ) -> NetworkPerformance:
        """Apply the optional latency adjuster (RTL-model experiments)."""
        if self.latency_adjuster is None:
            return performance
        adjusted_latencies = self.latency_adjuster(mappings, hardware)
        if len(adjusted_latencies) != len(mappings):
            raise ValueError("latency adjuster must return one latency per mapping")
        total_latency = sum(
            latency * mapping.layer.repeats
            for latency, mapping in zip(adjusted_latencies, mappings)
        )
        return NetworkPerformance(
            total_latency=total_latency,
            total_energy=performance.total_energy,
            per_layer=performance.per_layer,
        )
