"""The DOSA searcher: one-loop, mapping-first gradient-descent co-search.

For each start point (random hardware + CoSA mappings), DOSA descends the
differentiable whole-model EDP with Adam, jointly over all layers' tiling
factors.  Every ``rounding_period`` steps the fractional factors are snapped
to the nearest valid mapping, the loop orderings are (optionally) re-selected,
the minimal hardware configuration is derived, and the candidate design is
scored with the reference (Timeloop-style) model.  The best reference-scored
design across all start points is the search result.

Sample accounting follows the paper: every gradient step counts as one model
evaluation ("evaluations done using Timeloop are considered equivalent to
evaluations done using DOSA's differentiable model"), and each reference
evaluation at a rounding point also counts one sample per layer mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.arch.config import DEFAULT_BOUNDS, HardwareBounds, HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.autodiff import Adam
from repro.core.dmodel.factors import LayerFactors
from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.loss import (
    best_ordering_per_layer,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)
from repro.core.dmodel.model import DifferentiableModel
from repro.core.optimizer.startpoints import StartPoint, generate_start_points
from repro.mapping.constraints import minimal_hardware_for_mappings
from repro.mapping.mapping import Mapping
from repro.timeloop.model import NetworkPerformance, evaluate_network_mappings
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


class LoopOrderingStrategy(str, Enum):
    """Loop-ordering search strategies compared in Figure 6."""

    NONE = "baseline"      # keep the start point's orderings
    ITERATE = "iterate"    # re-select WS/IS/OS at every rounding point
    SOFTMAX = "softmax"    # gradient-based softmax weighting (Eq. 15-17)


@dataclass
class DosaSettings:
    """Hyperparameters of the DOSA search (paper Section 6.1)."""

    num_start_points: int = 7
    gd_steps: int = 890
    rounding_period: int = 300
    learning_rate: float = 0.05
    penalty_weight: float = 1e9
    ordering_strategy: LoopOrderingStrategy = LoopOrderingStrategy.ITERATE
    rejection_threshold: float = 10.0
    fixed_pe_dim: int | None = None
    bounds: HardwareBounds = field(default_factory=lambda: DEFAULT_BOUNDS)
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_start_points < 1:
            raise ValueError("num_start_points must be at least 1")
        if self.gd_steps < 1:
            raise ValueError("gd_steps must be at least 1")
        if self.rounding_period < 1:
            raise ValueError("rounding_period must be at least 1")
        self.ordering_strategy = LoopOrderingStrategy(self.ordering_strategy)


@dataclass
class TracePoint:
    """Best reference-evaluated EDP after a given number of samples."""

    samples: int
    best_edp: float


@dataclass
class SearchTrace:
    """Best-so-far curve of one search run."""

    points: list[TracePoint] = field(default_factory=list)

    def record(self, samples: int, best_edp: float) -> None:
        self.points.append(TracePoint(samples=samples, best_edp=best_edp))

    def best_edp_after(self, samples: int) -> float:
        """Best EDP achieved using at most ``samples`` evaluations."""
        best = float("inf")
        for point in self.points:
            if point.samples <= samples:
                best = min(best, point.best_edp)
        return best

    @property
    def final_best(self) -> float:
        return min((p.best_edp for p in self.points), default=float("inf"))

    @property
    def total_samples(self) -> int:
        return max((p.samples for p in self.points), default=0)


@dataclass
class CandidateDesign:
    """A rounded, reference-evaluated co-design point."""

    hardware: HardwareConfig
    mappings: list[Mapping]
    performance: NetworkPerformance

    @property
    def edp(self) -> float:
        return self.performance.edp


@dataclass
class SearchResult:
    """Outcome of a DOSA search over one target network."""

    best: CandidateDesign
    trace: SearchTrace
    start_points: list[StartPoint]
    candidates: list[CandidateDesign]

    @property
    def best_edp(self) -> float:
        return self.best.edp


# A latency adjuster rescales per-layer reference latencies when selecting the
# best candidate (used by the Gemmini-RTL experiments, where latency may come
# from a DNN-augmented model or the RTL simulator instead of the analytical
# model).  It receives the mappings and hardware and returns per-layer latencies.
LatencyAdjuster = Callable[[list[Mapping], HardwareConfig], list[float]]


class DosaSearcher:
    """Runs the DOSA one-loop search for a target network."""

    def __init__(
        self,
        network: Network,
        settings: DosaSettings | None = None,
        latency_adjuster: LatencyAdjuster | None = None,
    ) -> None:
        self.network = network
        self.settings = settings or DosaSettings()
        self.latency_adjuster = latency_adjuster
        self._repeats = [layer.repeats for layer in network.layers]

    # ------------------------------------------------------------------ #
    def search(self) -> SearchResult:
        """Run the full search and return the best reference-scored design."""
        settings = self.settings
        rng = make_rng(settings.seed)
        start_points = generate_start_points(
            self.network,
            count=settings.num_start_points,
            seed=rng,
            rejection_threshold=settings.rejection_threshold,
            fixed_pe_dim=settings.fixed_pe_dim,
        )

        trace = SearchTrace()
        candidates: list[CandidateDesign] = []
        best: CandidateDesign | None = None
        samples = 0

        for start_point in start_points:
            best_for_start, samples = self._descend_from(
                start_point, trace, candidates, samples
            )
            if best_for_start is not None and (best is None or best_for_start.edp < best.edp):
                best = best_for_start

        if best is None:  # pragma: no cover - defensive; rounding always yields a candidate
            raise RuntimeError("search produced no valid candidate design")
        return SearchResult(best=best, trace=trace, start_points=start_points,
                            candidates=candidates)

    # ------------------------------------------------------------------ #
    def _descend_from(
        self,
        start_point: StartPoint,
        trace: SearchTrace,
        candidates: list[CandidateDesign],
        samples: int,
    ) -> tuple[CandidateDesign | None, int]:
        settings = self.settings
        factors = [LayerFactors.from_mapping(m) for m in start_point.mappings]
        parameters = [p for f in factors for p in f.parameters()]
        optimizer = Adam(parameters, lr=settings.learning_rate)
        best: CandidateDesign | None = None

        for step in range(settings.gd_steps):
            optimizer.zero_grad()
            loss = self._loss(factors)
            loss.backward()
            optimizer.step()
            samples += 1

            at_rounding_point = ((step + 1) % settings.rounding_period == 0
                                 or step == settings.gd_steps - 1)
            if not at_rounding_point:
                continue

            candidate, samples = self._round_and_evaluate(factors, samples)
            candidates.append(candidate)
            if best is None or candidate.edp < best.edp:
                best = candidate
            trace.record(samples, min(best.edp, trace.final_best))
        return best, samples

    # ------------------------------------------------------------------ #
    def _loss(self, factors: list[LayerFactors]):
        settings = self.settings
        hardware = DifferentiableModel.derive_hardware(factors)
        if settings.ordering_strategy is LoopOrderingStrategy.SOFTMAX:
            objective = softmax_ordering_loss(factors, self._repeats, hardware)
        else:
            performances = DifferentiableModel.evaluate_network(factors, hardware)
            objective = network_edp_loss(performances, self._repeats)
        return objective + settings.penalty_weight * validity_penalty(factors)

    # ------------------------------------------------------------------ #
    def _round_and_evaluate(
        self, factors: list[LayerFactors], samples: int
    ) -> tuple[CandidateDesign, int]:
        settings = self.settings
        max_spatial = settings.fixed_pe_dim or settings.bounds.max_pe_dim
        rounded = [f.rounded_mapping(max_spatial=max_spatial) for f in factors]

        if settings.ordering_strategy is LoopOrderingStrategy.ITERATE:
            selections = best_ordering_per_layer(
                [LayerFactors.from_mapping(m) for m in rounded]
            )
            rounded = [m.with_orderings([ordering] * 4)
                       for m, ordering in zip(rounded, selections)]

        hardware = minimal_hardware_for_mappings(rounded, bounds=settings.bounds)
        if settings.fixed_pe_dim is not None:
            hardware = HardwareConfig(
                pe_dim=settings.fixed_pe_dim,
                accumulator_kb=hardware.accumulator_kb,
                scratchpad_kb=hardware.scratchpad_kb,
            )
        performance = evaluate_network_mappings(rounded, GemminiSpec(hardware))
        performance = self._adjust_performance(rounded, hardware, performance)
        samples += len(rounded)

        # Continue the descent from the snapped point.
        for layer_factors, mapping in zip(factors, rounded):
            layer_factors.load_mapping(mapping)

        return CandidateDesign(hardware=hardware, mappings=rounded,
                               performance=performance), samples

    # ------------------------------------------------------------------ #
    def _adjust_performance(
        self,
        mappings: list[Mapping],
        hardware: HardwareConfig,
        performance: NetworkPerformance,
    ) -> NetworkPerformance:
        """Apply the optional latency adjuster (RTL-model experiments)."""
        if self.latency_adjuster is None:
            return performance
        adjusted_latencies = self.latency_adjuster(mappings, hardware)
        if len(adjusted_latencies) != len(mappings):
            raise ValueError("latency adjuster must return one latency per mapping")
        total_latency = sum(
            latency * mapping.layer.repeats
            for latency, mapping in zip(adjusted_latencies, mappings)
        )
        return NetworkPerformance(
            total_latency=total_latency,
            total_energy=performance.total_energy,
            per_layer=performance.per_layer,
        )
