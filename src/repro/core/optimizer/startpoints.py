"""Gradient-descent start-point generation with rejection (Section 5.3.1).

Each start point pairs a randomly sampled valid hardware configuration with
CoSA-style mappings of every unique layer onto it.  A start point whose
model-predicted EDP is more than ``rejection_threshold`` times the best start
point seen so far is rejected and a fresh hardware configuration is drawn.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

import numpy as np

from repro.arch.config import HardwareConfig, random_hardware_config
from repro.autodiff import no_grad
from repro.core.dmodel.factors import MultiStartFactors
from repro.core.dmodel.loss import network_edp_loss
from repro.core.dmodel.model import DifferentiableModel
from repro.mapping.cosa import cosa_mapping
from repro.mapping.mapping import Mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.layer import LayerDims
from repro.workloads.networks import Network


@dataclass
class StartPoint:
    """One GD start point: the sampled hardware and per-layer seed mappings."""

    hardware: HardwareConfig
    mappings: list[Mapping]
    predicted_edp: float


def predicted_edp_of_mapping_sets(
    mapping_sets: Sequence[Sequence[Mapping]], repeats: list[int],
) -> np.ndarray:
    """Model-predicted whole-network EDPs of several start points at once.

    Stacks every start point's mappings into one
    :class:`~repro.core.dmodel.factors.MultiStartFactors` and runs the
    start-batched model with gradients disabled: one ``(S, L)`` array-op
    forward pass for all candidates, no graph construction.  Per-start values
    are bit-identical to the per-layer (and single-start batched) model, so
    rejection decisions are unchanged.  Returns the ``(S,)`` EDP array.
    """
    with no_grad():
        factors = MultiStartFactors.from_mapping_sets(mapping_sets)
        grid = factors.factor_grid()
        hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
        performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                            grid=grid)
        return network_edp_loss(performances, repeats).data


def predicted_edp_of_mappings(mappings: list[Mapping], repeats: list[int]) -> float:
    """Model-predicted whole-network EDP of one set of mappings (minimal hardware)."""
    return float(predicted_edp_of_mapping_sets([mappings], repeats)[0])


def stack_start_points(start_points: Sequence[StartPoint]) -> MultiStartFactors:
    """Stack accepted start points into one start-batched parameterization."""
    return MultiStartFactors.from_mapping_sets(
        [point.mappings for point in start_points])


def generate_start_points(
    network: Network,
    count: int,
    seed: SeedLike = None,
    rejection_threshold: float = 10.0,
    max_rejections: int = 20,
    fixed_pe_dim: int | None = None,
) -> list[StartPoint]:
    """Generate ``count`` start points for ``network`` with rejection sampling.

    ``fixed_pe_dim`` pins the PE array (used by the Gemmini-RTL experiments
    where only buffer sizes and mappings are searched).
    """
    if count < 1:
        raise ValueError("need at least one start point")
    rng = make_rng(seed)
    repeats = [layer.repeats for layer in network.layers]
    start_points: list[StartPoint] = []
    best_predicted = float("inf")

    for _ in range(count):
        candidate: StartPoint | None = None
        for _attempt in range(max_rejections + 1):
            hardware = random_hardware_config(seed=rng)
            if fixed_pe_dim is not None:
                hardware = HardwareConfig(
                    pe_dim=fixed_pe_dim,
                    accumulator_kb=hardware.accumulator_kb,
                    scratchpad_kb=hardware.scratchpad_kb,
                )
            mappings = [cosa_mapping(layer, hardware) for layer in network.layers]
            predicted = predicted_edp_of_mappings(mappings, repeats)
            candidate = StartPoint(hardware=hardware, mappings=mappings, predicted_edp=predicted)
            if predicted <= rejection_threshold * best_predicted:
                break
        best_predicted = min(best_predicted, candidate.predicted_edp)
        start_points.append(candidate)
    return start_points
