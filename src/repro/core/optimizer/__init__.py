"""The DOSA one-loop gradient-descent co-search (paper Section 5)."""

from repro.core.optimizer.dosa import (
    DosaSearcher,
    DosaSettings,
    LoopOrderingStrategy,
    SearchResult,
    SearchTrace,
    TracePoint,
)
from repro.core.optimizer.startpoints import StartPoint, generate_start_points

__all__ = [
    "DosaSearcher",
    "DosaSettings",
    "LoopOrderingStrategy",
    "SearchResult",
    "SearchTrace",
    "TracePoint",
    "StartPoint",
    "generate_start_points",
]
