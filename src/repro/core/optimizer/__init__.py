"""The DOSA one-loop gradient-descent co-search (paper Section 5).

Result containers are the unified ones from :mod:`repro.search.api`; they are
re-exported here for convenience.
"""

from repro.core.optimizer.dosa import (
    DosaSearcher,
    DosaSettings,
    LoopOrderingStrategy,
)
from repro.core.optimizer.startpoints import (
    StartPoint,
    generate_start_points,
    predicted_edp_of_mapping_sets,
    stack_start_points,
)
from repro.search.api import CandidateDesign, SearchOutcome, SearchTrace, TracePoint

__all__ = [
    "DosaSearcher",
    "DosaSettings",
    "LoopOrderingStrategy",
    "CandidateDesign",
    "SearchOutcome",
    "SearchTrace",
    "TracePoint",
    "StartPoint",
    "generate_start_points",
    "predicted_edp_of_mapping_sets",
    "stack_start_points",
]
