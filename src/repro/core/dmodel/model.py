"""Differentiable capacity, traffic, latency and energy model (Equations 1-14).

This mirrors the reference analysis of :mod:`repro.timeloop.loopnest` but over
autodiff tensors and with smooth semantics: tile extents are real-valued
products (no ceiling), DRAM energy is charged per element (no block rounding),
and maxima use the exact-max subgradient of :func:`repro.autodiff.ops.maximum`.
The structural decisions — which loops provide temporal reuse given the loop
ordering — are made from the current numeric factor values and treated as
locally constant, so each forward pass is differentiable on its active piece.

Every formula operates on factor-grid entries and runs in two modes:

* scalar, over one :class:`~repro.core.dmodel.factors.LayerFactors` grid —
  each entry is a 0-d tensor and the graph has hundreds of nodes per layer;
* layer-batched, over a :class:`~repro.core.dmodel.factors.NetworkFactors`
  grid — each entry is an ``(L,)`` column and the *same* expression chains
  build one graph whose node count is independent of the layer count.  Only
  the loop-order-aware reload factor and the cross-layer hardware derivation
  dispatch to dedicated batched implementations (walk-order gathers plus the
  fused :func:`~repro.autodiff.ops.reload_product` /
  :func:`~repro.autodiff.ops.fold_max` reductions).  Batched forward values
  are bit-identical to the scalar path; gradients agree up to floating-point
  accumulation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.components import (
    BYPASS_MATRIX,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.autodiff import Tensor, ops
from repro.core.dmodel.factors import (
    LayerFactors,
    MultiStartFactors,
    MultiStartGrid,
    NetworkFactors,
    NetworkGrid,
)
from repro.core.dmodel.hardware import DifferentiableHardware
from repro.mapping.mapping import LoopOrdering, ordering_for_tensor
from repro.workloads.layer import DIMENSIONS, TENSOR_DIMS

Value = "Tensor | float"
_FACTOR_EPS = 1e-9

FactorGrid = dict


@dataclass
class LayerPerformance:
    """Differentiable latency/energy of one layer's mapping."""

    latency: Tensor
    energy: Tensor
    compute_latency: Tensor
    accesses: dict[int, Tensor]
    macs: Tensor

    @property
    def edp(self) -> Tensor:
        return self.latency * self.energy


class DifferentiableModel:
    """Evaluates :class:`LayerFactors` into differentiable performance."""

    # ------------------------------------------------------------------ #
    # Tile sizes (Equations 2-5)
    # ------------------------------------------------------------------ #
    @staticmethod
    def inner_extent(factors: LayerFactors, grid: FactorGrid, level: int, dim: str):
        """Extent of ``dim`` inside the level-``level`` tile (all spatial, inner temporal)."""
        terms = [grid[("S", lvl, dim)] for lvl in MEMORY_LEVEL_INDICES]
        terms += [grid[("T", lvl, dim)] for lvl in range(level)]
        return ops.total_prod(terms)

    @classmethod
    def tile_words(cls, factors: LayerFactors, grid: FactorGrid, level: int, tensor: str):
        """Words of ``tensor`` resident at ``level`` (Equations 2-4)."""
        layer = factors.layer
        if tensor == "W":
            return ops.total_prod(
                [cls.inner_extent(factors, grid, level, d) for d in ("R", "S", "C", "K")]
            )
        if tensor == "O":
            return ops.total_prod(
                [cls.inner_extent(factors, grid, level, d) for d in ("P", "Q", "K", "N")]
            )
        if tensor == "I":
            base = (cls.inner_extent(factors, grid, level, "C")
                    * cls.inner_extent(factors, grid, level, "N"))
            height = (layer.stride_p * (cls.inner_extent(factors, grid, level, "P") - 1.0)
                      + cls.inner_extent(factors, grid, level, "R"))
            width = (layer.stride_q * (cls.inner_extent(factors, grid, level, "Q") - 1.0)
                     + cls.inner_extent(factors, grid, level, "S"))
            return base * height * width
        raise KeyError(f"unknown tensor {tensor!r}")

    # ------------------------------------------------------------------ #
    # Traffic (Equations 6-11)
    # ------------------------------------------------------------------ #
    @staticmethod
    def reload_factor(factors, grid: FactorGrid, level: int, tensor: str):
        """Times the level tile of ``tensor`` is refetched (loop-order aware, Eq. 6)."""
        if isinstance(factors, NetworkFactors):
            return DifferentiableModel._batched_reload_factor(factors, grid, level, tensor)
        relevant = TENSOR_DIMS[tensor]
        terms = []
        seen_relevant = False
        for walk_level in range(level, LEVEL_DRAM + 1):
            ordering = ordering_for_tensor(factors.orderings[walk_level])
            for dim in ordering:
                value = grid[("T", walk_level, dim)]
                numeric = float(value.data) if isinstance(value, Tensor) else float(value)
                if numeric <= 1.0 + _FACTOR_EPS:
                    continue
                if not seen_relevant and dim not in relevant:
                    continue
                terms.append(value)
                if dim in relevant:
                    seen_relevant = True
        return ops.total_prod(terms)

    @staticmethod
    def _batched_reload_factor(factors: NetworkFactors, grid: NetworkGrid,
                               level: int, tensor: str):
        """Batched reload factors: walk-order gathers + one fused product node.

        The walk sequence (levels outward, innermost loop first within each
        level, per-layer orderings) is materialized as an ``(L, positions)``
        matrix — ``(S, L, positions)`` for the multi-start model — by
        gathering the stacked temporal factors through static permutation
        index arrays; the value-dependent skip rules live inside
        :func:`~repro.autodiff.ops.reload_product`, which re-derives them from
        current values on every forward/backward pass.
        """
        relevant_by_dim = np.array([d in TENSOR_DIMS[tensor] for d in DIMENSIONS])
        multistart = isinstance(factors, MultiStartFactors)
        if multistart:
            # Broadcast (S, 1, 1) x (1, L, 1) row indices against the
            # (S, L, dims) permutations.
            start_rows = np.arange(factors.num_starts)[:, None, None]
            layer_rows = np.arange(len(factors.layers))[None, :, None]
        else:
            rows = np.arange(len(factors))[:, None]
        segments = []
        relevant_segments = []
        for walk_level in range(level, LEVEL_DRAM + 1):
            perm = factors.order_perm(walk_level)
            if walk_level == LEVEL_DRAM:
                matrix = grid.dram_matrix
            elif multistart:
                matrix = grid.temporal_matrix[:, :, walk_level, :]
            else:
                # Optimized levels coincide with their positions in the stack.
                matrix = grid.temporal_matrix[:, walk_level, :]
            if multistart:
                segments.append(matrix[start_rows, layer_rows, perm])
            else:
                segments.append(matrix[rows, perm])
            relevant_segments.append(relevant_by_dim[perm])
        walk = ops.concat(segments, axis=-1) if len(segments) > 1 else segments[0]
        relevant = np.concatenate(relevant_segments, axis=-1)
        return ops.reload_product(walk, relevant, eps=_FACTOR_EPS)

    @staticmethod
    def distinct_tiles(factors: LayerFactors, grid: FactorGrid, level: int, tensor: str):
        """Number of distinct tiles of ``tensor`` above ``level``."""
        relevant = TENSOR_DIMS[tensor]
        terms = []
        for walk_level in range(level, LEVEL_DRAM + 1):
            for dim in DIMENSIONS:
                if dim in relevant:
                    terms.append(grid[("T", walk_level, dim)])
        return ops.total_prod(terms)

    @staticmethod
    def spatial_irrelevant_product(factors: LayerFactors, grid: FactorGrid, level: int, tensor: str):
        """Equations 8/10: spatial broadcast / reduction factor at ``level``."""
        relevant = TENSOR_DIMS[tensor]
        terms = [grid[("S", level, dim)] for dim in DIMENSIONS if dim not in relevant]
        return ops.total_prod(terms)

    @staticmethod
    def total_macs(factors: LayerFactors, grid: FactorGrid):
        """Equation 7: the product of every tiling factor."""
        terms = []
        for dim in DIMENSIONS:
            for level in MEMORY_LEVEL_INDICES:
                terms.append(grid[("T", level, dim)])
                terms.append(grid[("S", level, dim)])
        return ops.total_prod(terms)

    @classmethod
    def traffic(cls, factors: LayerFactors, grid: FactorGrid) -> dict[int, Tensor]:
        """Total accesses per memory level (reads + writes + updates)."""
        macs = cls.total_macs(factors, grid)
        spatial_c = grid[("S", LEVEL_ACCUMULATOR, "C")]
        spatial_k = grid[("S", LEVEL_SCRATCHPAD, "K")]

        writes_w_registers = (cls.tile_words(factors, grid, LEVEL_REGISTERS, "W")
                              * cls.reload_factor(factors, grid, LEVEL_REGISTERS, "W"))
        writes_w_scratchpad = (cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "W")
                               * cls.reload_factor(factors, grid, LEVEL_SCRATCHPAD, "W"))
        writes_i_scratchpad = (cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "I")
                               * cls.reload_factor(factors, grid, LEVEL_SCRATCHPAD, "I"))

        output_tile = cls.tile_words(factors, grid, LEVEL_ACCUMULATOR, "O")
        reloads_o = cls.reload_factor(factors, grid, LEVEL_ACCUMULATOR, "O")
        distinct_o = cls.distinct_tiles(factors, grid, LEVEL_ACCUMULATOR, "O")
        drains = output_tile * reloads_o
        refills = output_tile * ops.relu(reloads_o - distinct_o)

        accesses: dict[int, Tensor] = {}
        accesses[LEVEL_REGISTERS] = (
            writes_w_registers
            + macs / cls.spatial_irrelevant_product(factors, grid, LEVEL_REGISTERS, "W")
        )
        accesses[LEVEL_ACCUMULATOR] = macs / spatial_c + drains + refills
        accesses[LEVEL_SCRATCHPAD] = (
            writes_w_scratchpad + writes_i_scratchpad
            + writes_w_registers / cls.spatial_irrelevant_product(factors, grid, LEVEL_SCRATCHPAD, "W")
            + macs / spatial_k
        )
        accesses[LEVEL_DRAM] = writes_w_scratchpad + writes_i_scratchpad + drains + refills
        return accesses

    # ------------------------------------------------------------------ #
    # Latency / energy / EDP (Equations 12-14)
    # ------------------------------------------------------------------ #
    @classmethod
    def evaluate_layer(
        cls,
        factors: LayerFactors,
        hardware: DifferentiableHardware,
        grid: FactorGrid | None = None,
    ) -> LayerPerformance:
        """Differentiable latency and energy of one layer on ``hardware``."""
        grid = grid if grid is not None else factors.factor_grid()
        macs = cls.total_macs(factors, grid)
        accesses = cls.traffic(factors, grid)

        parallelism = ops.total_prod(
            [grid[("S", level, dim)] for level in MEMORY_LEVEL_INDICES for dim in DIMENSIONS]
        )
        compute_latency = macs / parallelism
        latency = compute_latency
        for level in MEMORY_LEVEL_INDICES:
            latency = ops.maximum(latency, accesses[level] / hardware.bandwidth(level))

        energy = macs * hardware.mac_energy
        for level in MEMORY_LEVEL_INDICES:
            energy = energy + accesses[level] * hardware.energy_per_access(level)

        return LayerPerformance(
            latency=latency,
            energy=energy,
            compute_latency=compute_latency,
            accesses=accesses,
            macs=macs,
        )

    # ------------------------------------------------------------------ #
    # Hardware derivation (Equation 1, Figure 3) over a set of layers
    # ------------------------------------------------------------------ #
    @classmethod
    def derive_hardware(cls, all_factors, grid: NetworkGrid | None = None,
                        ) -> DifferentiableHardware:
        """Minimal hardware supporting every layer's current factors (differentiably).

        Accepts a list of :class:`LayerFactors`, a batched
        :class:`NetworkFactors`, or a start-batched :class:`MultiStartFactors`
        (optionally with a pre-built ``grid`` so one grid serves hardware
        derivation, evaluation and the validity penalty within a single loss
        graph).  The multi-start form returns hardware whose fields are
        ``(S, 1)`` tensors — one independently-derived configuration per start
        point, broadcasting over that start's layers.
        """
        if isinstance(all_factors, MultiStartFactors):
            return cls._derive_hardware_multistart(all_factors, grid)
        if isinstance(all_factors, NetworkFactors):
            return cls._derive_hardware_batched(all_factors, grid)
        if not all_factors:
            raise ValueError("derive_hardware requires at least one layer")
        spatial_candidates = []
        accumulator_words = None
        scratchpad_words = None
        for factors in all_factors:
            grid = factors.factor_grid()
            spatial_candidates.append(grid[("S", LEVEL_ACCUMULATOR, "C")])
            spatial_candidates.append(grid[("S", LEVEL_SCRATCHPAD, "K")])
            layer_accumulator = cls.tile_words(factors, grid, LEVEL_ACCUMULATOR, "O")
            layer_scratchpad = (cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "W")
                                + cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "I"))
            accumulator_words = (layer_accumulator if accumulator_words is None
                                 else ops.maximum(accumulator_words, layer_accumulator))
            scratchpad_words = (layer_scratchpad if scratchpad_words is None
                                else ops.maximum(scratchpad_words, layer_scratchpad))
        return DifferentiableHardware.from_requirements(
            spatial_factors=spatial_candidates,
            accumulator_words=accumulator_words,
            scratchpad_words=scratchpad_words,
        )

    @classmethod
    def _derive_hardware_batched(
        cls, factors: NetworkFactors, grid: NetworkGrid | None = None,
    ) -> DifferentiableHardware:
        """Batched Equation-1 derivation: fused left-fold maxima over layers.

        Candidate order matches the per-layer loop (each layer's accumulator-C
        then scratchpad-K spatial factor), so values — and the cascade tie
        subgradients of :func:`~repro.autodiff.ops.fold_max` — coincide with
        the chained per-layer maxima.
        """
        grid = grid if grid is not None else factors.factor_grid()
        spatial_c = grid[("S", LEVEL_ACCUMULATOR, "C")]
        spatial_k = grid[("S", LEVEL_SCRATCHPAD, "K")]
        interleaved = ops.stack([spatial_c, spatial_k]).T.reshape(2 * len(factors))
        accumulator_words = ops.fold_max(
            cls.tile_words(factors, grid, LEVEL_ACCUMULATOR, "O"))
        scratchpad_words = ops.fold_max(
            cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "W")
            + cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "I"))
        return DifferentiableHardware.from_requirements(
            spatial_factors=interleaved,
            accumulator_words=accumulator_words,
            scratchpad_words=scratchpad_words,
        )

    @classmethod
    def _derive_hardware_multistart(
        cls, factors: MultiStartFactors, grid: MultiStartGrid | None = None,
    ) -> DifferentiableHardware:
        """Per-start Equation-1 derivation: independent left-folds per row.

        Each start's candidates fold in the same order as its own
        :meth:`_derive_hardware_batched` pass (layer-interleaved accumulator-C
        / scratchpad-K spatial factors, then the capacity maxima), so per-row
        values and tie subgradients are bit-identical to S single-start
        derivations.  Fields come back as ``(S, 1)`` tensors that broadcast
        over the ``(S, L)`` factor grid.
        """
        grid = grid if grid is not None else factors.factor_grid()
        spatial_c = grid[("S", LEVEL_ACCUMULATOR, "C")]
        spatial_k = grid[("S", LEVEL_SCRATCHPAD, "K")]
        starts, layer_count = spatial_c.shape
        interleaved = ops.transpose(
            ops.stack([spatial_c, spatial_k]), (1, 2, 0)
        ).reshape(starts, 2 * layer_count)
        accumulator_words = ops.fold_max(
            cls.tile_words(factors, grid, LEVEL_ACCUMULATOR, "O"), axis=-1)
        scratchpad_words = ops.fold_max(
            cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "W")
            + cls.tile_words(factors, grid, LEVEL_SCRATCHPAD, "I"), axis=-1)
        return DifferentiableHardware.from_requirements(
            spatial_factors=interleaved,
            accumulator_words=accumulator_words.reshape(starts, 1),
            scratchpad_words=scratchpad_words.reshape(starts, 1),
        )

    @classmethod
    def evaluate_network(
        cls,
        all_factors,
        hardware: DifferentiableHardware | None = None,
        grid: NetworkGrid | None = None,
    ):
        """Evaluate every layer, deriving minimal hardware if none is given.

        With a list of :class:`LayerFactors` this returns one
        :class:`LayerPerformance` per layer.  With a batched
        :class:`NetworkFactors` it returns a single :class:`LayerPerformance`
        whose fields are ``(L,)`` tensors — one graph for the whole network.
        With a :class:`MultiStartFactors` the fields are ``(S, L)`` tensors —
        one graph for all start points of a search.
        """
        if isinstance(all_factors, NetworkFactors):
            if hardware is None:
                hardware = cls.derive_hardware(all_factors, grid=grid)
            grid = grid if grid is not None else all_factors.factor_grid()
            return cls.evaluate_layer(all_factors, hardware, grid)
        if hardware is None:
            hardware = cls.derive_hardware(all_factors)
        return [cls.evaluate_layer(factors, hardware) for factors in all_factors]
