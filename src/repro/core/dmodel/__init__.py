"""The DOSA differentiable performance model (paper Section 4).

Implements Equations 1-18 over :class:`repro.autodiff.Tensor` values so that
the whole-model energy-delay product is differentiable with respect to every
layer's spatial and temporal tiling factors — which is what enables the
one-loop, mapping-first gradient-descent search.
"""

from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.factors import LayerFactors
from repro.core.dmodel.model import DifferentiableModel, LayerPerformance
from repro.core.dmodel.loss import (
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)

__all__ = [
    "DifferentiableHardware",
    "LayerFactors",
    "DifferentiableModel",
    "LayerPerformance",
    "network_edp_loss",
    "softmax_ordering_loss",
    "validity_penalty",
]
