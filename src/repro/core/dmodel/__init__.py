"""The DOSA differentiable performance model (paper Section 4).

Implements Equations 1-18 over :class:`repro.autodiff.Tensor` values so that
the whole-model energy-delay product is differentiable with respect to every
layer's spatial and temporal tiling factors — which is what enables the
one-loop, mapping-first gradient-descent search.

Three interchangeable parameterizations are provided: the per-layer
:class:`LayerFactors` (one scalar graph per layer), the layer-batched
:class:`NetworkFactors` (all layers stacked into two tensors, one array graph
per network), and the start-batched :class:`MultiStartFactors` (S start
points x L layers stacked into one graph — the fast path of the whole
multi-start GD search).
"""

from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.factors import (
    LayerFactors,
    MultiStartFactors,
    MultiStartGrid,
    NetworkFactors,
    NetworkGrid,
)
from repro.core.dmodel.model import DifferentiableModel, LayerPerformance
from repro.core.dmodel.loss import (
    best_ordering_per_layer,
    network_edp_loss,
    softmax_ordering_loss,
    validity_penalty,
)

__all__ = [
    "DifferentiableHardware",
    "LayerFactors",
    "MultiStartFactors",
    "MultiStartGrid",
    "NetworkFactors",
    "NetworkGrid",
    "DifferentiableModel",
    "LayerPerformance",
    "best_ordering_per_layer",
    "network_edp_loss",
    "softmax_ordering_loss",
    "validity_penalty",
]
