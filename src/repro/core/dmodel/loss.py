"""Loss construction for the DOSA gradient-descent search.

* :func:`network_edp_loss` — Equation 14: (sum of layer energies) x (sum of
  layer latencies), with repeated layers scaled by their repetition counts.
* :func:`validity_penalty` — Equation 18: a hinge penalty pushing every tiling
  factor (including the inferred DRAM factors) to stay at or above 1.
* :func:`softmax_ordering_loss` — Equations 15-17: the gradient-based loop
  ordering strategy, weighting each candidate ordering's energy and latency by
  the softmax of its inverse EDP.
"""

from __future__ import annotations

from typing import Sequence

from repro.autodiff import Tensor, ops
from repro.core.dmodel.factors import LayerFactors
from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.model import DifferentiableModel, LayerPerformance
from repro.mapping.mapping import LoopOrdering


def network_edp_loss(
    performances: Sequence[LayerPerformance],
    repeats: Sequence[int],
) -> Tensor:
    """Whole-model EDP (Equation 14): sum energies x sum latencies."""
    if len(performances) != len(repeats):
        raise ValueError("one repetition count is required per layer performance")
    total_energy = ops.total_sum(
        [perf.energy * float(rep) for perf, rep in zip(performances, repeats)]
    )
    total_latency = ops.total_sum(
        [perf.latency * float(rep) for perf, rep in zip(performances, repeats)]
    )
    return total_energy * total_latency


def validity_penalty(all_factors: Sequence[LayerFactors]) -> Tensor:
    """Equation 18: sum of ``max(1 - f, 0)`` over every tiling factor."""
    terms = []
    for factors in all_factors:
        grid = factors.factor_grid()
        for value in grid.values():
            if isinstance(value, Tensor):
                terms.append(ops.relu(1.0 - value))
    return ops.total_sum(terms)


_CANDIDATE_ORDERINGS: tuple[LoopOrdering, ...] = (
    LoopOrdering.WEIGHT_STATIONARY,
    LoopOrdering.INPUT_STATIONARY,
    LoopOrdering.OUTPUT_STATIONARY,
)


def ordering_candidates(factors: LayerFactors) -> list[LayerFactors]:
    """Views of ``factors`` under the WS / IS / OS loop orderings (all levels)."""
    return [
        factors.with_orderings([ordering] * 4) for ordering in _CANDIDATE_ORDERINGS
    ]


def softmax_ordering_loss(
    all_factors: Sequence[LayerFactors],
    repeats: Sequence[int],
    hardware: DifferentiableHardware | None = None,
) -> Tensor:
    """Equations 15-17: loss with softmax-weighted loop-ordering mixtures.

    For every layer, the energies and latencies of the WS/IS/OS orderings are
    combined with weights ``softmax(1 / (E ⊙ L))``; the weighted per-layer
    energies and latencies are then composed into the whole-model EDP.
    """
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    weighted_energies = []
    weighted_latencies = []
    for factors, rep in zip(all_factors, repeats):
        energies = []
        latencies = []
        for candidate in ordering_candidates(factors):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            energies.append(perf.energy)
            latencies.append(perf.latency)
        energy_vector = ops.stack(energies)
        latency_vector = ops.stack(latencies)
        weights = ops.softmax(1.0 / (energy_vector * latency_vector))
        weighted_energies.append((weights * energy_vector).sum() * float(rep))
        weighted_latencies.append((weights * latency_vector).sum() * float(rep))
    return ops.total_sum(weighted_energies) * ops.total_sum(weighted_latencies)


def best_ordering_per_layer(
    all_factors: Sequence[LayerFactors],
    hardware: DifferentiableHardware | None = None,
) -> list[LoopOrdering]:
    """Iterative loop-ordering selection (Section 5.2.1).

    For each layer, evaluate the WS/IS/OS orderings under the differentiable
    model and return the ordering with the lowest layer EDP.
    """
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    selections: list[LoopOrdering] = []
    for factors in all_factors:
        best = None
        best_edp = float("inf")
        for ordering, candidate in zip(_CANDIDATE_ORDERINGS, ordering_candidates(factors)):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            edp = float(perf.edp.data)
            if edp < best_edp:
                best_edp = edp
                best = ordering
        selections.append(best)
    return selections
