"""Loss construction for the DOSA gradient-descent search.

* :func:`network_edp_loss` — Equation 14: (sum of layer energies) x (sum of
  layer latencies), with repeated layers scaled by their repetition counts.
* :func:`validity_penalty` — Equation 18: a hinge penalty pushing every tiling
  factor (including the inferred DRAM factors) to stay at or above 1.
* :func:`softmax_ordering_loss` — Equations 15-17: the gradient-based loop
  ordering strategy, weighting each candidate ordering's energy and latency by
  the softmax of its inverse EDP.

Every loss accepts either the per-layer parameterization (a list of
:class:`LayerFactors` / :class:`LayerPerformance`) or the layer-batched one
(a :class:`NetworkFactors` / a vector-valued :class:`LayerPerformance` from
the batched ``evaluate_network``).  The batched branches reduce over the
layer axis with the left-fold sums of :func:`repro.autodiff.ops.fold_sum`, in
the same element order as the per-layer Python folds, so batched loss values
are bit-identical to the per-layer ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import Tensor, ops
from repro.core.dmodel.factors import LayerFactors, NetworkFactors, NetworkGrid
from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.model import DifferentiableModel, LayerPerformance
from repro.mapping.mapping import LoopOrdering


def _repeat_vector(repeats: Sequence[int], count: int) -> Tensor:
    if len(repeats) != count:
        raise ValueError("one repetition count is required per layer performance")
    return Tensor(np.array([float(rep) for rep in repeats]))


def network_edp_loss(
    performances: "Sequence[LayerPerformance] | LayerPerformance",
    repeats: Sequence[int],
) -> Tensor:
    """Whole-model EDP (Equation 14): sum energies x sum latencies.

    ``performances`` is either one :class:`LayerPerformance` per layer or a
    single batched performance whose ``energy``/``latency`` are ``(L,)``
    tensors.
    """
    if isinstance(performances, LayerPerformance):
        reps = _repeat_vector(repeats, len(performances.energy))
        total_energy = ops.fold_sum(performances.energy * reps)
        total_latency = ops.fold_sum(performances.latency * reps)
        return total_energy * total_latency
    if len(performances) != len(repeats):
        raise ValueError("one repetition count is required per layer performance")
    total_energy = ops.total_sum(
        [perf.energy * float(rep) for perf, rep in zip(performances, repeats)]
    )
    total_latency = ops.total_sum(
        [perf.latency * float(rep) for perf, rep in zip(performances, repeats)]
    )
    return total_energy * total_latency


def validity_penalty(
    all_factors: "Sequence[LayerFactors] | NetworkFactors",
    grid: NetworkGrid | None = None,
) -> Tensor:
    """Equation 18: sum of ``max(1 - f, 0)`` over every tiling factor.

    The batched branch flattens the per-entry ``(L,)`` hinge columns
    layer-major before the fold, reproducing the per-layer summation order
    exactly.  ``grid`` lets the batched caller reuse one factor grid across
    the whole loss graph.
    """
    if isinstance(all_factors, NetworkFactors):
        grid = grid if grid is not None else all_factors.factor_grid()
        hinges = [ops.relu(1.0 - value) for value in grid.values()
                  if isinstance(value, Tensor)]
        flat = ops.stack(hinges).T.reshape(len(all_factors) * len(hinges))
        return ops.fold_sum(flat)
    terms = []
    for factors in all_factors:
        grid = factors.factor_grid()
        for value in grid.values():
            if isinstance(value, Tensor):
                terms.append(ops.relu(1.0 - value))
    return ops.total_sum(terms)


_CANDIDATE_ORDERINGS: tuple[LoopOrdering, ...] = (
    LoopOrdering.WEIGHT_STATIONARY,
    LoopOrdering.INPUT_STATIONARY,
    LoopOrdering.OUTPUT_STATIONARY,
)


def ordering_candidates(factors: LayerFactors) -> list[LayerFactors]:
    """Views of ``factors`` under the WS / IS / OS loop orderings (all levels)."""
    return [
        factors.with_orderings([ordering] * 4) for ordering in _CANDIDATE_ORDERINGS
    ]


def softmax_ordering_loss(
    all_factors: "Sequence[LayerFactors] | NetworkFactors",
    repeats: Sequence[int],
    hardware: DifferentiableHardware | None = None,
    grid: NetworkGrid | None = None,
) -> Tensor:
    """Equations 15-17: loss with softmax-weighted loop-ordering mixtures.

    For every layer, the energies and latencies of the WS/IS/OS orderings are
    combined with weights ``softmax(1 / (E ⊙ L))``; the weighted per-layer
    energies and latencies are then composed into the whole-model EDP.  The
    batched branch evaluates each candidate ordering once over all layers
    (``(3, L)`` energy/latency matrices) instead of per layer.
    """
    if isinstance(all_factors, NetworkFactors):
        # The factor grid is ordering-independent, so one grid serves the
        # hardware derivation and all three candidate orderings (only the
        # walk-order gathers inside the reload factors differ per candidate).
        grid = grid if grid is not None else all_factors.factor_grid()
        if hardware is None:
            hardware = DifferentiableModel.derive_hardware(all_factors, grid=grid)
        energies = []
        latencies = []
        for ordering in _CANDIDATE_ORDERINGS:
            candidate = all_factors.with_uniform_orderings(ordering)
            perf = DifferentiableModel.evaluate_layer(candidate, hardware, grid)
            energies.append(perf.energy)
            latencies.append(perf.latency)
        energy_matrix = ops.stack(energies)      # (3, L)
        latency_matrix = ops.stack(latencies)    # (3, L)
        weights = ops.softmax(1.0 / (energy_matrix * latency_matrix), axis=0)
        reps = _repeat_vector(repeats, len(all_factors))
        weighted_energy = (weights * energy_matrix).sum(axis=0) * reps
        weighted_latency = (weights * latency_matrix).sum(axis=0) * reps
        return ops.fold_sum(weighted_energy) * ops.fold_sum(weighted_latency)
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    weighted_energies = []
    weighted_latencies = []
    for factors, rep in zip(all_factors, repeats):
        energies = []
        latencies = []
        for candidate in ordering_candidates(factors):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            energies.append(perf.energy)
            latencies.append(perf.latency)
        energy_vector = ops.stack(energies)
        latency_vector = ops.stack(latencies)
        weights = ops.softmax(1.0 / (energy_vector * latency_vector))
        weighted_energies.append((weights * energy_vector).sum() * float(rep))
        weighted_latencies.append((weights * latency_vector).sum() * float(rep))
    return ops.total_sum(weighted_energies) * ops.total_sum(weighted_latencies)


def best_ordering_per_layer(
    all_factors: Sequence[LayerFactors],
    hardware: DifferentiableHardware | None = None,
) -> list[LoopOrdering]:
    """Iterative loop-ordering selection (Section 5.2.1).

    For each layer, evaluate the WS/IS/OS orderings under the differentiable
    model and return the ordering with the lowest layer EDP.
    """
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    selections: list[LoopOrdering] = []
    for factors in all_factors:
        best = None
        best_edp = float("inf")
        for ordering, candidate in zip(_CANDIDATE_ORDERINGS, ordering_candidates(factors)):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            edp = float(perf.edp.data)
            if edp < best_edp:
                best_edp = edp
                best = ordering
        selections.append(best)
    return selections
