"""Loss construction for the DOSA gradient-descent search.

* :func:`network_edp_loss` — Equation 14: (sum of layer energies) x (sum of
  layer latencies), with repeated layers scaled by their repetition counts.
* :func:`validity_penalty` — Equation 18: a hinge penalty pushing every tiling
  factor (including the inferred DRAM factors) to stay at or above 1.
* :func:`softmax_ordering_loss` — Equations 15-17: the gradient-based loop
  ordering strategy, weighting each candidate ordering's energy and latency by
  the softmax of its inverse EDP.

Every loss accepts the per-layer parameterization (a list of
:class:`LayerFactors` / :class:`LayerPerformance`), the layer-batched one
(a :class:`NetworkFactors` / a vector-valued :class:`LayerPerformance` from
the batched ``evaluate_network``), or the start-batched one (a
:class:`MultiStartFactors` / an ``(S, L)``-valued performance).  The batched
branches reduce over the layer axis with the left-fold sums of
:func:`repro.autodiff.ops.fold_sum`, in the same element order as the
per-layer Python folds, so batched loss values are bit-identical to the
per-layer ones.  The multi-start branches reduce over the layer axis *only*
and return one value per start point (shape ``(S,)``) — start points are
independent descents, so nothing may mix their losses before the caller's
final fold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autodiff import Tensor, ops
from repro.core.dmodel.factors import (
    LayerFactors,
    MultiStartFactors,
    NetworkFactors,
    NetworkGrid,
)
from repro.core.dmodel.hardware import DifferentiableHardware
from repro.core.dmodel.model import DifferentiableModel, LayerPerformance
from repro.mapping.mapping import LoopOrdering


def _repeat_vector(repeats: Sequence[int], count: int) -> Tensor:
    if len(repeats) != count:
        raise ValueError("one repetition count is required per layer performance")
    return Tensor(np.array([float(rep) for rep in repeats]))


def network_edp_loss(
    performances: "Sequence[LayerPerformance] | LayerPerformance",
    repeats: Sequence[int],
) -> Tensor:
    """Whole-model EDP (Equation 14): sum energies x sum latencies.

    ``performances`` is one :class:`LayerPerformance` per layer, a single
    batched performance whose ``energy``/``latency`` are ``(L,)`` tensors
    (returning the scalar network EDP), or a multi-start performance with
    ``(S, L)`` tensors — in which case the result is the ``(S,)`` vector of
    per-start network EDPs, each bit-identical to the single-start loss.
    """
    if isinstance(performances, LayerPerformance):
        reps = _repeat_vector(repeats, performances.energy.shape[-1])
        total_energy = ops.fold_sum(performances.energy * reps, axis=-1)
        total_latency = ops.fold_sum(performances.latency * reps, axis=-1)
        return total_energy * total_latency
    if len(performances) != len(repeats):
        raise ValueError("one repetition count is required per layer performance")
    total_energy = ops.total_sum(
        [perf.energy * float(rep) for perf, rep in zip(performances, repeats)]
    )
    total_latency = ops.total_sum(
        [perf.latency * float(rep) for perf, rep in zip(performances, repeats)]
    )
    return total_energy * total_latency


def validity_penalty(
    all_factors: "Sequence[LayerFactors] | NetworkFactors",
    grid: NetworkGrid | None = None,
) -> Tensor:
    """Equation 18: sum of ``max(1 - f, 0)`` over every tiling factor.

    The batched branch flattens the per-entry ``(L,)`` hinge columns
    layer-major before the fold, reproducing the per-layer summation order
    exactly.  ``grid`` lets the batched caller reuse one factor grid across
    the whole loss graph.  With a :class:`MultiStartFactors` the result is
    the ``(S,)`` vector of per-start penalties, each folded in the same
    layer-major entry order as the single-start batched branch.
    """
    if isinstance(all_factors, MultiStartFactors):
        grid = grid if grid is not None else all_factors.factor_grid()
        hinges = [ops.relu(1.0 - value) for value in grid.values()
                  if isinstance(value, Tensor)]
        # (entries, S, L) -> (S, L, entries) -> per-start layer-major fold.
        flat = ops.transpose(ops.stack(hinges), (1, 2, 0)).reshape(
            all_factors.num_starts, len(all_factors.layers) * len(hinges))
        return ops.fold_sum(flat, axis=-1)
    if isinstance(all_factors, NetworkFactors):
        grid = grid if grid is not None else all_factors.factor_grid()
        hinges = [ops.relu(1.0 - value) for value in grid.values()
                  if isinstance(value, Tensor)]
        flat = ops.stack(hinges).T.reshape(len(all_factors) * len(hinges))
        return ops.fold_sum(flat)
    terms = []
    for factors in all_factors:
        grid = factors.factor_grid()
        for value in grid.values():
            if isinstance(value, Tensor):
                terms.append(ops.relu(1.0 - value))
    return ops.total_sum(terms)


_CANDIDATE_ORDERINGS: tuple[LoopOrdering, ...] = (
    LoopOrdering.WEIGHT_STATIONARY,
    LoopOrdering.INPUT_STATIONARY,
    LoopOrdering.OUTPUT_STATIONARY,
)


def ordering_candidates(factors: LayerFactors) -> list[LayerFactors]:
    """Views of ``factors`` under the WS / IS / OS loop orderings (all levels)."""
    return [
        factors.with_orderings([ordering] * 4) for ordering in _CANDIDATE_ORDERINGS
    ]


def softmax_ordering_loss(
    all_factors: "Sequence[LayerFactors] | NetworkFactors",
    repeats: Sequence[int],
    hardware: DifferentiableHardware | None = None,
    grid: NetworkGrid | None = None,
) -> Tensor:
    """Equations 15-17: loss with softmax-weighted loop-ordering mixtures.

    For every layer, the energies and latencies of the WS/IS/OS orderings are
    combined with weights ``softmax(1 / (E ⊙ L))``; the weighted per-layer
    energies and latencies are then composed into the whole-model EDP.  The
    batched branch evaluates each candidate ordering once over all layers
    (``(3, L)`` energy/latency matrices) instead of per layer; a
    :class:`MultiStartFactors` flows through the same expressions with
    ``(3, S, L)`` matrices and yields the ``(S,)`` vector of per-start losses
    (the softmax and the layer folds never cross the start axis).
    """
    if isinstance(all_factors, NetworkFactors):
        # The factor grid is ordering-independent, so one grid serves the
        # hardware derivation and all three candidate orderings (only the
        # walk-order gathers inside the reload factors differ per candidate).
        grid = grid if grid is not None else all_factors.factor_grid()
        if hardware is None:
            hardware = DifferentiableModel.derive_hardware(all_factors, grid=grid)
        energies = []
        latencies = []
        for ordering in _CANDIDATE_ORDERINGS:
            candidate = all_factors.with_uniform_orderings(ordering)
            perf = DifferentiableModel.evaluate_layer(candidate, hardware, grid)
            energies.append(perf.energy)
            latencies.append(perf.latency)
        energy_matrix = ops.stack(energies)      # (3, L)
        latency_matrix = ops.stack(latencies)    # (3, L)
        weights = ops.softmax(1.0 / (energy_matrix * latency_matrix), axis=0)
        reps = _repeat_vector(repeats, len(all_factors))
        weighted_energy = (weights * energy_matrix).sum(axis=0) * reps
        weighted_latency = (weights * latency_matrix).sum(axis=0) * reps
        return ops.fold_sum(weighted_energy) * ops.fold_sum(weighted_latency)
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    weighted_energies = []
    weighted_latencies = []
    for factors, rep in zip(all_factors, repeats):
        energies = []
        latencies = []
        for candidate in ordering_candidates(factors):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            energies.append(perf.energy)
            latencies.append(perf.latency)
        energy_vector = ops.stack(energies)
        latency_vector = ops.stack(latencies)
        weights = ops.softmax(1.0 / (energy_vector * latency_vector))
        weighted_energies.append((weights * energy_vector).sum() * float(rep))
        weighted_latencies.append((weights * latency_vector).sum() * float(rep))
    return ops.total_sum(weighted_energies) * ops.total_sum(weighted_latencies)


def best_ordering_per_layer(
    all_factors: "Sequence[LayerFactors] | NetworkFactors",
    hardware: DifferentiableHardware | None = None,
) -> "list[LoopOrdering] | list[list[LoopOrdering]]":
    """Iterative loop-ordering selection (Section 5.2.1).

    For each layer, evaluate the WS/IS/OS orderings under the differentiable
    model and return the ordering with the lowest layer EDP.  Given a
    :class:`NetworkFactors`, each candidate ordering is evaluated once over
    all layers (a ``(3, L)`` EDP matrix, no graph recorded) instead of layer
    by layer; the batched EDPs are bit-identical to the per-layer model and
    ``argmin`` keeps the first minimum, so selections match the per-layer
    strict-``<`` scan decision-for-decision.

    Given a :class:`MultiStartFactors` (all starts' rounded mappings
    restacked, as at a batched rounding point), the same three evaluations
    produce a ``(3, S, L)`` EDP tensor whose per-start rows are bit-identical
    to the single-start matrices — start points share no graph entries — and
    the result is one list of per-layer selections per start.
    """
    if isinstance(all_factors, MultiStartFactors):
        from repro.autodiff import no_grad

        with no_grad():
            grid = all_factors.factor_grid()
            if hardware is None:
                hardware = DifferentiableModel.derive_hardware(all_factors, grid=grid)
            edps = np.stack([
                DifferentiableModel.evaluate_layer(
                    all_factors.with_uniform_orderings(ordering), hardware, grid
                ).edp.data
                for ordering in _CANDIDATE_ORDERINGS
            ])
        return [[_CANDIDATE_ORDERINGS[index] for index in row]
                for row in np.argmin(edps, axis=0)]
    if isinstance(all_factors, NetworkFactors):
        from repro.autodiff import no_grad

        with no_grad():
            grid = all_factors.factor_grid()
            if hardware is None:
                hardware = DifferentiableModel.derive_hardware(all_factors, grid=grid)
            edps = np.stack([
                DifferentiableModel.evaluate_layer(
                    all_factors.with_uniform_orderings(ordering), hardware, grid
                ).edp.data
                for ordering in _CANDIDATE_ORDERINGS
            ])
        return [_CANDIDATE_ORDERINGS[index] for index in np.argmin(edps, axis=0)]
    if hardware is None:
        hardware = DifferentiableModel.derive_hardware(list(all_factors))
    selections: list[LoopOrdering] = []
    for factors in all_factors:
        best = None
        best_edp = float("inf")
        for ordering, candidate in zip(_CANDIDATE_ORDERINGS, ordering_candidates(factors)):
            perf = DifferentiableModel.evaluate_layer(candidate, hardware)
            edp = float(perf.edp.data)
            if edp < best_edp:
                best_edp = edp
                best = ordering
        selections.append(best)
    return selections
