"""Differentiable hardware parameterization.

In the mapping-first flow, hardware is not a free search variable: the PE
count and SRAM capacities are *derived* from the mappings (Figure 3).  This
module expresses that derivation over autodiff tensors so that the Table-2
energy-per-access and bandwidth terms — which depend on the derived hardware —
propagate gradients back to the tiling factors.

For fixed-hardware evaluation (the Figure 4 correlation study, and the
Gemmini-RTL experiments where PE dimensions are pinned), the same class wraps
plain floats taken from a :class:`~repro.arch.config.HardwareConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from repro.arch.components import (
    ACCUMULATOR_EPA_BASE,
    ACCUMULATOR_EPA_SLOPE,
    BYTES_PER_WORD,
    DRAM_BANDWIDTH_WORDS_PER_CYCLE,
    DRAM_ENERGY_PER_ACCESS,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    PE_ENERGY_PER_MAC,
    REGISTER_ENERGY_PER_ACCESS,
    SCRATCHPAD_EPA_BASE,
    SCRATCHPAD_EPA_SLOPE,
)
from repro.arch.config import HardwareConfig
from repro.autodiff import Tensor, ops

Value = Union[Tensor, float]


@dataclass
class DifferentiableHardware:
    """Hardware parameters as (possibly differentiable) scalars.

    ``num_pes`` is the total PE count, ``accumulator_kb`` / ``scratchpad_kb``
    the SRAM capacities in kilobytes.  All three may be ``Tensor`` values
    (derived from mappings) or plain floats (fixed hardware).
    """

    num_pes: Value
    accumulator_kb: Value
    scratchpad_kb: Value

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_config(config: HardwareConfig) -> "DifferentiableHardware":
        """Fixed (non-differentiable) hardware from a concrete config."""
        return DifferentiableHardware(
            num_pes=float(config.num_pes),
            accumulator_kb=float(config.accumulator_kb),
            scratchpad_kb=float(config.scratchpad_kb),
        )

    @staticmethod
    def from_requirements(
        spatial_factors: "Iterable[Value] | Tensor",
        accumulator_words: Value,
        scratchpad_words: Value,
    ) -> "DifferentiableHardware":
        """Minimal hardware implied by per-layer requirements (Equation 1, Figure 3).

        ``spatial_factors`` are the candidate array side lengths (the C and K
        spatial factors of every layer) — an iterable of scalars, a 1-D tensor
        from the layer-batched model, or an ``(S, 2L)`` tensor from the
        multi-start model (each reduced with the equivalent fused left-fold
        maximum; the multi-start form folds each start's row independently and
        yields ``(S, 1)`` hardware fields, with ``accumulator_words`` /
        ``scratchpad_words`` expected in the same shape).  The PE count is the
        square of their maximum.  SRAM capacities convert word requirements to
        kilobytes.
        """
        if isinstance(spatial_factors, Tensor):
            if spatial_factors.size == 0:
                raise ValueError("from_requirements needs at least one spatial factor")
            side = ops.fold_max(spatial_factors, axis=-1)
            if side.ndim:
                # Keep the reduced axis so per-start hardware broadcasts
                # against that start's (S, L) factor columns.
                side = side.reshape(side.shape + (1,))
        else:
            side = None
            for factor in spatial_factors:
                side = factor if side is None else ops.maximum(side, factor)
            if side is None:
                raise ValueError("from_requirements needs at least one spatial factor")
        num_pes = side * side
        accumulator_kb = accumulator_words * (BYTES_PER_WORD[LEVEL_ACCUMULATOR] / 1024.0)
        scratchpad_kb = scratchpad_words * (BYTES_PER_WORD[LEVEL_SCRATCHPAD] / 1024.0)
        return DifferentiableHardware(
            num_pes=num_pes,
            accumulator_kb=accumulator_kb,
            scratchpad_kb=scratchpad_kb,
        )

    # ------------------------------------------------------------------ #
    # Table-2 cost model
    # ------------------------------------------------------------------ #
    @property
    def mac_energy(self) -> float:
        return PE_ENERGY_PER_MAC

    def energy_per_access(self, level: int) -> Value:
        """Energy per access at ``level`` (differentiable where capacity-dependent)."""
        if level == LEVEL_REGISTERS:
            return REGISTER_ENERGY_PER_ACCESS
        if level == LEVEL_ACCUMULATOR:
            return (ACCUMULATOR_EPA_BASE
                    + ACCUMULATOR_EPA_SLOPE * self.accumulator_kb / (self.num_pes**0.5))
        if level == LEVEL_SCRATCHPAD:
            return SCRATCHPAD_EPA_BASE + SCRATCHPAD_EPA_SLOPE * self.scratchpad_kb
        if level == LEVEL_DRAM:
            return DRAM_ENERGY_PER_ACCESS
        raise ValueError(f"unknown memory level {level}")

    def bandwidth(self, level: int) -> Value:
        """Bandwidth (words/cycle) at ``level`` (Table 2)."""
        if level == LEVEL_REGISTERS:
            return 2.0 * self.num_pes
        if level in (LEVEL_ACCUMULATOR, LEVEL_SCRATCHPAD):
            return 2.0 * self.num_pes**0.5
        if level == LEVEL_DRAM:
            return DRAM_BANDWIDTH_WORDS_PER_CYCLE
        raise ValueError(f"unknown memory level {level}")

    # ------------------------------------------------------------------ #
    def to_config(self, bounds=None) -> HardwareConfig:
        """Snap the (possibly fractional) parameters to a concrete config."""
        from repro.arch.config import DEFAULT_BOUNDS, minimal_hardware_for_requirements

        bounds = bounds or DEFAULT_BOUNDS
        num_pes = float(self.num_pes.data) if isinstance(self.num_pes, Tensor) else float(self.num_pes)
        accumulator_kb = (float(self.accumulator_kb.data)
                          if isinstance(self.accumulator_kb, Tensor) else float(self.accumulator_kb))
        scratchpad_kb = (float(self.scratchpad_kb.data)
                         if isinstance(self.scratchpad_kb, Tensor) else float(self.scratchpad_kb))
        return minimal_hardware_for_requirements(
            spatial_requirement=num_pes**0.5,
            accumulator_word_requirement=accumulator_kb * 1024.0 / BYTES_PER_WORD[LEVEL_ACCUMULATOR],
            scratchpad_word_requirement=scratchpad_kb * 1024.0 / BYTES_PER_WORD[LEVEL_SCRATCHPAD],
            bounds=bounds,
        )
