"""Differentiable tiling factors (the GD optimization variables).

DOSA optimizes, for every unique layer, the temporal tiling factors at the
register, accumulator and scratchpad levels plus the two spatial factors of
the weight-stationary dataflow — roughly twenty variables per layer
(Section 5.1).  DRAM-level temporal factors are not free variables: they are
inferred as the remaining problem size so that per-dimension factor products
always match the layer (Section 5.3.3).

Factors are parameterized in log space (the optimizer stores ``log f``), which
keeps them strictly positive under unconstrained gradient updates; the
Equation-18 hinge penalty still discourages values below 1 so the inferred
DRAM factors stay valid.

Three parameterizations share these semantics:

* :class:`LayerFactors` — one layer, scalar-graph factors.  Each forward pass
  over L layers builds L small graphs of hundreds of scalar nodes.
* :class:`NetworkFactors` — the layer-batched parameterization.  All L
  layers' log-factors are stacked into two tensors of shape
  ``(L, levels, dims)`` and ``(L, 2)``, so one forward pass over the whole
  network builds a *single* small graph of array ops whose node count is
  independent of the layer count.  Per-layer loop-ordering decisions become
  precomputed gather-index arrays (re-derived only when mappings are
  re-snapped at rounding points), and the per-factor structural masks are
  re-derived from current values on every pass inside
  :func:`repro.autodiff.ops.reload_product`.
* :class:`MultiStartFactors` — one axis further: the factors of S independent
  gradient-descent *start points* over the same L layers, stacked into
  ``(S, L, levels, dims)`` and ``(S, L, 2)`` tensors.  One forward/backward
  pass advances every start point of a DOSA search at once; since the starts
  share no graph nodes across rows, per-start losses, gradients and hence
  descent trajectories are bit-identical to running S separate
  :class:`NetworkFactors` descents.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arch.components import (
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.autodiff import Tensor, ops
from repro.mapping.mapping import (
    DEFAULT_ORDERINGS,
    DIM_INDEX,
    LoopOrdering,
    Mapping,
    NUM_DIMS,
    NUM_LEVELS,
    SPATIAL_DIMS,
    ordering_for_tensor,
)
from repro.mapping.rounding import round_mapping
from repro.mapping.rounding_walk import RoundingTables, round_factor_tensors
from repro.workloads.layer import DIMENSIONS, LayerDims

# Levels whose temporal factors are free optimization variables.
OPTIMIZED_LEVELS: tuple[int, ...] = (0, 1, 2)
_MIN_LOG_FACTOR = np.log(1e-3)
_MAX_LOG_FACTOR = np.log(1e9)


def _raw_factor_tensors(log_temporal: np.ndarray,
                        log_spatial: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Clamped-exp factor values in :class:`Mapping` layout.

    ``log_temporal`` is ``(..., len(OPTIMIZED_LEVELS), NUM_DIMS)`` and
    ``log_spatial`` is ``(..., len(SPATIAL_DIMS))``; the leading axes (layer,
    or start x layer) pass through.  Returns ``(temporal, spatial)`` arrays of
    shape ``(..., NUM_LEVELS, NUM_DIMS)`` holding exactly the values the
    per-mapping snapshot methods write — same exp, same clamp — with ones at
    every position the snapshot leaves untouched (the rounding walk ignores
    the DRAM temporal row and resets non-WS spatial positions itself).
    """
    shape = log_temporal.shape[:-2] + (NUM_LEVELS, NUM_DIMS)
    temporal = np.ones(shape)
    spatial = np.ones(shape)
    temporal[..., list(OPTIMIZED_LEVELS), :] = np.exp(
        np.clip(log_temporal, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
    values = np.exp(np.clip(log_spatial, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
    for position, (level, dim) in enumerate(SPATIAL_DIMS):
        spatial[..., level, DIM_INDEX[dim]] = values[..., position]
    return temporal, spatial


class LayerFactors:
    """Differentiable spatial/temporal tiling factors for one layer."""

    def __init__(
        self,
        layer: LayerDims,
        log_temporal: np.ndarray | None = None,
        log_spatial: np.ndarray | None = None,
        orderings: Sequence[LoopOrdering] = DEFAULT_ORDERINGS,
    ) -> None:
        self.layer = layer
        if log_temporal is None:
            log_temporal = np.zeros((len(OPTIMIZED_LEVELS), NUM_DIMS))
        if log_spatial is None:
            log_spatial = np.zeros(len(SPATIAL_DIMS))
        self.log_temporal = Tensor(log_temporal, requires_grad=True, name=f"{layer.name}:log_temporal")
        self.log_spatial = Tensor(log_spatial, requires_grad=True, name=f"{layer.name}:log_spatial")
        self.orderings: tuple[LoopOrdering, ...] = tuple(orderings)

    # ------------------------------------------------------------------ #
    # Construction from / conversion to concrete mappings
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_mapping(mapping: Mapping) -> "LayerFactors":
        """Initialize log-factors from a concrete (valid) mapping."""
        log_temporal = np.log(np.maximum(mapping.temporal[list(OPTIMIZED_LEVELS), :], 1e-12))
        log_spatial = np.log(np.array([
            max(mapping.spatial_factor(level, dim), 1e-12) for level, dim in SPATIAL_DIMS
        ]))
        return LayerFactors(
            layer=mapping.layer,
            log_temporal=log_temporal,
            log_spatial=log_spatial,
            orderings=mapping.orderings,
        )

    def load_mapping(self, mapping: Mapping) -> None:
        """Overwrite the parameter values (in place) from a concrete mapping.

        Used after periodic rounding: the optimizer keeps the same parameter
        tensors (and momentum state) but continues from the snapped point.
        """
        self.log_temporal.data = np.log(
            np.maximum(mapping.temporal[list(OPTIMIZED_LEVELS), :], 1e-12)
        )
        self.log_spatial.data = np.log(np.array([
            max(mapping.spatial_factor(level, dim), 1e-12) for level, dim in SPATIAL_DIMS
        ]))
        self.orderings = tuple(mapping.orderings)

    def parameters(self) -> list[Tensor]:
        return [self.log_temporal, self.log_spatial]

    # ------------------------------------------------------------------ #
    # Differentiable factor access
    # ------------------------------------------------------------------ #
    def factor_grid(self) -> dict[tuple[str, int, str], Tensor | float]:
        """All factors as tensors, keyed by ``(kind, level, dim)``.

        ``kind`` is ``"T"`` or ``"S"``.  Factors that are structurally 1
        (unsupported spatial positions) are plain floats.  DRAM temporal
        factors are derived so that every dimension's product equals the
        problem size, keeping gradients flowing into the inner factors.
        """
        grid: dict[tuple[str, int, str], Tensor | float] = {}
        temporal = ops.exp(self.log_temporal)
        spatial = ops.exp(self.log_spatial)

        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            for dim in DIMENSIONS:
                grid[("T", level, dim)] = temporal[level_pos, DIM_INDEX[dim]]
        for level in MEMORY_LEVEL_INDICES:
            for dim in DIMENSIONS:
                grid.setdefault(("S", level, dim), 1.0)
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            grid[("S", level, dim)] = spatial[position]

        # DRAM temporal factors absorb the remaining problem size.
        for dim in DIMENSIONS:
            inner = ops.total_prod(
                [grid[("T", level, dim)] for level in OPTIMIZED_LEVELS]
                + [grid[("S", level, dim)] for level, d in SPATIAL_DIMS if d == dim]
            )
            grid[("T", LEVEL_DRAM, dim)] = float(self.layer.dim(dim)) / inner
        return grid

    # ------------------------------------------------------------------ #
    # Numeric snapshots
    # ------------------------------------------------------------------ #
    def snapshot_mapping(self) -> Mapping:
        """Current (possibly fractional) factors as a numeric :class:`Mapping`."""
        mapping = Mapping(layer=self.layer, orderings=self.orderings)
        temporal = np.exp(np.clip(self.log_temporal.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        spatial = np.exp(np.clip(self.log_spatial.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            mapping.temporal[level, :] = temporal[level_pos, :]
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            mapping.spatial[level, DIM_INDEX[dim]] = spatial[position]
        return mapping.with_dram_inferred()

    def rounded_mapping(self, max_spatial: float | None = None) -> Mapping:
        """Nearest valid mapping to the current factors (Section 5.3.2)."""
        return round_mapping(self.snapshot_mapping(), max_spatial=max_spatial)

    def with_orderings(self, orderings: Sequence[LoopOrdering]) -> "LayerFactors":
        """Shallow view of the same parameters with different loop orderings."""
        view = LayerFactors.__new__(LayerFactors)
        view.layer = self.layer
        view.log_temporal = self.log_temporal
        view.log_spatial = self.log_spatial
        view.orderings = tuple(orderings)
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LayerFactors({self.layer.name or self.layer.dims()}, orderings={[o.value for o in self.orderings]})"


# --------------------------------------------------------------------------- #
# Layer-batched parameterization
# --------------------------------------------------------------------------- #
class NetworkGrid(dict):
    """Batched factor grid: ``(kind, level, dim) -> (L,) Tensor | float``.

    Same keying as :meth:`LayerFactors.factor_grid`, with one ``(L,)`` column
    per factor instead of a scalar.  The two matrix attributes expose the
    underlying stacked tensors for walk-order gathers (the batched reload
    factors index them with static per-layer permutation arrays).
    """

    temporal_matrix: "Tensor"  # (L, optimized levels, dims)
    dram_matrix: "Tensor"      # (L, dims) inferred DRAM temporal factors


class _BatchedLayerView:
    """Array-valued stand-in for ``LayerFactors.layer`` over a layer batch.

    Lets the :class:`~repro.core.dmodel.model.DifferentiableModel` tile-size
    formulas run unchanged on batched grids: ``stride_p``/``stride_q`` and
    ``dim(name)`` return ``(L,)`` arrays that broadcast through the same
    expressions the scalar path uses.  ``sizes`` is shared with the owning
    :class:`NetworkFactors`' ``dim_sizes`` — one table, two readers.
    """

    def __init__(self, layers: Sequence[LayerDims], sizes: np.ndarray) -> None:
        self.stride_p = np.array([layer.stride_p for layer in layers], dtype=np.float64)
        self.stride_q = np.array([layer.stride_q for layer in layers], dtype=np.float64)
        self._sizes = sizes

    def dim(self, name: str) -> np.ndarray:
        return self._sizes[:, DIM_INDEX[name]]


class NetworkFactors:
    """Differentiable tiling factors of *all* layers, stacked layer-first.

    The GD optimization variables of a whole network as two leaf tensors:
    ``log_temporal`` of shape ``(L, len(OPTIMIZED_LEVELS), NUM_DIMS)`` and
    ``log_spatial`` of shape ``(L, len(SPATIAL_DIMS))``.  One gradient step
    through this parameterization builds a single graph of NumPy array ops
    regardless of the layer count — the layer-batched counterpart of a list
    of :class:`LayerFactors`.

    Layers are heterogeneous: problem sizes and strides live in per-layer
    rows of ``dim_sizes``/stride arrays, and ``dim_mask`` marks which columns
    are real problem dimensions (size > 1).  Columns where the mask is False
    are padding — structurally-unit dimensions (e.g. R/S/Q of a matmul layer)
    whose factors stay pinned near 1 by the Eq.-18 penalty exactly as they do
    in the per-layer model, so masking is informational, not semantic.

    Loop orderings are per layer and per level; they are compiled once into
    gather-permutation index arrays (:meth:`order_perm`) and re-derived only
    when :meth:`load_mappings` re-snaps the parameterization at a rounding
    point, matching the model's locally-constant-structure semantics.
    """

    def __init__(
        self,
        layers: Sequence[LayerDims],
        log_temporal: np.ndarray | None = None,
        log_spatial: np.ndarray | None = None,
        orderings: Sequence[Sequence[LoopOrdering]] | None = None,
    ) -> None:
        if not layers:
            raise ValueError("NetworkFactors requires at least one layer")
        self.layers = list(layers)
        count = len(self.layers)
        if log_temporal is None:
            log_temporal = np.zeros((count, len(OPTIMIZED_LEVELS), NUM_DIMS))
        if log_spatial is None:
            log_spatial = np.zeros((count, len(SPATIAL_DIMS)))
        log_temporal = np.asarray(log_temporal, dtype=np.float64)
        log_spatial = np.asarray(log_spatial, dtype=np.float64)
        if log_temporal.shape != (count, len(OPTIMIZED_LEVELS), NUM_DIMS):
            raise ValueError(f"log_temporal must have shape "
                             f"{(count, len(OPTIMIZED_LEVELS), NUM_DIMS)}, "
                             f"got {log_temporal.shape}")
        if log_spatial.shape != (count, len(SPATIAL_DIMS)):
            raise ValueError(f"log_spatial must have shape "
                             f"{(count, len(SPATIAL_DIMS))}, got {log_spatial.shape}")
        self.log_temporal = Tensor(log_temporal, requires_grad=True, name="network:log_temporal")
        self.log_spatial = Tensor(log_spatial, requires_grad=True, name="network:log_spatial")
        if orderings is None:
            orderings = [DEFAULT_ORDERINGS] * count
        self.orderings: list[tuple[LoopOrdering, ...]] = [tuple(o) for o in orderings]
        if len(self.orderings) != count:
            raise ValueError("one per-level ordering tuple is required per layer")
        self.dim_sizes = np.array(
            [[float(layer.dim(d)) for d in DIMENSIONS] for layer in self.layers],
            dtype=np.float64,
        )
        self.dim_mask = self.dim_sizes > 1.0
        self._layer_view = _BatchedLayerView(self.layers, self.dim_sizes)
        self._order_perms: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------ #
    # Construction from / conversion to concrete mappings
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stacked_log_factors(mappings: Sequence[Mapping]) -> tuple[np.ndarray, np.ndarray]:
        """Stack mappings into ``(L, levels, dims)`` / ``(L, 2)`` log arrays.

        The single source of the clamp and level-slice conventions shared by
        :meth:`from_mappings` and :meth:`load_mappings` (mirroring the
        per-layer :meth:`LayerFactors.load_mapping`).
        """
        log_temporal = np.stack([
            np.log(np.maximum(m.temporal[list(OPTIMIZED_LEVELS), :], 1e-12))
            for m in mappings
        ])
        log_spatial = np.stack([
            np.log(np.array([max(m.spatial_factor(level, dim), 1e-12)
                             for level, dim in SPATIAL_DIMS]))
            for m in mappings
        ])
        return log_temporal, log_spatial

    @staticmethod
    def from_mappings(mappings: Sequence[Mapping]) -> "NetworkFactors":
        """Initialize stacked log-factors from concrete (valid) mappings."""
        log_temporal, log_spatial = NetworkFactors._stacked_log_factors(mappings)
        return NetworkFactors(
            layers=[m.layer for m in mappings],
            log_temporal=log_temporal,
            log_spatial=log_spatial,
            orderings=[m.orderings for m in mappings],
        )

    @staticmethod
    def from_layer_factors(all_factors: Sequence[LayerFactors]) -> "NetworkFactors":
        """Stack per-layer :class:`LayerFactors` into one batched instance."""
        return NetworkFactors(
            layers=[f.layer for f in all_factors],
            log_temporal=np.stack([f.log_temporal.data for f in all_factors]),
            log_spatial=np.stack([f.log_spatial.data for f in all_factors]),
            orderings=[f.orderings for f in all_factors],
        )

    def load_mappings(self, mappings: Sequence[Mapping]) -> None:
        """Overwrite the parameter values (in place) from concrete mappings.

        Used after periodic rounding: the same parameter tensors (and hence
        the optimizer's momentum state) continue from the snapped point.  The
        orderings may change here, which invalidates the compiled permutation
        arrays — callers holding a :class:`~repro.autodiff.tape.Tape` over a
        graph built from this instance must re-trace it.
        """
        if len(mappings) != len(self.layers):
            raise ValueError(f"expected {len(self.layers)} mappings, got {len(mappings)}")
        self.log_temporal.data, self.log_spatial.data = (
            self._stacked_log_factors(mappings))
        self.orderings = [tuple(m.orderings) for m in mappings]
        self._order_perms = None

    def parameters(self) -> list[Tensor]:
        return [self.log_temporal, self.log_spatial]

    # ------------------------------------------------------------------ #
    # Structure compilation
    # ------------------------------------------------------------------ #
    @property
    def layer(self) -> _BatchedLayerView:
        """Batched stand-in for ``LayerFactors.layer`` (array-valued dims)."""
        return self._layer_view

    def order_perm(self, level: int) -> np.ndarray:
        """``(L, dims)`` dimension indices in loop order (innermost first).

        The batched counterpart of ``Mapping.loop_order``: row ``l`` permutes
        the dimension axis of layer ``l``'s temporal factors at ``level`` into
        that layer's walk order.  Compiled lazily from the current orderings
        and cached until :meth:`load_mappings` changes them.
        """
        if self._order_perms is None:
            self._order_perms = np.array(
                [[[DIM_INDEX[d] for d in ordering_for_tensor(ordering)]
                  for ordering in layer_orderings]
                 for layer_orderings in self.orderings],
                dtype=np.intp,
            )
        return self._order_perms[:, level, :]

    # ------------------------------------------------------------------ #
    # Differentiable factor access
    # ------------------------------------------------------------------ #
    def factor_grid(self) -> NetworkGrid:
        """All factors as ``(L,)`` tensor columns, keyed like the scalar grid.

        Column ``grid[(kind, level, dim)][l]`` equals (bitwise) the scalar
        ``LayerFactors.factor_grid()`` entry of layer ``l``: the same exp,
        and the same left-to-right DRAM-inference product chain, evaluated
        elementwise over the layer axis.
        """
        grid = NetworkGrid()
        temporal = ops.exp(self.log_temporal)
        spatial = ops.exp(self.log_spatial)

        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            for dim in DIMENSIONS:
                grid[("T", level, dim)] = temporal[:, level_pos, DIM_INDEX[dim]]
        for level in MEMORY_LEVEL_INDICES:
            for dim in DIMENSIONS:
                grid.setdefault(("S", level, dim), 1.0)
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            grid[("S", level, dim)] = spatial[:, position]

        # DRAM temporal factors absorb the remaining problem size.
        for dim in DIMENSIONS:
            inner = ops.total_prod(
                [grid[("T", level, dim)] for level in OPTIMIZED_LEVELS]
                + [grid[("S", level, dim)] for level, d in SPATIAL_DIMS if d == dim]
            )
            grid[("T", LEVEL_DRAM, dim)] = (
                Tensor(self.dim_sizes[:, DIM_INDEX[dim]]) / inner)

        grid.temporal_matrix = temporal
        grid.dram_matrix = ops.stack(
            [grid[("T", LEVEL_DRAM, dim)] for dim in DIMENSIONS]).T
        return grid

    # ------------------------------------------------------------------ #
    # Numeric snapshots
    # ------------------------------------------------------------------ #
    def snapshot_mappings(self) -> list[Mapping]:
        """Current (possibly fractional) factors as numeric mappings."""
        temporal = np.exp(np.clip(self.log_temporal.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        spatial = np.exp(np.clip(self.log_spatial.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        mappings = []
        for index, layer in enumerate(self.layers):
            mapping = Mapping(layer=layer, orderings=self.orderings[index])
            for level_pos, level in enumerate(OPTIMIZED_LEVELS):
                mapping.temporal[level, :] = temporal[index, level_pos, :]
            for position, (level, dim) in enumerate(SPATIAL_DIMS):
                mapping.spatial[level, DIM_INDEX[dim]] = spatial[index, position]
            mappings.append(mapping.with_dram_inferred())
        return mappings

    def rounded_mappings(self, max_spatial: float | None = None,
                         batched: bool = True) -> list[Mapping]:
        """Nearest valid mapping per layer (Section 5.3.2).

        ``batched=True`` rounds every layer in one pass of the vectorized
        walk (:mod:`repro.mapping.rounding_walk`), bit-identical to the
        scalar :func:`~repro.mapping.rounding.round_mapping` oracle, which
        ``batched=False`` keeps running per mapping.
        """
        if not batched:
            return [round_mapping(mapping, max_spatial=max_spatial)
                    for mapping in self.snapshot_mappings()]
        temporal, spatial = _raw_factor_tensors(self.log_temporal.data,
                                                self.log_spatial.data)
        out_temporal, out_spatial = round_factor_tensors(
            temporal[None], spatial[None], RoundingTables.for_layers(self.layers),
            max_spatial=max_spatial)
        return [
            Mapping(layer=layer, temporal=out_temporal[0, index].copy(),
                    spatial=out_spatial[0, index].copy(),
                    orderings=self.orderings[index])
            for index, layer in enumerate(self.layers)
        ]

    def with_uniform_orderings(self, ordering: LoopOrdering) -> "NetworkFactors":
        """Shallow view sharing parameters, with ``ordering`` at every level.

        Used by the softmax loop-ordering loss to evaluate the WS/IS/OS
        candidates of every layer without duplicating parameter state.
        """
        view = NetworkFactors.__new__(NetworkFactors)
        view.layers = self.layers
        view.log_temporal = self.log_temporal
        view.log_spatial = self.log_spatial
        view.orderings = [(ordering,) * NUM_LEVELS] * len(self.layers)
        view.dim_sizes = self.dim_sizes
        view.dim_mask = self.dim_mask
        view._layer_view = self._layer_view
        view._order_perms = None
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [layer.name or "?" for layer in self.layers]
        return (f"NetworkFactors({len(self.layers)} layers: {names}, "
                f"{int(self.dim_mask.sum())} active dims)")


# --------------------------------------------------------------------------- #
# Start-point-batched parameterization
# --------------------------------------------------------------------------- #
class MultiStartGrid(dict):
    """Start-batched factor grid: ``(kind, level, dim) -> (S, L) Tensor | float``.

    Same keying as :class:`NetworkGrid`, with one ``(S, L)`` matrix per factor
    instead of an ``(L,)`` column: row ``s`` is exactly the column the
    :class:`NetworkFactors` grid of start point ``s`` would hold.
    """

    temporal_matrix: "Tensor"  # (S, L, optimized levels, dims)
    dram_matrix: "Tensor"      # (S, L, dims) inferred DRAM temporal factors


class MultiStartFactors(NetworkFactors):
    """Differentiable tiling factors of S start points x L layers.

    The GD optimization variables of *every* start point of a DOSA search as
    two leaf tensors: ``log_temporal`` of shape
    ``(S, L, len(OPTIMIZED_LEVELS), NUM_DIMS)`` and ``log_spatial`` of shape
    ``(S, L, len(SPATIAL_DIMS))``.  One gradient step through this
    parameterization advances all S descents in a single array-op graph —
    the start-point-batched counterpart of S :class:`NetworkFactors`.

    Start points are independent: no graph node mixes rows, every reduction
    (:func:`~repro.autodiff.ops.fold_sum`, :func:`~repro.autodiff.ops.fold_max`,
    :func:`~repro.autodiff.ops.reload_product`) folds along the trailing axes
    only, and the scalar training loss is the fold of the per-start losses —
    whose gradient into each start is exactly the gradient of that start's own
    loss.  Per-start values and gradients are therefore bit-identical to S
    separate single-start passes, which is what lets
    ``DosaSettings(batched_starts=True)`` keep seeded outcomes design-identical
    to the sequential schedule.

    ``layers``, ``dim_sizes`` and the stride arrays are shared across starts
    (every start descends the same network); ``dim_mask`` is the layer mask
    broadcast to ``(S, L, NUM_DIMS)``.  Loop orderings are tracked per start
    *and* per layer in ``start_orderings``; the compiled walk-order
    permutations become ``(S, L, dims)`` gather arrays.
    """

    def __init__(
        self,
        layers: Sequence[LayerDims],
        num_starts: int,
        log_temporal: np.ndarray | None = None,
        log_spatial: np.ndarray | None = None,
        orderings: "Sequence[Sequence[Sequence[LoopOrdering]]] | None" = None,
    ) -> None:
        if not layers:
            raise ValueError("MultiStartFactors requires at least one layer")
        if num_starts < 1:
            raise ValueError("MultiStartFactors requires at least one start point")
        self.layers = list(layers)
        self.num_starts = int(num_starts)
        count = len(self.layers)
        shape_t = (self.num_starts, count, len(OPTIMIZED_LEVELS), NUM_DIMS)
        shape_s = (self.num_starts, count, len(SPATIAL_DIMS))
        if log_temporal is None:
            log_temporal = np.zeros(shape_t)
        if log_spatial is None:
            log_spatial = np.zeros(shape_s)
        log_temporal = np.asarray(log_temporal, dtype=np.float64)
        log_spatial = np.asarray(log_spatial, dtype=np.float64)
        if log_temporal.shape != shape_t:
            raise ValueError(f"log_temporal must have shape {shape_t}, "
                             f"got {log_temporal.shape}")
        if log_spatial.shape != shape_s:
            raise ValueError(f"log_spatial must have shape {shape_s}, "
                             f"got {log_spatial.shape}")
        self.log_temporal = Tensor(log_temporal, requires_grad=True,
                                   name="multistart:log_temporal")
        self.log_spatial = Tensor(log_spatial, requires_grad=True,
                                  name="multistart:log_spatial")
        if orderings is None:
            orderings = [[DEFAULT_ORDERINGS] * count] * self.num_starts
        self.start_orderings: list[list[tuple[LoopOrdering, ...]]] = [
            [tuple(o) for o in start] for start in orderings]
        if (len(self.start_orderings) != self.num_starts
                or any(len(start) != count for start in self.start_orderings)):
            raise ValueError("orderings must hold one per-level tuple per "
                             "start point per layer")
        self.dim_sizes = np.array(
            [[float(layer.dim(d)) for d in DIMENSIONS] for layer in self.layers],
            dtype=np.float64,
        )
        # The per-layer padding mask, broadcast over the start axis: all
        # starts descend the same network, so the mask is one (L, dims) table
        # viewed as (S, L, dims).
        self.dim_mask = np.broadcast_to(self.dim_sizes > 1.0,
                                        (self.num_starts, count, NUM_DIMS))
        self._layer_view = _BatchedLayerView(self.layers, self.dim_sizes)
        self._order_perms: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Construction from / conversion to concrete mappings
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_mapping_sets(mapping_sets: Sequence[Sequence[Mapping]]) -> "MultiStartFactors":
        """Stack one list of concrete per-layer mappings per start point."""
        if not mapping_sets:
            raise ValueError("from_mapping_sets requires at least one start point")
        stacked = [NetworkFactors._stacked_log_factors(list(mappings))
                   for mappings in mapping_sets]
        return MultiStartFactors(
            layers=[m.layer for m in mapping_sets[0]],
            num_starts=len(mapping_sets),
            log_temporal=np.stack([t for t, _ in stacked]),
            log_spatial=np.stack([s for _, s in stacked]),
            orderings=[[m.orderings for m in mappings] for mappings in mapping_sets],
        )

    def load_mapping_sets(self, mapping_sets: "dict[int, Sequence[Mapping]]") -> None:
        """Overwrite selected start points' parameters from concrete mappings.

        ``mapping_sets`` maps a start index to that start's per-layer rounded
        mappings; start points not in the dict (e.g. budget-frozen ones) keep
        their current values.  Like :meth:`NetworkFactors.load_mappings` this
        may change loop orderings, so callers holding a
        :class:`~repro.autodiff.tape.Tape` must re-trace.
        """
        for start, mappings in mapping_sets.items():
            if not 0 <= start < self.num_starts:
                raise ValueError(f"start index {start} out of range "
                                 f"[0, {self.num_starts})")
            if len(mappings) != len(self.layers):
                raise ValueError(f"expected {len(self.layers)} mappings for "
                                 f"start {start}, got {len(mappings)}")
            log_temporal, log_spatial = self._stacked_log_factors(list(mappings))
            self.log_temporal.data[start] = log_temporal
            self.log_spatial.data[start] = log_spatial
            self.start_orderings[start] = [tuple(m.orderings) for m in mappings]
        self._order_perms = None

    # ------------------------------------------------------------------ #
    # Structure compilation
    # ------------------------------------------------------------------ #
    def order_perm(self, level: int) -> np.ndarray:
        """``(S, L, dims)`` dimension indices in loop order (innermost first)."""
        if self._order_perms is None:
            self._order_perms = np.array(
                [[[[DIM_INDEX[d] for d in ordering_for_tensor(ordering)]
                   for ordering in layer_orderings]
                  for layer_orderings in start]
                 for start in self.start_orderings],
                dtype=np.intp,
            )
        return self._order_perms[:, :, level, :]

    # ------------------------------------------------------------------ #
    # Differentiable factor access
    # ------------------------------------------------------------------ #
    def factor_grid(self) -> MultiStartGrid:
        """All factors as ``(S, L)`` tensor matrices, keyed like the scalar grid.

        Entry ``grid[(kind, level, dim)][s, l]`` equals (bitwise) the scalar
        ``LayerFactors.factor_grid()`` entry of start ``s``, layer ``l``.
        """
        grid = MultiStartGrid()
        temporal = ops.exp(self.log_temporal)
        spatial = ops.exp(self.log_spatial)

        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            for dim in DIMENSIONS:
                grid[("T", level, dim)] = temporal[:, :, level_pos, DIM_INDEX[dim]]
        for level in MEMORY_LEVEL_INDICES:
            for dim in DIMENSIONS:
                grid.setdefault(("S", level, dim), 1.0)
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            grid[("S", level, dim)] = spatial[:, :, position]

        # DRAM temporal factors absorb the remaining problem size.  The
        # (L,)-shaped problem sizes broadcast across the start axis.
        for dim in DIMENSIONS:
            inner = ops.total_prod(
                [grid[("T", level, dim)] for level in OPTIMIZED_LEVELS]
                + [grid[("S", level, dim)] for level, d in SPATIAL_DIMS if d == dim]
            )
            grid[("T", LEVEL_DRAM, dim)] = (
                Tensor(self.dim_sizes[:, DIM_INDEX[dim]]) / inner)

        grid.temporal_matrix = temporal
        grid.dram_matrix = ops.transpose(
            ops.stack([grid[("T", LEVEL_DRAM, dim)] for dim in DIMENSIONS]),
            (1, 2, 0))
        return grid

    # ------------------------------------------------------------------ #
    # Numeric snapshots
    # ------------------------------------------------------------------ #
    def snapshot_mappings_of(self, start: int) -> list[Mapping]:
        """One start point's current (possibly fractional) factors as mappings."""
        temporal = np.exp(np.clip(self.log_temporal.data[start],
                                  _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        spatial = np.exp(np.clip(self.log_spatial.data[start],
                                 _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        mappings = []
        for index, layer in enumerate(self.layers):
            mapping = Mapping(layer=layer, orderings=self.start_orderings[start][index])
            for level_pos, level in enumerate(OPTIMIZED_LEVELS):
                mapping.temporal[level, :] = temporal[index, level_pos, :]
            for position, (level, dim) in enumerate(SPATIAL_DIMS):
                mapping.spatial[level, DIM_INDEX[dim]] = spatial[index, position]
            mappings.append(mapping.with_dram_inferred())
        return mappings

    def rounded_mappings_of(self, start: int,
                            max_spatial: float | None = None) -> list[Mapping]:
        """Nearest valid mapping per layer for one start point (Section 5.3.2)."""
        return [round_mapping(mapping, max_spatial=max_spatial)
                for mapping in self.snapshot_mappings_of(start)]

    def snapshot_mapping_sets(self) -> list[list[Mapping]]:
        """Every start point's snapshot mappings, start-major."""
        return [self.snapshot_mappings_of(start) for start in range(self.num_starts)]

    def rounded_mapping_sets(
        self,
        starts: Sequence[int] | None = None,
        max_spatial: float | None = None,
    ) -> list[list[Mapping]]:
        """Selected starts' nearest valid mappings in one vectorized walk.

        The cross-start counterpart of per-start :meth:`rounded_mappings_of`:
        all selected starts' fractional factors go through a single
        ``(S, L)`` pass of the integer-rounding kernel
        (:mod:`repro.mapping.rounding_walk`), producing mappings bit-identical
        to rounding each start alone.  ``starts`` defaults to every start
        point; the result is ordered like ``starts``.
        """
        if starts is None:
            starts = range(self.num_starts)
        starts = [int(start) for start in starts]
        for start in starts:
            if not 0 <= start < self.num_starts:
                raise ValueError(f"start index {start} out of range "
                                 f"[0, {self.num_starts})")
        temporal, spatial = _raw_factor_tensors(
            self.log_temporal.data[starts], self.log_spatial.data[starts])
        out_temporal, out_spatial = round_factor_tensors(
            temporal, spatial, RoundingTables.for_layers(self.layers),
            max_spatial=max_spatial)
        return [
            [Mapping(layer=layer, temporal=out_temporal[i, index].copy(),
                     spatial=out_spatial[i, index].copy(),
                     orderings=self.start_orderings[start][index])
             for index, layer in enumerate(self.layers)]
            for i, start in enumerate(starts)
        ]

    # The single-start accessors of NetworkFactors are shape-ambiguous here.
    def snapshot_mappings(self):  # pragma: no cover - guard rail
        raise TypeError("use snapshot_mappings_of(start) / snapshot_mapping_sets() "
                        "on MultiStartFactors")

    def rounded_mappings(self, max_spatial=None, batched=True):  # pragma: no cover - guard rail
        raise TypeError("use rounded_mappings_of(start) / rounded_mapping_sets() "
                        "on MultiStartFactors")

    def load_mappings(self, mappings):  # pragma: no cover - guard rail
        raise TypeError("use load_mapping_sets({start: mappings}) on MultiStartFactors")

    def with_uniform_orderings(self, ordering: LoopOrdering) -> "MultiStartFactors":
        """Shallow view sharing parameters, with ``ordering`` at every level.

        Used by the softmax loop-ordering loss to evaluate the WS/IS/OS
        candidates of every start point and layer without duplicating state.
        """
        view = MultiStartFactors.__new__(MultiStartFactors)
        view.layers = self.layers
        view.num_starts = self.num_starts
        view.log_temporal = self.log_temporal
        view.log_spatial = self.log_spatial
        view.start_orderings = [
            [(ordering,) * NUM_LEVELS] * len(self.layers)] * self.num_starts
        view.dim_sizes = self.dim_sizes
        view.dim_mask = self.dim_mask
        view._layer_view = self._layer_view
        view._order_perms = None
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MultiStartFactors({self.num_starts} starts x "
                f"{len(self.layers)} layers)")
