"""Per-layer differentiable tiling factors (the GD optimization variables).

DOSA optimizes, for every unique layer, the temporal tiling factors at the
register, accumulator and scratchpad levels plus the two spatial factors of
the weight-stationary dataflow — roughly twenty variables per layer
(Section 5.1).  DRAM-level temporal factors are not free variables: they are
inferred as the remaining problem size so that per-dimension factor products
always match the layer (Section 5.3.3).

Factors are parameterized in log space (the optimizer stores ``log f``), which
keeps them strictly positive under unconstrained gradient updates; the
Equation-18 hinge penalty still discourages values below 1 so the inferred
DRAM factors stay valid.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arch.components import (
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.autodiff import Tensor, ops
from repro.mapping.mapping import (
    DEFAULT_ORDERINGS,
    DIM_INDEX,
    LoopOrdering,
    Mapping,
    NUM_DIMS,
    SPATIAL_DIMS,
)
from repro.mapping.rounding import round_mapping
from repro.workloads.layer import DIMENSIONS, LayerDims

# Levels whose temporal factors are free optimization variables.
OPTIMIZED_LEVELS: tuple[int, ...] = (0, 1, 2)
_MIN_LOG_FACTOR = np.log(1e-3)
_MAX_LOG_FACTOR = np.log(1e9)


class LayerFactors:
    """Differentiable spatial/temporal tiling factors for one layer."""

    def __init__(
        self,
        layer: LayerDims,
        log_temporal: np.ndarray | None = None,
        log_spatial: np.ndarray | None = None,
        orderings: Sequence[LoopOrdering] = DEFAULT_ORDERINGS,
    ) -> None:
        self.layer = layer
        if log_temporal is None:
            log_temporal = np.zeros((len(OPTIMIZED_LEVELS), NUM_DIMS))
        if log_spatial is None:
            log_spatial = np.zeros(len(SPATIAL_DIMS))
        self.log_temporal = Tensor(log_temporal, requires_grad=True, name=f"{layer.name}:log_temporal")
        self.log_spatial = Tensor(log_spatial, requires_grad=True, name=f"{layer.name}:log_spatial")
        self.orderings: tuple[LoopOrdering, ...] = tuple(orderings)

    # ------------------------------------------------------------------ #
    # Construction from / conversion to concrete mappings
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_mapping(mapping: Mapping) -> "LayerFactors":
        """Initialize log-factors from a concrete (valid) mapping."""
        log_temporal = np.log(np.maximum(mapping.temporal[list(OPTIMIZED_LEVELS), :], 1e-12))
        log_spatial = np.log(np.array([
            max(mapping.spatial_factor(level, dim), 1e-12) for level, dim in SPATIAL_DIMS
        ]))
        return LayerFactors(
            layer=mapping.layer,
            log_temporal=log_temporal,
            log_spatial=log_spatial,
            orderings=mapping.orderings,
        )

    def load_mapping(self, mapping: Mapping) -> None:
        """Overwrite the parameter values (in place) from a concrete mapping.

        Used after periodic rounding: the optimizer keeps the same parameter
        tensors (and momentum state) but continues from the snapped point.
        """
        self.log_temporal.data = np.log(
            np.maximum(mapping.temporal[list(OPTIMIZED_LEVELS), :], 1e-12)
        )
        self.log_spatial.data = np.log(np.array([
            max(mapping.spatial_factor(level, dim), 1e-12) for level, dim in SPATIAL_DIMS
        ]))
        self.orderings = tuple(mapping.orderings)

    def parameters(self) -> list[Tensor]:
        return [self.log_temporal, self.log_spatial]

    # ------------------------------------------------------------------ #
    # Differentiable factor access
    # ------------------------------------------------------------------ #
    def factor_grid(self) -> dict[tuple[str, int, str], Tensor | float]:
        """All factors as tensors, keyed by ``(kind, level, dim)``.

        ``kind`` is ``"T"`` or ``"S"``.  Factors that are structurally 1
        (unsupported spatial positions) are plain floats.  DRAM temporal
        factors are derived so that every dimension's product equals the
        problem size, keeping gradients flowing into the inner factors.
        """
        grid: dict[tuple[str, int, str], Tensor | float] = {}
        temporal = ops.exp(self.log_temporal)
        spatial = ops.exp(self.log_spatial)

        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            for dim in DIMENSIONS:
                grid[("T", level, dim)] = temporal[level_pos, DIM_INDEX[dim]]
        for level in MEMORY_LEVEL_INDICES:
            for dim in DIMENSIONS:
                grid.setdefault(("S", level, dim), 1.0)
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            grid[("S", level, dim)] = spatial[position]

        # DRAM temporal factors absorb the remaining problem size.
        for dim in DIMENSIONS:
            inner = ops.total_prod(
                [grid[("T", level, dim)] for level in OPTIMIZED_LEVELS]
                + [grid[("S", level, dim)] for level, d in SPATIAL_DIMS if d == dim]
            )
            grid[("T", LEVEL_DRAM, dim)] = float(self.layer.dim(dim)) / inner
        return grid

    # ------------------------------------------------------------------ #
    # Numeric snapshots
    # ------------------------------------------------------------------ #
    def snapshot_mapping(self) -> Mapping:
        """Current (possibly fractional) factors as a numeric :class:`Mapping`."""
        mapping = Mapping(layer=self.layer, orderings=self.orderings)
        temporal = np.exp(np.clip(self.log_temporal.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        spatial = np.exp(np.clip(self.log_spatial.data, _MIN_LOG_FACTOR, _MAX_LOG_FACTOR))
        for level_pos, level in enumerate(OPTIMIZED_LEVELS):
            mapping.temporal[level, :] = temporal[level_pos, :]
        for position, (level, dim) in enumerate(SPATIAL_DIMS):
            mapping.spatial[level, DIM_INDEX[dim]] = spatial[position]
        return mapping.with_dram_inferred()

    def rounded_mapping(self, max_spatial: float | None = None) -> Mapping:
        """Nearest valid mapping to the current factors (Section 5.3.2)."""
        return round_mapping(self.snapshot_mapping(), max_spatial=max_spatial)

    def with_orderings(self, orderings: Sequence[LoopOrdering]) -> "LayerFactors":
        """Shallow view of the same parameters with different loop orderings."""
        view = LayerFactors.__new__(LayerFactors)
        view.layer = self.layer
        view.log_temporal = self.log_temporal
        view.log_spatial = self.log_spatial
        view.orderings = tuple(orderings)
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LayerFactors({self.layer.name or self.layer.dims()}, orderings={[o.value for o in self.orderings]})"
