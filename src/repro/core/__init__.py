"""DOSA core: the differentiable performance model and the one-loop optimizer."""

from repro.core.dmodel import (
    DifferentiableHardware,
    LayerFactors,
    DifferentiableModel,
    LayerPerformance,
    network_edp_loss,
    validity_penalty,
)
from repro.core.optimizer import (
    DosaSearcher,
    DosaSettings,
    LoopOrderingStrategy,
    SearchOutcome,
    SearchTrace,
)

__all__ = [
    "DifferentiableHardware",
    "LayerFactors",
    "DifferentiableModel",
    "LayerPerformance",
    "network_edp_loss",
    "validity_penalty",
    "DosaSearcher",
    "DosaSettings",
    "LoopOrderingStrategy",
    "SearchOutcome",
    "SearchTrace",
]
