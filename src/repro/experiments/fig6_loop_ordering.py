"""Figure 6: comparing loop-ordering optimization strategies.

The paper runs DOSA on ResNet-50 and BERT with (a) no loop-ordering search,
(b) iterative re-selection at every rounding point, and (c) gradient-based
softmax weighting, reporting that iterate reaches ~1.70x and softmax ~1.58x
better EDP than the no-search baseline after ~7000 samples.
"""

from __future__ import annotations

from repro.core.optimizer import DosaSearcher, DosaSettings, LoopOrderingStrategy
from repro.experiments.common import ExperimentOutput
from repro.utils.rng import SeedLike
from repro.workloads.networks import get_network

STRATEGIES = (
    LoopOrderingStrategy.NONE,
    LoopOrderingStrategy.ITERATE,
    LoopOrderingStrategy.SOFTMAX,
)


def run(
    workloads: tuple[str, ...] = ("resnet50", "bert"),
    num_start_points: int = 7,
    gd_steps: int = 890,
    rounding_period: int = 300,
    seed: SeedLike = 0,
) -> dict[str, dict[str, float]]:
    """Best EDP per workload per strategy; same start-point seed per strategy."""
    results: dict[str, dict[str, float]] = {}
    for workload in workloads:
        network = get_network(workload)
        per_strategy: dict[str, float] = {}
        for strategy in STRATEGIES:
            settings = DosaSettings(
                num_start_points=num_start_points,
                gd_steps=gd_steps,
                rounding_period=rounding_period,
                ordering_strategy=strategy,
                seed=seed,
            )
            result = DosaSearcher(network, settings).search()
            per_strategy[strategy.value] = result.best_edp
        results[workload] = per_strategy
    return results


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig6_loop_ordering",
        headers=["workload", "strategy", "best EDP", "improvement vs baseline"],
    )
    for workload, per_strategy in results.items():
        baseline = per_strategy[LoopOrderingStrategy.NONE.value]
        for strategy, edp in per_strategy.items():
            output.add_row(workload, strategy, f"{edp:.4e}", round(baseline / edp, 3))
    output.add_note("Paper (Fig. 6): iterate ~1.70x and softmax ~1.58x better than "
                    "no loop-ordering search after 7000 samples.")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
