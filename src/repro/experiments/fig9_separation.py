"""Figure 9 / Section 6.4: separating hardware gains from mapping gains.

For each workload and each of several GD runs the experiment compares:

* the start point (random hardware + CoSA mappings),
* DOSA hardware with CoSA mappings (constant mapper),
* DOSA hardware with best-of-N random mappings,
* DOSA hardware with DOSA mappings (the full result).

The GD grid — workloads x per-run seeds — is one
:class:`~repro.campaign.spec.CampaignSpec` executed through the campaign
scheduler (inline, so each outcome keeps its live ``extras["start_points"]``);
the three dependent columns are derived per outcome afterwards, because the
random-mapper column's hardware only exists once its DOSA run finishes.  All
searches go through the unified registry: the GD run is the ``"dosa"``
strategy and the random-mapper column is the ``"fixed_hw_random"`` strategy
pinned to the DOSA hardware.

The paper reports (geomean over 4 workloads x 10 runs): 5.75x end-over-start,
3.21x from hardware alone under the constant mapper, DOSA mappings 1.79x
better than CoSA and 2.78x better than a 1000-sample random mapper on the
same DOSA hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.gemmini import GemminiSpec
from repro.campaign import CampaignSpec, StrategyVariant, run_campaign
from repro.core.optimizer import DosaSettings
from repro.eval.cache import EvaluationCache
from repro.experiments.common import ExperimentOutput, run_search
from repro.mapping.cosa import cosa_mapping
from repro.search.random_mapper_search import FixedHardwareSettings
from repro.timeloop.model import evaluate_network_mappings
from repro.utils.math_utils import geometric_mean
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES, get_network


@dataclass
class SeparationResult:
    """EDPs of the four hardware/mapping combinations for one run."""

    workload: str
    start_edp: float
    dosa_hw_cosa_mapping_edp: float
    dosa_hw_random_mapping_edp: float
    dosa_edp: float


def _separation_columns(
    workload: str,
    outcome,
    random_mappings_per_layer: int,
    seed: SeedLike,
    cache: EvaluationCache | None = None,
) -> SeparationResult:
    """Derive the three dependent columns from one finished DOSA outcome.

    These stay outside the campaign grid on purpose: the random-mapper run
    is pinned to hardware that only exists after the DOSA job finished.
    """
    network = get_network(workload)
    start = outcome.extras["start_points"][0]
    start_performance = evaluate_network_mappings(start.mappings, GemminiSpec(start.hardware))

    dosa_hardware = outcome.best_hardware
    cosa_on_dosa_hw = [cosa_mapping(layer, dosa_hardware) for layer in network.layers]
    cosa_performance = evaluate_network_mappings(cosa_on_dosa_hw, GemminiSpec(dosa_hardware))

    random_outcome = run_search(
        workload, "fixed_hw_random",
        settings=FixedHardwareSettings(mappings_per_layer=random_mappings_per_layer,
                                       seed=seed),
        hardware=dosa_hardware, cache=cache)

    return SeparationResult(
        workload=workload,
        start_edp=start_performance.edp,
        dosa_hw_cosa_mapping_edp=cosa_performance.edp,
        dosa_hw_random_mapping_edp=random_outcome.best_edp,
        dosa_edp=outcome.best_edp,
    )


def run_single(workload: str, settings: DosaSettings,
               random_mappings_per_layer: int = 1000) -> SeparationResult:
    """One GD run on ``workload`` with all four evaluation combinations.

    The DOSA run and the fixed-hardware random-mapper run share one
    reference-model cache (the mapper re-visits rounded mappings the GD run
    already scored on the same derived hardware).
    """
    cache = EvaluationCache()
    outcome = run_search(workload, "dosa", settings=settings, cache=cache)
    return _separation_columns(workload, outcome, random_mappings_per_layer,
                               seed=settings.seed, cache=cache)


def run_seeds(seed: SeedLike, runs_per_workload: int) -> tuple[int, ...]:
    """The per-run GD seeds (one independent seed per repeat of the grid)."""
    return tuple((seed, run_index).__hash__() & 0xFFFFFFFF
                 for run_index in range(runs_per_workload))


def campaign_spec(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    runs_per_workload: int = 10,
    num_start_points: int = 1,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    seed: SeedLike = 0,
) -> CampaignSpec:
    """The Figure 9 GD grid: workloads x ``runs_per_workload`` seeds."""
    return CampaignSpec(
        name="fig9_separation",
        workloads=tuple(workloads),
        strategies=(StrategyVariant(
            "dosa",
            settings={"num_start_points": num_start_points,
                      "gd_steps": gd_steps,
                      "rounding_period": rounding_period}),),
        seeds=run_seeds(seed, runs_per_workload),
    )


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    runs_per_workload: int = 10,
    num_start_points: int = 1,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    random_mappings_per_layer: int = 1000,
    seed: SeedLike = 0,
) -> list[SeparationResult]:
    spec = campaign_spec(workloads=workloads,
                         runs_per_workload=runs_per_workload,
                         num_start_points=num_start_points, gd_steps=gd_steps,
                         rounding_period=rounding_period, seed=seed)
    # Inline on purpose: the post-processing needs each outcome's live
    # extras["start_points"], which do not survive a worker-pool round trip.
    # The shared cache carries the GD runs' reference evaluations into the
    # dependent random-mapper searches (rounded mappings recur on the same
    # derived hardware), exactly like the per-run sharing in run_single.
    cache = EvaluationCache()
    outcomes = run_campaign(spec, cache=cache).complete_outcomes()
    return [
        _separation_columns(job.workload, outcomes[job.job_id],
                            random_mappings_per_layer, seed=job.seed,
                            cache=cache)
        for job in spec.jobs()
    ]


def summarize(results: list[SeparationResult]) -> dict[str, float]:
    """Geometric-mean improvement factors matching Section 6.4's headline numbers."""
    return {
        "end_over_start": geometric_mean([r.start_edp / r.dosa_edp for r in results]),
        "hw_only_constant_mapper": geometric_mean(
            [r.start_edp / r.dosa_hw_cosa_mapping_edp for r in results]),
        "dosa_mapping_vs_cosa": geometric_mean(
            [r.dosa_hw_cosa_mapping_edp / r.dosa_edp for r in results]),
        "dosa_mapping_vs_random": geometric_mean(
            [r.dosa_hw_random_mapping_edp / r.dosa_edp for r in results]),
    }


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig9_hw_vs_mapping",
        headers=["workload", "start EDP", "DOSA HW + CoSA", "DOSA HW + random",
                 "DOSA HW + DOSA mapping"],
    )
    for result in results:
        output.add_row(result.workload, f"{result.start_edp:.4e}",
                       f"{result.dosa_hw_cosa_mapping_edp:.4e}",
                       f"{result.dosa_hw_random_mapping_edp:.4e}",
                       f"{result.dosa_edp:.4e}")
    summary = summarize(results)
    output.add_note(
        f"Geomean end/start {summary['end_over_start']:.2f}x (paper 5.75x); "
        f"HW-only under constant mapper {summary['hw_only_constant_mapper']:.2f}x (paper 3.21x); "
        f"DOSA mapping vs CoSA {summary['dosa_mapping_vs_cosa']:.2f}x (paper 1.79x); "
        f"vs random mapper {summary['dosa_mapping_vs_random']:.2f}x (paper 2.78x).")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
