"""Shared helpers for the experiment harnesses.

Search-based harnesses (Figures 7-9) go through :func:`run_search`, which
resolves strategies via the unified registry so harness code never touches
strategy-specific searcher or result classes.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.eval.cache import EvaluationCache
from repro.search.api import SearchBudget, SearchOutcome, optimize
from repro.utils.formatting import format_table

#: The three co-search strategies compared in Figures 7-9.
COSEARCH_STRATEGIES: tuple[str, ...] = ("dosa", "random", "bayesian")


def run_search(
    workload: str,
    strategy: str,
    settings: Any = None,
    budget: SearchBudget | int | None = None,
    n_workers: int | None = None,
    cache: EvaluationCache | None = None,
    **searcher_kwargs,
) -> SearchOutcome:
    """Run one registered strategy on a named workload (unified outcome).

    ``n_workers`` sizes the evaluation engine's process pool for the
    reference model (``None`` keeps evaluation in-process; results are
    identical either way, so harness outputs do not depend on it).  ``cache``
    lets several searches share one reference-model memo table — results are
    bit-identical with or without it, only faster.
    """
    return optimize(workload, strategy=strategy, settings=settings,
                    budget=budget, n_workers=n_workers, cache=cache,
                    **searcher_kwargs)


def run_strategies(
    workload: str,
    strategy_settings: dict[str, Any],
    budget: SearchBudget | int | None = None,
    n_workers: int | None = None,
) -> dict[str, SearchOutcome]:
    """Run several strategies on one workload with a shared budget.

    ``strategy_settings`` maps registry names to settings objects (or ``None``
    for each strategy's defaults); the same :class:`SearchBudget` applies to
    every strategy so their traces are directly comparable.  ``n_workers``
    is forwarded to every strategy's evaluation engine.  All strategies share
    one :class:`EvaluationCache`: candidates revisited across strategies
    (identical rounded mappings on identical hardware are common) are served
    from memory instead of re-evaluated.
    """
    shared_cache = EvaluationCache()
    return {strategy: run_search(workload, strategy, settings=settings,
                                 budget=budget, n_workers=n_workers,
                                 cache=shared_cache)
            for strategy, settings in strategy_settings.items()}


def default_output_dir() -> Path:
    """Directory experiment outputs are written to (``$REPRO_OUTPUT_DIR`` or ./output_dir)."""
    return Path(os.environ.get("REPRO_OUTPUT_DIR", "output_dir"))


def write_csv(path: Path, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Write a CSV file, creating parent directories as needed."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


@dataclass
class ExperimentOutput:
    """A named table of results that can be printed and persisted."""

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        body = format_table(self.headers, self.rows)
        if self.notes:
            body += "\n" + "\n".join(f"# {note}" for note in self.notes)
        return f"== {self.name} ==\n{body}"

    def save(self, output_dir: Path | None = None) -> Path:
        """Write CSV + text table under the output directory; returns the CSV path."""
        output_dir = output_dir or default_output_dir()
        csv_path = output_dir / f"{self.name}.csv"
        write_csv(csv_path, self.headers, self.rows)
        text_path = output_dir / f"{self.name}.txt"
        text_path.write_text(self.to_text() + "\n")
        return csv_path
