"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.utils.formatting import format_table


def default_output_dir() -> Path:
    """Directory experiment outputs are written to (``$REPRO_OUTPUT_DIR`` or ./output_dir)."""
    return Path(os.environ.get("REPRO_OUTPUT_DIR", "output_dir"))


def write_csv(path: Path, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Write a CSV file, creating parent directories as needed."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


@dataclass
class ExperimentOutput:
    """A named table of results that can be printed and persisted."""

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        body = format_table(self.headers, self.rows)
        if self.notes:
            body += "\n" + "\n".join(f"# {note}" for note in self.notes)
        return f"== {self.name} ==\n{body}"

    def save(self, output_dir: Path | None = None) -> Path:
        """Write CSV + text table under the output directory; returns the CSV path."""
        output_dir = output_dir or default_output_dir()
        csv_path = output_dir / f"{self.name}.csv"
        write_csv(csv_path, self.headers, self.rows)
        text_path = output_dir / f"{self.name}.txt"
        text_path.write_text(self.to_text() + "\n")
        return csv_path
