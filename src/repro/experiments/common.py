"""Shared helpers for the experiment harnesses.

Search-based harnesses (Figures 7-9) drive their grids through the campaign
layer: each harness declares its workload x strategy (x seed) grid as a
:class:`~repro.campaign.spec.CampaignSpec` and runs it with
:func:`~repro.campaign.scheduler.run_campaign` (an ephemeral store by
default), so the figure pipeline, ``repro.cli campaign`` and ad-hoc sweeps
all share one orchestration path.  One-off searches still go through
:func:`run_search`, which resolves strategies via the unified registry so
harness code never touches strategy-specific searcher or result classes.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.campaign import CampaignSpec, StrategyVariant, run_campaign
from repro.eval.cache import EvaluationCache
from repro.search.api import SearchBudget, SearchOutcome, optimize
from repro.utils.atomic import write_atomic
from repro.utils.formatting import format_table
from repro.utils.rng import SeedLike

#: The three co-search strategies compared in Figures 7-9.
COSEARCH_STRATEGIES: tuple[str, ...] = ("dosa", "random", "bayesian")


def run_search(
    workload: str,
    strategy: str,
    settings: Any = None,
    budget: SearchBudget | int | None = None,
    n_workers: int | None = None,
    cache: EvaluationCache | None = None,
    **searcher_kwargs,
) -> SearchOutcome:
    """Run one registered strategy on a named workload (unified outcome).

    ``n_workers`` sizes the evaluation engine's process pool for the
    reference model (``None`` keeps evaluation in-process; results are
    identical either way, so harness outputs do not depend on it).  ``cache``
    lets several searches share one reference-model memo table — results are
    bit-identical with or without it, only faster.
    """
    return optimize(workload, strategy=strategy, settings=settings,
                    budget=budget, n_workers=n_workers, cache=cache,
                    **searcher_kwargs)


def cosearch_campaign_spec(
    name: str,
    workloads: Sequence[str],
    strategy_overrides: Mapping[str, Mapping[str, Any]],
    seed: SeedLike = 0,
    budget: SearchBudget | int | None = None,
) -> CampaignSpec:
    """Declare a harness grid: ``workloads`` x the given strategy variants.

    ``strategy_overrides`` maps registry names to JSON-safe settings-kwargs
    overrides (everything except the seed, which is the grid's seed axis);
    the same :class:`SearchBudget` applies to every cell so best-so-far
    traces are directly comparable.
    """
    return CampaignSpec(
        name=name,
        workloads=tuple(workloads),
        strategies=tuple(StrategyVariant(strategy, settings=dict(overrides))
                         for strategy, overrides in strategy_overrides.items()),
        seeds=(seed,),
        budgets=(SearchBudget.coerce(budget),),
    )


def run_strategies(
    workload: str,
    strategy_overrides: Mapping[str, Mapping[str, Any]],
    seed: SeedLike = 0,
    budget: SearchBudget | int | None = None,
    n_workers: int | None = None,
) -> dict[str, SearchOutcome]:
    """Run several strategies on one workload through the campaign layer.

    The grid runs through :func:`~repro.campaign.scheduler.run_campaign` with
    an ephemeral store: jobs share one reference-model cache (in memory when
    run inline, via the store's spill when ``n_workers`` shards them across
    processes), and results are bit-identical either way.
    """
    spec = cosearch_campaign_spec(f"{workload}-strategies", (workload,),
                                  strategy_overrides, seed=seed, budget=budget)
    outcomes = run_campaign(spec, n_workers=n_workers).complete_outcomes()
    return {job.variant.name: outcomes[job.job_id] for job in spec.jobs()}


def default_output_dir() -> Path:
    """Directory experiment outputs are written to (``$REPRO_OUTPUT_DIR`` or ./output_dir)."""
    return Path(os.environ.get("REPRO_OUTPUT_DIR", "output_dir"))


def write_csv(path: Path, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Atomically write a CSV file, creating parent directories as needed."""
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    write_atomic(path, buffer.getvalue())


@dataclass
class ExperimentOutput:
    """A named table of results that can be printed and persisted."""

    name: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        body = format_table(self.headers, self.rows)
        if self.notes:
            body += "\n" + "\n".join(f"# {note}" for note in self.notes)
        return f"== {self.name} ==\n{body}"

    def save(self, output_dir: Path | None = None) -> Path:
        """Write CSV + text table under the output directory; returns the CSV path."""
        output_dir = output_dir or default_output_dir()
        csv_path = output_dir / f"{self.name}.csv"
        write_csv(csv_path, self.headers, self.rows)
        text_path = output_dir / f"{self.name}.txt"
        write_atomic(text_path, self.to_text() + "\n")
        return csv_path
