"""Figure 4: correlation of the differentiable model against the reference model.

The paper maps 73 unique layers onto 100 random Gemmini configurations for a
total of 10,000 random mappings and reports the relative error of the
differentiable model's latency, energy and EDP predictions against Timeloop
(MAE 0.01% / 0.18% / 0.18%, with outliers up to ~12% on very small layers
caused by DRAM block-ceiling energy accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import random_hardware_config
from repro.arch.gemmini import GemminiSpec
from repro.core.dmodel import DifferentiableHardware, DifferentiableModel, LayerFactors
from repro.experiments.common import ExperimentOutput
from repro.mapping.random_mapper import random_mapping
from repro.timeloop.model import evaluate_mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.registry import correlation_layer_pool


@dataclass
class CorrelationStats:
    """Error statistics of one metric (latency / energy / EDP)."""

    mean_absolute_error_pct: float
    max_absolute_error_pct: float
    within_one_pct: float


def run(
    num_configs: int = 100,
    mappings_per_config: int = 100,
    seed: SeedLike = 0,
) -> dict[str, CorrelationStats]:
    """Compare differentiable-model predictions against the reference model.

    Returns error statistics per metric.  The paper-scale run uses 100 configs
    x 100 mappings = 10,000 points; tests and benchmarks shrink both numbers.
    """
    rng = make_rng(seed)
    pool = correlation_layer_pool()
    errors: dict[str, list[float]] = {"latency": [], "energy": [], "edp": []}

    for _ in range(num_configs):
        config = random_hardware_config(seed=rng)
        spec = GemminiSpec(config)
        hardware = DifferentiableHardware.from_config(config)
        for _ in range(mappings_per_config):
            layer = pool[int(rng.integers(len(pool)))]
            mapping = random_mapping(layer, seed=rng, max_spatial=config.pe_dim)
            reference = evaluate_mapping(mapping, spec)
            predicted = DifferentiableModel.evaluate_layer(
                LayerFactors.from_mapping(mapping), hardware)
            predicted_latency = float(predicted.latency.data)
            predicted_energy = float(predicted.energy.data)
            errors["latency"].append(
                100.0 * (predicted_latency - reference.latency_cycles) / reference.latency_cycles)
            errors["energy"].append(
                100.0 * (predicted_energy - reference.energy) / reference.energy)
            errors["edp"].append(
                100.0 * (predicted_latency * predicted_energy - reference.edp) / reference.edp)

    stats: dict[str, CorrelationStats] = {}
    for metric, values in errors.items():
        values = np.asarray(values)
        stats[metric] = CorrelationStats(
            mean_absolute_error_pct=float(np.mean(np.abs(values))),
            max_absolute_error_pct=float(np.max(np.abs(values))),
            within_one_pct=float(np.mean(np.abs(values) <= 1.0)),
        )
    return stats


def main(num_configs: int = 100, mappings_per_config: int = 100, seed: SeedLike = 0) -> ExperimentOutput:
    stats = run(num_configs=num_configs, mappings_per_config=mappings_per_config, seed=seed)
    output = ExperimentOutput(
        name="fig4_model_correlation",
        headers=["metric", "MAE (%)", "max abs error (%)", "fraction within 1%"],
    )
    for metric in ("latency", "energy", "edp"):
        s = stats[metric]
        output.add_row(metric, round(s.mean_absolute_error_pct, 4),
                       round(s.max_absolute_error_pct, 3), round(s.within_one_pct, 4))
    output.add_note("Paper (Fig. 4): latency MAE 0.01%, energy MAE 0.18%, EDP MAE 0.18%; "
                    "98.3% of points within 1%; outliers up to 12% on tiny layers.")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
