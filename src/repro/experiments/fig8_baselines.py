"""Figure 8: DOSA-optimized Gemmini versus expert-designed accelerators.

Each baseline accelerator (Eyeriss, NVDLA Small, NVDLA Large, Gemmini default)
keeps its fixed hardware and receives the best of N random mappings per layer
(the paper uses Timeloop's random-pruned mapper with 10,000 mappings), run as
a ``"fixed_hw_random"`` strategy variant pinned to that accelerator's
hardware.  The DOSA column is the ``"dosa"`` strategy on the same grid.  The
whole comparison — workloads x (four fixed accelerators + DOSA) — is one
:class:`~repro.campaign.spec.CampaignSpec` executed through the campaign
scheduler, whose store spills the reference-model cache across jobs (layers
repeat across accelerators, so sampled mappings recur).
"""

from __future__ import annotations

from repro.arch.baselines import baseline_accelerators
from repro.campaign import CampaignSpec, StrategyVariant, run_campaign
from repro.experiments.common import ExperimentOutput
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES

#: Variant name of the DOSA-optimized Gemmini column.
DOSA_COLUMN = "Gemmini DOSA"


def campaign_spec(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    mappings_per_layer: int = 10_000,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    seed: SeedLike = 0,
) -> CampaignSpec:
    """The Figure 8 grid: every expert baseline plus DOSA, per workload."""
    variants = tuple(
        StrategyVariant(
            name=baseline.name,
            strategy="fixed_hw_random",
            settings={"mappings_per_layer": mappings_per_layer},
            hardware=baseline.config,
        )
        for baseline in baseline_accelerators()
    ) + (
        StrategyVariant(
            name=DOSA_COLUMN,
            strategy="dosa",
            settings={"num_start_points": num_start_points, "gd_steps": gd_steps,
                      "rounding_period": rounding_period},
        ),
    )
    return CampaignSpec(name="fig8_baselines", workloads=tuple(workloads),
                        strategies=variants, seeds=(seed,))


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    mappings_per_layer: int = 10_000,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    seed: SeedLike = 0,
    n_workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """EDP per workload per accelerator, with DOSA-optimized Gemmini last."""
    spec = campaign_spec(workloads=workloads,
                         mappings_per_layer=mappings_per_layer,
                         num_start_points=num_start_points, gd_steps=gd_steps,
                         rounding_period=rounding_period, seed=seed)
    campaign = run_campaign(spec, n_workers=n_workers)
    outcomes = campaign.complete_outcomes()  # propagates interrupts cleanly
    results: dict[str, dict[str, float]] = {w: {} for w in workloads}
    for job in spec.jobs():
        results[job.workload][job.variant.name] = \
            outcomes[job.job_id].best_edp
    return results


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig8_baseline_accelerators",
        headers=["workload", "accelerator", "EDP", "normalized to Gemmini DOSA"],
    )
    for workload, per_accelerator in results.items():
        dosa_edp = per_accelerator[DOSA_COLUMN]
        for accelerator, edp in per_accelerator.items():
            output.add_row(workload, accelerator, f"{edp:.4e}", round(edp / dosa_edp, 2))
    output.add_note("Paper (Fig. 8): DOSA-optimized Gemmini-TL outperforms every expert "
                    "baseline by more than 2x EDP on all four workloads.")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
