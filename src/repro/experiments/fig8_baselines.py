"""Figure 8: DOSA-optimized Gemmini versus expert-designed accelerators.

Each baseline accelerator (Eyeriss, NVDLA Small, NVDLA Large, Gemmini default)
keeps its fixed hardware and receives the best of N random mappings per layer
(the paper uses Timeloop's random-pruned mapper with 10,000 mappings), run
through the ``"fixed_hw_random"`` strategy of the unified search registry.
The DOSA column is the EDP of the hardware + mappings found by the ``"dosa"``
strategy on the same API.
"""

from __future__ import annotations

from repro.arch.baselines import baseline_accelerators
from repro.core.optimizer import DosaSettings
from repro.eval.cache import EvaluationCache
from repro.experiments.common import ExperimentOutput, run_search
from repro.search.random_mapper_search import FixedHardwareSettings
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    mappings_per_layer: int = 10_000,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    seed: SeedLike = 0,
) -> dict[str, dict[str, float]]:
    """EDP per workload per accelerator, with DOSA-optimized Gemmini last."""
    results: dict[str, dict[str, float]] = {}
    for workload in workloads:
        # One reference-model cache per workload, shared by every baseline
        # accelerator's mapper run and the DOSA run (layers repeat across
        # them, so rounded/sampled mappings recur).
        cache = EvaluationCache()
        per_accelerator: dict[str, float] = {}
        for baseline in baseline_accelerators():
            outcome = run_search(
                workload, "fixed_hw_random",
                settings=FixedHardwareSettings(mappings_per_layer=mappings_per_layer,
                                               seed=seed),
                hardware=baseline.config, cache=cache)
            per_accelerator[baseline.name] = outcome.best_edp
        dosa = run_search(
            workload, "dosa",
            settings=DosaSettings(num_start_points=num_start_points, gd_steps=gd_steps,
                                  rounding_period=rounding_period, seed=seed),
            cache=cache)
        per_accelerator["Gemmini DOSA"] = dosa.best_edp
        results[workload] = per_accelerator
    return results


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig8_baseline_accelerators",
        headers=["workload", "accelerator", "EDP", "normalized to Gemmini DOSA"],
    )
    for workload, per_accelerator in results.items():
        dosa_edp = per_accelerator["Gemmini DOSA"]
        for accelerator, edp in per_accelerator.items():
            output.add_row(workload, accelerator, f"{edp:.4e}", round(edp / dosa_edp, 2))
    output.add_note("Paper (Fig. 8): DOSA-optimized Gemmini-TL outperforms every expert "
                    "baseline by more than 2x EDP on all four workloads.")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
