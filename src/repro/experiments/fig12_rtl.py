"""Figure 12 and Table 7: Gemmini-RTL DSE with the three latency models.

PE dimensions are fixed to 16x16 (matching the default Gemmini-RTL build) and
DOSA searches only buffer sizes and mappings.  For each latency model the best
candidate is selected with that model's latency prediction, then every final
design is scored with the RTL simulator's latency (and the analytical energy
model), mirroring the paper's FireSim + Accelergy evaluation.  The paper
reports EDP improvements over the hand-tuned Gemmini default of 1.48x
(analytical), 1.66x (DNN-only) and 1.82x (analytical+DNN), and Table 7 lists
the buffer sizes chosen by the combined model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.experiments.common import ExperimentOutput
from repro.experiments.fig10_11_surrogate import GEMMINI_RTL_HARDWARE
from repro.mapping.cosa import cosa_mapping
from repro.mapping.mapping import Mapping
from repro.surrogate.combined import (
    AnalyticalLatencyModel,
    CombinedLatencyModel,
    DnnOnlyLatencyModel,
    LatencyModel,
)
from repro.surrogate.dataset import generate_dataset
from repro.surrogate.dnn_model import TrainingSettings
from repro.surrogate.rtl_sim import RtlSimulator
from repro.timeloop.model import evaluate_network_mappings
from repro.utils.math_utils import geometric_mean
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES, get_network


@dataclass
class RtlDesignPoint:
    """A final design evaluated with RTL latency and analytical energy."""

    workload: str
    model_name: str
    hardware: HardwareConfig
    mappings: list[Mapping]
    edp: float


def rtl_edp(mappings: list[Mapping], hardware: HardwareConfig,
            simulator: RtlSimulator) -> float:
    """EDP with RTL-simulated latency and analytical (Accelergy-style) energy."""
    spec = GemminiSpec(hardware)
    analytical = evaluate_network_mappings(mappings, spec, check_validity=False)
    total_latency = sum(
        simulator.latency(mapping, hardware) * mapping.layer.repeats for mapping in mappings
    )
    return total_latency * analytical.total_energy


def default_design_edp(workload: str, simulator: RtlSimulator) -> float:
    """The hand-tuned Gemmini default: 16x16 PEs, 32/128 KB buffers, CoSA-style mapper."""
    network = get_network(workload)
    mappings = [cosa_mapping(layer, GEMMINI_RTL_HARDWARE) for layer in network.layers]
    return rtl_edp(mappings, GEMMINI_RTL_HARDWARE, simulator)


def search_with_latency_model(
    workload: str,
    latency_model: LatencyModel,
    settings: DosaSettings,
    simulator: RtlSimulator,
) -> RtlDesignPoint:
    """Run DOSA with candidate selection driven by ``latency_model``."""
    network = get_network(workload)

    def adjuster(mappings: list[Mapping], hardware: HardwareConfig) -> list[float]:
        return [latency_model.latency(mapping, hardware) for mapping in mappings]

    searcher = DosaSearcher(network, settings, latency_adjuster=adjuster)
    result = searcher.search()
    edp = rtl_edp(result.best.mappings, result.best.hardware, simulator)
    return RtlDesignPoint(
        workload=workload,
        model_name=latency_model.name,
        hardware=result.best.hardware,
        mappings=result.best.mappings,
        edp=edp,
    )


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    samples_per_layer: int = 12,
    training_epochs: int = 600,
    num_start_points: int = 3,
    gd_steps: int = 600,
    rounding_period: int = 300,
    seed: SeedLike = 0,
) -> dict[str, object]:
    """Full Gemmini-RTL study: train predictors, search, score with the RTL sim."""
    simulator = RtlSimulator()
    from repro.workloads.networks import training_networks

    dataset = generate_dataset(training_networks(), GEMMINI_RTL_HARDWARE,
                               samples_per_layer=samples_per_layer,
                               simulator=simulator, seed=seed)
    training_settings = TrainingSettings(epochs=training_epochs, seed=0)
    dnn_only = DnnOnlyLatencyModel(seed=0)
    dnn_only.train(dataset, training_settings)
    combined = CombinedLatencyModel(seed=0)
    combined.train(dataset, training_settings)
    models: list[LatencyModel] = [AnalyticalLatencyModel(), dnn_only, combined]

    defaults: dict[str, float] = {}
    designs: list[RtlDesignPoint] = []
    for workload in workloads:
        defaults[workload] = default_design_edp(workload, simulator)
        for model in models:
            settings = DosaSettings(
                num_start_points=num_start_points,
                gd_steps=gd_steps,
                rounding_period=rounding_period,
                fixed_pe_dim=GEMMINI_RTL_HARDWARE.pe_dim,
                seed=seed,
            )
            designs.append(search_with_latency_model(workload, model, settings, simulator))
    return {"defaults": defaults, "designs": designs}


def summarize(results: dict[str, object]) -> dict[str, float]:
    """Geomean EDP improvement over the Gemmini default, per latency model."""
    defaults: dict[str, float] = results["defaults"]
    designs: list[RtlDesignPoint] = results["designs"]
    improvements: dict[str, list[float]] = {}
    for design in designs:
        improvements.setdefault(design.model_name, []).append(
            defaults[design.workload] / design.edp)
    return {name: geometric_mean(values) for name, values in improvements.items()}


def table7_rows(results: dict[str, object]) -> list[list[object]]:
    """Buffer sizes selected with the combined model (Table 7)."""
    rows: list[list[object]] = [["Gemmini Default", GEMMINI_RTL_HARDWARE.accumulator_kb,
                                 GEMMINI_RTL_HARDWARE.scratchpad_kb]]
    for design in results["designs"]:
        if design.model_name == "analytical_dnn":
            rows.append([design.workload, design.hardware.accumulator_kb,
                         design.hardware.scratchpad_kb])
    return rows


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig12_rtl_optimization",
        headers=["workload", "latency model", "EDP (RTL latency)", "improvement vs default"],
    )
    defaults = results["defaults"]
    for design in results["designs"]:
        output.add_row(design.workload, design.model_name, f"{design.edp:.4e}",
                       round(defaults[design.workload] / design.edp, 3))
    summary = summarize(results)
    output.add_note("Paper (Fig. 12): geomean improvement 1.48x analytical, 1.66x DNN-only, "
                    "1.82x analytical+DNN. This run: "
                    + ", ".join(f"{k} {v:.2f}x" for k, v in summary.items()))
    output.save()

    table7 = ExperimentOutput(
        name="table7_buffer_sizes",
        headers=["configuration", "accumulator (KB)", "scratchpad (KB)"],
    )
    for row in table7_rows(results):
        table7.add_row(*row)
    table7.add_note("Paper (Table 7): DOSA sizes both buffers well above the 32/128 KB "
                    "defaults, with scratchpad:accumulator ratios between 1.28 and 4.")
    table7.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
