"""Figures 10 and 11: accuracy of the Gemmini-RTL latency models.

Three latency models are compared by Spearman rank correlation against the
(simulated) RTL latency:

* Figure 10 — on a held-out split of random mappings of the *training*
  workloads (paper: analytical 0.87, DNN-only 0.84, combined 0.92),
* Figure 11 — on DOSA-generated mappings of the *target* workloads, which the
  DNN never saw (paper: 0.97 / 0.79 / 0.97 — the DNN-only model generalizes
  worst, the combined model stays accurate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.experiments.common import ExperimentOutput
from repro.surrogate.combined import (
    AnalyticalLatencyModel,
    CombinedLatencyModel,
    DnnOnlyLatencyModel,
    evaluate_model_accuracy,
)
from repro.surrogate.dataset import LatencySample, generate_dataset, train_test_split
from repro.surrogate.dnn_model import TrainingSettings
from repro.surrogate.features import encode_features
from repro.surrogate.rtl_sim import RtlSimulator
from repro.utils.rng import SeedLike
from repro.workloads.networks import get_network, training_networks

GEMMINI_RTL_HARDWARE = HardwareConfig(pe_dim=16, accumulator_kb=32, scratchpad_kb=128)


@dataclass
class SurrogateStudy:
    """Trained models plus their accuracy on both evaluation datasets."""

    analytical: AnalyticalLatencyModel
    dnn_only: DnnOnlyLatencyModel
    combined: CombinedLatencyModel
    random_mapping_accuracy: dict[str, float]
    dosa_mapping_accuracy: dict[str, float]


def build_dosa_samples(
    workloads: tuple[str, ...],
    simulator: RtlSimulator,
    gd_steps: int,
    rounding_period: int,
    seed: SeedLike,
) -> list[LatencySample]:
    """DOSA-generated mappings of the target workloads, measured on the RTL sim."""
    samples: list[LatencySample] = []
    for workload in workloads:
        network = get_network(workload)
        settings = DosaSettings(num_start_points=1, gd_steps=gd_steps,
                                rounding_period=rounding_period,
                                fixed_pe_dim=GEMMINI_RTL_HARDWARE.pe_dim, seed=seed)
        result = DosaSearcher(network, settings).search()
        for mapping in result.best.mappings:
            from repro.arch.gemmini import GemminiSpec
            from repro.timeloop.model import evaluate_mapping

            analytical = evaluate_mapping(mapping, GemminiSpec(GEMMINI_RTL_HARDWARE),
                                          check_validity=False).latency_cycles
            samples.append(LatencySample(
                mapping=mapping,
                hardware=GEMMINI_RTL_HARDWARE,
                features=encode_features(mapping, GEMMINI_RTL_HARDWARE),
                analytical_latency=analytical,
                rtl_latency=simulator.latency(mapping, GEMMINI_RTL_HARDWARE),
            ))
    return samples


def run(
    samples_per_layer: int = 12,
    training_epochs: int = 600,
    dosa_workloads: tuple[str, ...] = ("resnet50", "bert"),
    dosa_gd_steps: int = 200,
    dosa_rounding_period: int = 100,
    seed: SeedLike = 0,
) -> SurrogateStudy:
    """Train the predictors and score them on both datasets."""
    simulator = RtlSimulator()
    dataset = generate_dataset(training_networks(), GEMMINI_RTL_HARDWARE,
                               samples_per_layer=samples_per_layer,
                               simulator=simulator, seed=seed)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=seed)

    training_settings = TrainingSettings(epochs=training_epochs, seed=0)
    analytical = AnalyticalLatencyModel()
    dnn_only = DnnOnlyLatencyModel(seed=0)
    dnn_only.train(train, training_settings)
    combined = CombinedLatencyModel(seed=0)
    combined.train(train, training_settings)

    random_accuracy = {
        model.name: evaluate_model_accuracy(model, test)
        for model in (analytical, dnn_only, combined)
    }

    dosa_samples = build_dosa_samples(dosa_workloads, simulator, dosa_gd_steps,
                                      dosa_rounding_period, seed)
    dosa_accuracy = {
        model.name: evaluate_model_accuracy(model, dosa_samples)
        for model in (analytical, dnn_only, combined)
    }
    return SurrogateStudy(
        analytical=analytical,
        dnn_only=dnn_only,
        combined=combined,
        random_mapping_accuracy=random_accuracy,
        dosa_mapping_accuracy=dosa_accuracy,
    )


def main(**kwargs) -> ExperimentOutput:
    study = run(**kwargs)
    output = ExperimentOutput(
        name="fig10_11_latency_model_accuracy",
        headers=["dataset", "analytical", "dnn_only", "analytical_dnn"],
    )
    output.add_row("random mappings (Fig. 10)",
                   round(study.random_mapping_accuracy["analytical"], 3),
                   round(study.random_mapping_accuracy["dnn_only"], 3),
                   round(study.random_mapping_accuracy["analytical_dnn"], 3))
    output.add_row("DOSA mappings (Fig. 11)",
                   round(study.dosa_mapping_accuracy["analytical"], 3),
                   round(study.dosa_mapping_accuracy["dnn_only"], 3),
                   round(study.dosa_mapping_accuracy["analytical_dnn"], 3))
    output.add_note("Paper: Fig. 10 Spearman 0.87 / 0.84 / 0.92; Fig. 11 0.97 / 0.79 / 0.97.")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
