"""Figure 7 + Section 6.3: DOSA vs random search vs Bayesian optimization.

For each target workload the three co-search strategies run through the
unified search registry with a comparable sample budget, and the unified
best-EDP-so-far traces are recorded.  The whole grid — workloads x the three
strategies — is declared as one :class:`~repro.campaign.spec.CampaignSpec`
and executed through the campaign scheduler, the same path as
``repro.cli campaign run``.  The paper reports a geometric-mean improvement
of 2.80x over random search and 12.59x over BB-BO after roughly 10,000
samples, with BB-BO leading below ~1000 samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignSpec, run_campaign
from repro.experiments.common import (
    COSEARCH_STRATEGIES,
    ExperimentOutput,
    cosearch_campaign_spec,
)
from repro.search.api import SearchBudget, SearchOutcome
from repro.utils.math_utils import geometric_mean
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES


@dataclass
class CoSearchResult:
    """Unified outcome per strategy for one workload."""

    workload: str
    outcomes: dict[str, SearchOutcome]

    def edp(self, strategy: str) -> float:
        return self.outcomes[strategy].best_edp

    def trace(self, strategy: str) -> list[tuple[int, float]]:
        return self.outcomes[strategy].trace.as_pairs()

    # Convenience accessors used by the benchmark suite.
    @property
    def dosa_edp(self) -> float:
        return self.edp("dosa")

    @property
    def random_edp(self) -> float:
        return self.edp("random")

    @property
    def bayesian_edp(self) -> float:
        return self.edp("bayesian")

    @property
    def dosa_trace(self) -> list[tuple[int, float]]:
        return self.trace("dosa")

    @property
    def random_trace(self) -> list[tuple[int, float]]:
        return self.trace("random")

    @property
    def bayesian_trace(self) -> list[tuple[int, float]]:
        return self.trace("bayesian")

    @property
    def dosa_vs_random(self) -> float:
        return self.random_edp / self.dosa_edp

    @property
    def dosa_vs_bayesian(self) -> float:
        return self.bayesian_edp / self.dosa_edp


def campaign_spec(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    random_hardware_designs: int = 10,
    random_mappings_per_layer: int = 1000,
    bo_training_hardware: int = 100,
    bo_mappings_per_layer: int = 100,
    bo_candidates: int = 1000,
    budget: SearchBudget | int | None = None,
    seed: SeedLike = 0,
) -> CampaignSpec:
    """The Figure 7 grid as a campaign spec (paper-scale defaults)."""
    strategy_overrides = {
        "dosa": {"num_start_points": num_start_points, "gd_steps": gd_steps,
                 "rounding_period": rounding_period},
        "random": {"num_hardware_designs": random_hardware_designs,
                   "mappings_per_layer": random_mappings_per_layer},
        "bayesian": {"num_training_hardware": bo_training_hardware,
                     "mappings_per_layer": bo_mappings_per_layer,
                     "num_candidates": bo_candidates},
    }
    assert tuple(strategy_overrides) == COSEARCH_STRATEGIES
    return cosearch_campaign_spec("fig7_cosearch", workloads,
                                  strategy_overrides, seed=seed, budget=budget)


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    random_hardware_designs: int = 10,
    random_mappings_per_layer: int = 1000,
    bo_training_hardware: int = 100,
    bo_mappings_per_layer: int = 100,
    bo_candidates: int = 1000,
    budget: SearchBudget | int | None = None,
    seed: SeedLike = 0,
    n_workers: int | None = None,
) -> list[CoSearchResult]:
    """Paper-scale defaults; pass smaller values (or a budget) for quick runs.

    ``n_workers`` shards the campaign's independent jobs across processes
    (results are identical; only wall-clock time changes).
    """
    spec = campaign_spec(
        workloads=workloads, num_start_points=num_start_points,
        gd_steps=gd_steps, rounding_period=rounding_period,
        random_hardware_designs=random_hardware_designs,
        random_mappings_per_layer=random_mappings_per_layer,
        bo_training_hardware=bo_training_hardware,
        bo_mappings_per_layer=bo_mappings_per_layer,
        bo_candidates=bo_candidates, budget=budget, seed=seed)
    result = run_campaign(spec, n_workers=n_workers)
    job_outcomes = result.complete_outcomes()  # propagates interrupts cleanly
    outcomes = {(job.workload, job.variant.name): job_outcomes[job.job_id]
                for job in spec.jobs()}
    return [CoSearchResult(
                workload=workload,
                outcomes={strategy: outcomes[(workload, strategy)]
                          for strategy in COSEARCH_STRATEGIES})
            for workload in workloads]


def summarize(results: list[CoSearchResult]) -> dict[str, float]:
    """Geometric-mean improvements of DOSA over the two baselines (Section 6.3)."""
    return {
        "geomean_vs_random": geometric_mean([r.dosa_vs_random for r in results]),
        "geomean_vs_bayesian": geometric_mean([r.dosa_vs_bayesian for r in results]),
    }


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig7_cosearch",
        headers=["workload", "DOSA EDP", "Random EDP", "BB-BO EDP",
                 "DOSA vs Random", "DOSA vs BB-BO"],
    )
    for result in results:
        output.add_row(result.workload, f"{result.dosa_edp:.4e}", f"{result.random_edp:.4e}",
                       f"{result.bayesian_edp:.4e}", round(result.dosa_vs_random, 3),
                       round(result.dosa_vs_bayesian, 3))
    summary = summarize(results)
    output.add_note(f"Geomean improvement vs random: {summary['geomean_vs_random']:.2f}x "
                    f"(paper: 2.80x); vs BB-BO: {summary['geomean_vs_bayesian']:.2f}x "
                    f"(paper: 12.59x).")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
