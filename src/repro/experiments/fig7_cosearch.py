"""Figure 7 + Section 6.3: DOSA vs random search vs Bayesian optimization.

For each target workload the three searchers run with a comparable sample
budget and the best-EDP-so-far traces are recorded.  The paper reports a
geometric-mean improvement of 2.80x over random search and 12.59x over BB-BO
after roughly 10,000 samples, with BB-BO leading below ~1000 samples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.experiments.common import ExperimentOutput
from repro.search.bayesian import BayesianSearcher, BayesianSettings
from repro.search.random_search import RandomSearcher, RandomSearchSettings
from repro.utils.math_utils import geometric_mean
from repro.utils.rng import SeedLike
from repro.workloads.networks import TARGET_WORKLOAD_NAMES, get_network


@dataclass
class CoSearchResult:
    """Best EDP and trace per method for one workload."""

    workload: str
    dosa_edp: float
    random_edp: float
    bayesian_edp: float
    dosa_trace: list[tuple[int, float]]
    random_trace: list[tuple[int, float]]
    bayesian_trace: list[tuple[int, float]]

    @property
    def dosa_vs_random(self) -> float:
        return self.random_edp / self.dosa_edp

    @property
    def dosa_vs_bayesian(self) -> float:
        return self.bayesian_edp / self.dosa_edp


def run_workload(
    workload: str,
    dosa_settings: DosaSettings,
    random_settings: RandomSearchSettings,
    bayesian_settings: BayesianSettings,
) -> CoSearchResult:
    """Run the three searchers on one workload and collect traces."""
    network = get_network(workload)
    dosa = DosaSearcher(network, dosa_settings).search()
    random_result = RandomSearcher(network, random_settings).search()
    bayesian_result = BayesianSearcher(network, bayesian_settings).search()
    return CoSearchResult(
        workload=workload,
        dosa_edp=dosa.best_edp,
        random_edp=random_result.best_edp,
        bayesian_edp=bayesian_result.best_edp,
        dosa_trace=[(p.samples, p.best_edp) for p in dosa.trace.points],
        random_trace=list(zip(random_result.trace.samples, random_result.trace.best_edp)),
        bayesian_trace=list(zip(bayesian_result.trace.samples, bayesian_result.trace.best_edp)),
    )


def run(
    workloads: tuple[str, ...] = TARGET_WORKLOAD_NAMES,
    num_start_points: int = 7,
    gd_steps: int = 1490,
    rounding_period: int = 500,
    random_hardware_designs: int = 10,
    random_mappings_per_layer: int = 1000,
    bo_training_hardware: int = 100,
    bo_mappings_per_layer: int = 100,
    bo_candidates: int = 1000,
    seed: SeedLike = 0,
) -> list[CoSearchResult]:
    """Paper-scale defaults; pass smaller values for quick runs."""
    results = []
    for workload in workloads:
        results.append(run_workload(
            workload,
            DosaSettings(num_start_points=num_start_points, gd_steps=gd_steps,
                         rounding_period=rounding_period, seed=seed),
            RandomSearchSettings(num_hardware_designs=random_hardware_designs,
                                 mappings_per_layer=random_mappings_per_layer, seed=seed),
            BayesianSettings(num_training_hardware=bo_training_hardware,
                             mappings_per_layer=bo_mappings_per_layer,
                             num_candidates=bo_candidates, seed=seed),
        ))
    return results


def summarize(results: list[CoSearchResult]) -> dict[str, float]:
    """Geometric-mean improvements of DOSA over the two baselines (Section 6.3)."""
    return {
        "geomean_vs_random": geometric_mean([r.dosa_vs_random for r in results]),
        "geomean_vs_bayesian": geometric_mean([r.dosa_vs_bayesian for r in results]),
    }


def main(**kwargs) -> ExperimentOutput:
    results = run(**kwargs)
    output = ExperimentOutput(
        name="fig7_cosearch",
        headers=["workload", "DOSA EDP", "Random EDP", "BB-BO EDP",
                 "DOSA vs Random", "DOSA vs BB-BO"],
    )
    for result in results:
        output.add_row(result.workload, f"{result.dosa_edp:.4e}", f"{result.random_edp:.4e}",
                       f"{result.bayesian_edp:.4e}", round(result.dosa_vs_random, 3),
                       round(result.dosa_vs_bayesian, 3))
    summary = summarize(results)
    output.add_note(f"Geomean improvement vs random: {summary['geomean_vs_random']:.2f}x "
                    f"(paper: 2.80x); vs BB-BO: {summary['geomean_vs_bayesian']:.2f}x "
                    f"(paper: 12.59x).")
    output.save()
    return output


if __name__ == "__main__":
    print(main().to_text())
