"""Experiment harnesses reproducing every table and figure of the evaluation.

Each module exposes a ``run(...)`` function returning the experiment's numbers
as plain dictionaries/lists (so tests and benchmarks can call it at reduced
scale) and a ``main()`` that runs it at a paper-comparable scale and writes
CSV plus an aligned text table under ``output_dir/``.

=======================  =======================================================
Module                   Paper result
=======================  =======================================================
``fig4_correlation``     Fig. 4  — differentiable model vs reference model error
``fig6_loop_ordering``   Fig. 6  — loop-ordering strategies (baseline/iterate/softmax)
``fig7_cosearch``        Fig. 7  — DOSA vs random search vs Bayesian optimization
``fig8_baselines``       Fig. 8  — DOSA-optimized Gemmini vs expert accelerators
``fig9_separation``      Fig. 9  — attribution of hardware vs mapping gains
``fig10_11_surrogate``   Fig. 10/11 — latency-model accuracy (Spearman correlation)
``fig12_rtl``            Fig. 12 + Table 7 — Gemmini-RTL DSE with learned models
=======================  =======================================================
"""

from repro.experiments.common import ExperimentOutput, default_output_dir, write_csv

__all__ = ["ExperimentOutput", "default_output_dir", "write_csv"]
