"""Two-loop Bayesian-optimization baseline (BB-BO).

Mirrors the setup of Section 6.1 (hyperparameters chosen after Spotlight): a
Gaussian-process surrogate is trained on randomly sampled hardware designs,
each paired with randomly sampled per-layer mappings evaluated on the
reference model; the trained surrogate then scores a larger pool of candidate
hardware/mapping combinations, and the combination with the best predicted
whole-network EDP is evaluated for real.

Features given to the GP are log-scaled hardware parameters, layer dimensions
and mapping summary statistics (spatial parallelism, per-level tile sizes),
which is the same information a black-box optimizer would observe.

Reference evaluations (training-data collection and the final candidate
scoring) run through the :class:`~repro.eval.engine.EvaluationEngine`, so
repeated candidates hit the cache and batches are vectorized / optionally
spread over ``n_workers`` processes; sample accounting is unchanged.

Registered as strategy ``"bayesian"`` in the unified search API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.components import LEVEL_ACCUMULATOR, LEVEL_SCRATCHPAD
from repro.arch.config import HardwareConfig, random_hardware_config
from repro.eval.cache import EvaluationCache
from repro.eval.engine import EvaluationEngine
from repro.mapping.constraints import tensor_tile_words
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping_for_hardware
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchOutcome,
    SearchSession,
    register_searcher,
)
from repro.search.batching import best_of_random_mappings
from repro.search.gp import GaussianProcessRegressor
from repro.timeloop.model import NetworkPerformance, PerformanceResult, as_spec
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.layer import DIMENSIONS, LayerDims
from repro.workloads.networks import Network


@dataclass
class BayesianSettings:
    """Paper defaults: 100 hardware designs, 100 mappings/layer, 1000 candidates."""

    num_training_hardware: int = 100
    mappings_per_layer: int = 100
    num_candidates: int = 1000
    candidate_mappings_per_layer: int = 20
    max_gp_points: int = 2000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if min(self.num_training_hardware, self.mappings_per_layer,
               self.num_candidates, self.candidate_mappings_per_layer) < 1:
            raise ValueError("search settings must be positive")


def mapping_features(hardware: HardwareConfig, layer: LayerDims, mapping: Mapping) -> np.ndarray:
    """Feature vector describing a (hardware, layer, mapping) triple."""
    hardware_features = [
        np.log2(hardware.pe_dim),
        np.log2(hardware.accumulator_kb),
        np.log2(hardware.scratchpad_kb),
    ]
    layer_features = [np.log2(layer.dim(d)) for d in DIMENSIONS]
    mapping_features_ = [
        np.log2(max(mapping.spatial_product(), 1.0)),
        np.log2(max(tensor_tile_words(mapping, LEVEL_ACCUMULATOR, "O"), 1.0)),
        np.log2(max(tensor_tile_words(mapping, LEVEL_SCRATCHPAD, "W"), 1.0)),
        np.log2(max(tensor_tile_words(mapping, LEVEL_SCRATCHPAD, "I"), 1.0)),
        np.log2(max(mapping.temporal[3, :].prod(), 1.0)),
    ]
    return np.array(hardware_features + layer_features + mapping_features_, dtype=float)


@register_searcher("bayesian")
class BayesianSearcher:
    """Gaussian-process-guided two-loop hardware/mapping co-search."""

    settings_type = BayesianSettings

    def __init__(self, network: Network, settings: BayesianSettings | None = None,
                 n_workers: int | None = None,
                 cache: EvaluationCache | None = None) -> None:
        self.network = network
        self.settings = settings or BayesianSettings()
        self.n_workers = n_workers
        self.cache = cache

    # ------------------------------------------------------------------ #
    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        with EvaluationEngine(cache=self.cache, n_workers=self.n_workers) as engine:
            return self._search(engine, budget=budget, callbacks=callbacks)

    def _search(self, engine: EvaluationEngine,
                budget: SearchBudget | int | None = None,
                callbacks=None) -> SearchOutcome:
        settings = self.settings
        rng = make_rng(settings.seed)
        session = SearchSession("bayesian", budget=budget, callbacks=callbacks,
                                settings=settings, network=self.network)
        with session.absorb_interrupt():
            self._run_phases(session, engine, rng)
        return session.finish()

    def _run_phases(self, session: SearchSession, engine: EvaluationEngine,
                    rng) -> None:
        settings = self.settings

        # ---- Phase 1: collect training data (counts as samples). --------- #
        features: list[np.ndarray] = []
        targets: list[float] = []

        for _ in range(settings.num_training_hardware):
            if session.exhausted():
                break
            hardware = random_hardware_config(seed=rng)
            spec = as_spec(hardware)
            chosen: list[Mapping] = []
            per_layer: list[PerformanceResult] = []
            total_latency = 0.0
            total_energy = 0.0
            feasible = True
            for layer in self.network.layers:

                def record_training_point(mapping, result, layer=layer):
                    features.append(mapping_features(hardware, layer, mapping))
                    targets.append(np.log10(result.edp * max(layer.repeats, 1)))

                best_layer, best_layer_result = best_of_random_mappings(
                    session, engine, spec,
                    attempts=settings.mappings_per_layer,
                    generate=lambda layer=layer: random_mapping_for_hardware(
                        layer, hardware, seed=rng, max_attempts=10),
                    on_evaluated=record_training_point,
                )
                if best_layer is None:
                    feasible = False
                    break
                chosen.append(best_layer)
                per_layer.append(best_layer_result)
                total_latency += best_layer_result.latency_cycles * layer.repeats
                total_energy += best_layer_result.energy * layer.repeats
            if feasible:
                session.offer(CandidateDesign(
                    hardware=hardware,
                    mappings=chosen,
                    performance=NetworkPerformance(total_latency=total_latency,
                                                   total_energy=total_energy,
                                                   per_layer=tuple(per_layer)),
                ))
            else:
                session.checkpoint()

        if not features or session.exhausted():
            return

        # ---- Phase 2: fit the GP surrogate. ------------------------------ #
        feature_matrix = np.asarray(features)
        target_vector = np.asarray(targets)
        if len(feature_matrix) > settings.max_gp_points:
            keep = rng.choice(len(feature_matrix), size=settings.max_gp_points, replace=False)
            feature_matrix = feature_matrix[keep]
            target_vector = target_vector[keep]
        gp = GaussianProcessRegressor(length_scale=2.0, noise=1e-2)
        gp.fit(feature_matrix, target_vector)

        # ---- Phase 3: pick the best predicted candidate and evaluate it. -- #
        best_predicted: tuple[float, HardwareConfig, list[Mapping]] | None = None
        for _ in range(settings.num_candidates):
            # GP scoring spends no reference samples but does take wall time,
            # so the wall-clock budget still applies here.
            if session.exhausted():
                break
            hardware = random_hardware_config(seed=rng)
            candidate_mappings: list[Mapping] = []
            predicted_total = 0.0
            feasible = True
            for layer in self.network.layers:
                options = []
                option_features = []
                for _ in range(settings.candidate_mappings_per_layer):
                    mapping = random_mapping_for_hardware(layer, hardware, seed=rng,
                                                          max_attempts=5)
                    if mapping is not None:
                        options.append(mapping)
                        option_features.append(mapping_features(hardware, layer, mapping))
                if not options:
                    feasible = False
                    break
                predictions = gp.predict(np.asarray(option_features))
                best_index = int(np.argmin(predictions))
                candidate_mappings.append(options[best_index])
                predicted_total += float(predictions[best_index])
            if not feasible:
                continue
            if best_predicted is None or predicted_total < best_predicted[0]:
                best_predicted = (predicted_total, hardware, candidate_mappings)

        if best_predicted is not None:
            _, hardware, mappings = best_predicted
            spec = as_spec(hardware)
            results = engine.evaluate_many(mappings, spec)
            session.spend(len(results))
            per_layer = []
            total_latency = 0.0
            total_energy = 0.0
            for layer, result in zip(self.network.layers, results):
                per_layer.append(result)
                total_latency += result.latency_cycles * layer.repeats
                total_energy += result.energy * layer.repeats
            session.offer(CandidateDesign(
                hardware=hardware,
                mappings=mappings,
                performance=NetworkPerformance(total_latency=total_latency,
                                               total_energy=total_energy,
                                               per_layer=tuple(per_layer)),
            ))
