"""Black-box search baselines compared against DOSA (paper Section 6.3).

* random two-loop search: random hardware designs, each explored with many
  random mappings per layer,
* Bayesian-optimization two-loop search: a Gaussian-process surrogate over
  hardware/mapping features with expected-improvement acquisition
  (hyperparameters follow the Spotlight-style setup described in Section 6.1),
* a random-pruned mapping search for a *fixed* hardware design, used to give
  the expert baseline accelerators of Figure 8 well-tuned mappings.
"""

from repro.search.results import BestSoFarTrace, SearchOutcome
from repro.search.random_search import RandomSearcher, RandomSearchSettings
from repro.search.random_mapper_search import best_random_mappings_for_hardware
from repro.search.gp import GaussianProcessRegressor, expected_improvement
from repro.search.bayesian import BayesianSearcher, BayesianSettings

__all__ = [
    "BestSoFarTrace",
    "SearchOutcome",
    "RandomSearcher",
    "RandomSearchSettings",
    "best_random_mappings_for_hardware",
    "GaussianProcessRegressor",
    "expected_improvement",
    "BayesianSearcher",
    "BayesianSettings",
]
