"""Search strategies behind one API (paper Sections 5 and 6.3).

All strategies implement the :class:`repro.search.api.Searcher` protocol
(``search(budget, callbacks) -> SearchOutcome``) and are reachable through the
strategy registry:

* ``"dosa"`` — the differentiable one-loop search (:mod:`repro.core.optimizer`),
* ``"random"`` — random two-loop search: random hardware designs, each explored
  with many random mappings per layer,
* ``"bayesian"`` — Bayesian-optimization two-loop search: a Gaussian-process
  surrogate over hardware/mapping features (hyperparameters follow the
  Spotlight-style setup described in Section 6.1),
* ``"fixed_hw_random"`` — a random-pruned mapping search for a *fixed* hardware
  design, used to give the expert baseline accelerators of Figure 8 well-tuned
  mappings.

Use :func:`repro.optimize` (or :func:`repro.search.api.optimize`) as the
single entry point.  Every strategy queries the reference model through the
:class:`repro.eval.EvaluationEngine` (cached + batched, optionally parallel
via the ``n_workers`` keyword of ``optimize``/the searcher constructors);
results are bit-identical to direct evaluation, only faster.
"""

from repro.search.api import (
    CandidateDesign,
    ProgressCallback,
    SearchBudget,
    SearchCallback,
    Searcher,
    SearchOutcome,
    SearchSession,
    SearchTrace,
    TracePoint,
    available_strategies,
    create_searcher,
    get_searcher,
    optimize,
    register_searcher,
)
from repro.search.results import BestSoFarTrace
from repro.search.random_search import RandomSearcher, RandomSearchSettings
from repro.search.random_mapper_search import (
    FixedHardwareMapperSearcher,
    FixedHardwareSettings,
    best_random_mappings_for_hardware,
)
from repro.search.gp import GaussianProcessRegressor, expected_improvement
from repro.search.bayesian import BayesianSearcher, BayesianSettings

__all__ = [
    "BestSoFarTrace",
    "CandidateDesign",
    "ProgressCallback",
    "SearchBudget",
    "SearchCallback",
    "Searcher",
    "SearchOutcome",
    "SearchSession",
    "SearchTrace",
    "TracePoint",
    "available_strategies",
    "create_searcher",
    "get_searcher",
    "optimize",
    "register_searcher",
    "RandomSearcher",
    "RandomSearchSettings",
    "FixedHardwareMapperSearcher",
    "FixedHardwareSettings",
    "best_random_mappings_for_hardware",
    "GaussianProcessRegressor",
    "expected_improvement",
    "BayesianSearcher",
    "BayesianSettings",
]
