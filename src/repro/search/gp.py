"""Gaussian-process regression and the expected-improvement acquisition.

A small exact GP (RBF kernel with automatic-relevance-style shared length
scale, Cholesky solve via SciPy) used as the surrogate of the Bayesian
optimization baseline.  Targets are modelled in log space since layer EDPs
span many orders of magnitude.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

# Floor for the posterior variance before the sqrt.  Near-duplicate training
# points make the Cholesky-solved variance numerically negative (the exact
# value is ~0, the round-off error is ~ -1e-9); without the clamp the sqrt
# returns NaN and a single poisoned std silently zeroes expected improvement
# for every candidate scored in the same batch.
_MIN_POSTERIOR_VARIANCE = 1e-12


class GaussianProcessRegressor:
    """Exact GP regression with an RBF kernel and observation noise."""

    def __init__(self, length_scale: float = 1.0, signal_variance: float = 1.0,
                 noise: float = 1e-4) -> None:
        if length_scale <= 0 or signal_variance <= 0 or noise <= 0:
            raise ValueError("kernel hyperparameters must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise = noise
        self._train_x: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._cho = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dist = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
        return self.signal_variance * np.exp(-0.5 * sq_dist / self.length_scale**2)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GaussianProcessRegressor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if features.ndim != 2 or len(features) != len(targets):
            raise ValueError("features must be 2-D and aligned with targets")
        self._x_mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._x_std = np.where(std > 1e-12, std, 1.0)
        x = (features - self._x_mean) / self._x_std
        self._y_mean = float(targets.mean())
        self._y_std = float(targets.std()) or 1.0
        y = (targets - self._y_mean) / self._y_std
        gram = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._cho = cho_factor(gram, lower=True)
        self._alpha = cho_solve(self._cho, y)
        self._train_x = x
        return self

    def predict(self, features: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at ``features``."""
        if self._train_x is None:
            raise RuntimeError("predict called before fit")
        features = np.asarray(features, dtype=float)
        x = (features - self._x_mean) / self._x_std
        cross = self._kernel(x, self._train_x)
        mean = cross @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = cho_solve(self._cho, cross.T)
        variance = self.signal_variance - np.einsum("ij,ji->i", cross, v)
        variance = np.maximum(variance, _MIN_POSTERIOR_VARIANCE)
        return mean, np.sqrt(variance) * self._y_std


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         minimize: bool = True, xi: float = 0.0) -> np.ndarray:
    """Expected improvement of candidates over the incumbent ``best``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = (best - mean - xi) if minimize else (mean - best - xi)
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)
