"""Random two-loop hardware/mapping co-search (the "Random" baseline).

Following Section 6.1: the baseline evaluates a number of random hardware
designs, and for each design samples a number of random valid mappings per
layer, keeping the best mapping per layer.  Every reference-model evaluation
counts as one sample, making the traces directly comparable to DOSA's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig, random_hardware_config
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping_for_hardware
from repro.search.results import BestSoFarTrace, SearchOutcome
from repro.timeloop.model import evaluate_mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


@dataclass
class RandomSearchSettings:
    """Paper defaults: 10 hardware designs x 1000 mappings per layer."""

    num_hardware_designs: int = 10
    mappings_per_layer: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_hardware_designs < 1 or self.mappings_per_layer < 1:
            raise ValueError("search settings must be positive")


class RandomSearcher:
    """Two-loop random search over hardware configs and mappings."""

    def __init__(self, network: Network, settings: RandomSearchSettings | None = None) -> None:
        self.network = network
        self.settings = settings or RandomSearchSettings()

    def search(self) -> SearchOutcome:
        settings = self.settings
        rng = make_rng(settings.seed)
        trace = BestSoFarTrace()
        samples = 0
        best_edp = float("inf")
        best_hardware: HardwareConfig | None = None
        best_mappings: list[Mapping] | None = None

        for _ in range(settings.num_hardware_designs):
            hardware = random_hardware_config(seed=rng)
            spec = GemminiSpec(hardware)
            chosen: list[Mapping] = []
            total_latency = 0.0
            total_energy = 0.0
            feasible = True
            for layer in self.network.layers:
                best_layer_edp = float("inf")
                best_layer = None
                best_layer_result = None
                for _ in range(settings.mappings_per_layer):
                    mapping = random_mapping_for_hardware(layer, hardware, seed=rng,
                                                          max_attempts=20)
                    if mapping is None:
                        continue
                    result = evaluate_mapping(mapping, spec)
                    samples += 1
                    layer_edp = result.edp
                    if layer_edp < best_layer_edp:
                        best_layer_edp = layer_edp
                        best_layer = mapping
                        best_layer_result = result
                if best_layer is None:
                    feasible = False
                    break
                chosen.append(best_layer)
                total_latency += best_layer_result.latency_cycles * layer.repeats
                total_energy += best_layer_result.energy * layer.repeats
            if not feasible:
                trace.record(samples, best_edp if best_edp < float("inf") else 1e30)
                continue
            network_edp = total_latency * total_energy
            if network_edp < best_edp:
                best_edp = network_edp
                best_hardware = hardware
                best_mappings = chosen
            trace.record(samples, best_edp)

        if best_hardware is None:
            raise RuntimeError("random search found no feasible design; "
                               "increase mappings_per_layer or hardware designs")
        return SearchOutcome(
            method="random",
            best_edp=best_edp,
            best_hardware=best_hardware,
            best_mappings=best_mappings,
            trace=trace,
        )
