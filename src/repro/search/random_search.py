"""Random two-loop hardware/mapping co-search (the "Random" baseline).

Following Section 6.1: the baseline evaluates a number of random hardware
designs, and for each design samples a number of random valid mappings per
layer, keeping the best mapping per layer.  Every reference-model evaluation
counts as one sample, making the traces directly comparable to DOSA's.

Registered as strategy ``"random"`` in the unified search API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import random_hardware_config
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping_for_hardware
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchOutcome,
    SearchSession,
    register_searcher,
)
from repro.timeloop.model import NetworkPerformance, PerformanceResult, evaluate_mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


@dataclass
class RandomSearchSettings:
    """Paper defaults: 10 hardware designs x 1000 mappings per layer."""

    num_hardware_designs: int = 10
    mappings_per_layer: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_hardware_designs < 1 or self.mappings_per_layer < 1:
            raise ValueError("search settings must be positive")


@register_searcher("random")
class RandomSearcher:
    """Two-loop random search over hardware configs and mappings."""

    settings_type = RandomSearchSettings

    def __init__(self, network: Network, settings: RandomSearchSettings | None = None) -> None:
        self.network = network
        self.settings = settings or RandomSearchSettings()

    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        settings = self.settings
        rng = make_rng(settings.seed)
        session = SearchSession("random", budget=budget, callbacks=callbacks,
                                settings=settings, network=self.network)

        for _ in range(settings.num_hardware_designs):
            if session.exhausted():
                break
            hardware = random_hardware_config(seed=rng)
            spec = GemminiSpec(hardware)
            chosen: list[Mapping] = []
            per_layer: list[PerformanceResult] = []
            total_latency = 0.0
            total_energy = 0.0
            feasible = True
            for layer in self.network.layers:
                best_layer = None
                best_layer_result = None
                for _ in range(settings.mappings_per_layer):
                    # Honor the budget, but keep the first design feasible:
                    # every layer gets at least one evaluated mapping.
                    if session.exhausted() and (best_layer is not None
                                                or session.best is not None):
                        break
                    mapping = random_mapping_for_hardware(layer, hardware, seed=rng,
                                                          max_attempts=20)
                    if mapping is None:
                        continue
                    result = evaluate_mapping(mapping, spec)
                    session.spend(1)
                    if best_layer_result is None or result.edp < best_layer_result.edp:
                        best_layer_result = result
                        best_layer = mapping
                if best_layer is None:
                    feasible = False
                    break
                chosen.append(best_layer)
                per_layer.append(best_layer_result)
                total_latency += best_layer_result.latency_cycles * layer.repeats
                total_energy += best_layer_result.energy * layer.repeats
            if not feasible:
                session.checkpoint()
                continue
            session.offer(CandidateDesign(
                hardware=hardware,
                mappings=chosen,
                performance=NetworkPerformance(total_latency=total_latency,
                                               total_energy=total_energy,
                                               per_layer=tuple(per_layer)),
            ))

        return session.finish()
