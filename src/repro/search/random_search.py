"""Random two-loop hardware/mapping co-search (the "Random" baseline).

Following Section 6.1: the baseline evaluates a number of random hardware
designs, and for each design samples a number of random valid mappings per
layer, keeping the best mapping per layer.  Every reference-model evaluation
counts as one sample, making the traces directly comparable to DOSA's.

Reference evaluations run through the :class:`~repro.eval.engine
.EvaluationEngine` (per-design candidate batches are vectorized, exact
repeats are served from cache, and ``n_workers`` enables a process pool);
sample accounting and seeded candidate selection are unchanged.

Registered as strategy ``"random"`` in the unified search API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import random_hardware_config
from repro.eval.cache import EvaluationCache
from repro.eval.engine import EvaluationEngine
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping_for_hardware
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchOutcome,
    SearchSession,
    register_searcher,
)
from repro.search.batching import best_of_random_mappings
from repro.timeloop.model import NetworkPerformance, PerformanceResult, as_spec
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


@dataclass
class RandomSearchSettings:
    """Paper defaults: 10 hardware designs x 1000 mappings per layer."""

    num_hardware_designs: int = 10
    mappings_per_layer: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.num_hardware_designs < 1 or self.mappings_per_layer < 1:
            raise ValueError("search settings must be positive")


@register_searcher("random")
class RandomSearcher:
    """Two-loop random search over hardware configs and mappings."""

    settings_type = RandomSearchSettings

    def __init__(self, network: Network, settings: RandomSearchSettings | None = None,
                 n_workers: int | None = None,
                 cache: EvaluationCache | None = None) -> None:
        self.network = network
        self.settings = settings or RandomSearchSettings()
        self.n_workers = n_workers
        self.cache = cache

    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        settings = self.settings
        rng = make_rng(settings.seed)
        session = SearchSession("random", budget=budget, callbacks=callbacks,
                                settings=settings, network=self.network)

        with EvaluationEngine(cache=self.cache, n_workers=self.n_workers) as engine, \
                session.absorb_interrupt():
            for _ in range(settings.num_hardware_designs):
                if session.exhausted():
                    break
                hardware = random_hardware_config(seed=rng)
                spec = as_spec(hardware)
                chosen: list[Mapping] = []
                per_layer: list[PerformanceResult] = []
                total_latency = 0.0
                total_energy = 0.0
                feasible = True
                for layer in self.network.layers:
                    best_layer, best_layer_result = best_of_random_mappings(
                        session, engine, spec,
                        attempts=settings.mappings_per_layer,
                        generate=lambda layer=layer: random_mapping_for_hardware(
                            layer, hardware, seed=rng, max_attempts=20),
                    )
                    if best_layer is None:
                        feasible = False
                        break
                    chosen.append(best_layer)
                    per_layer.append(best_layer_result)
                    total_latency += best_layer_result.latency_cycles * layer.repeats
                    total_energy += best_layer_result.energy * layer.repeats
                if not feasible:
                    session.checkpoint()
                    continue
                session.offer(CandidateDesign(
                    hardware=hardware,
                    mappings=chosen,
                    performance=NetworkPerformance(total_latency=total_latency,
                                                   total_energy=total_energy,
                                                   per_layer=tuple(per_layer)),
                ))

        return session.finish()
