"""Random-pruned mapping search for a fixed hardware design.

Used to give each expert baseline accelerator of Figure 8 a well-tuned set of
mappings: the paper searches 10,000 valid mappings per layer with Timeloop's
random-pruned mapper; this module performs the analogous random mapping search
against our reference model.

Registered as strategy ``"fixed_hw_random"`` in the unified search API; the
target hardware is passed as a constructor keyword, e.g.::

    repro.optimize(network, strategy="fixed_hw_random",
                   hardware=HardwareConfig(16, 32, 128), seed=0)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.eval.cache import EvaluationCache
from repro.eval.engine import EvaluationEngine
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping, random_mapping_for_hardware
from repro.search.api import (
    CandidateDesign,
    SearchBudget,
    SearchOutcome,
    SearchSession,
    register_searcher,
)
from repro.search.batching import best_of_random_mappings
from repro.timeloop.model import NetworkPerformance, as_spec
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


@dataclass
class FixedHardwareSettings:
    """Best-of-N random mappings per layer on a fixed accelerator."""

    mappings_per_layer: int = 1000
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.mappings_per_layer < 1:
            raise ValueError("mappings_per_layer must be positive")


@register_searcher("fixed_hw_random")
class FixedHardwareMapperSearcher:
    """Random mapping search with the hardware held fixed (mapping-only DSE).

    Layers for which no fitting mapping is found fall back to the best mapping
    sampled regardless of fit (pessimistic but keeps the comparison defined).
    """

    settings_type = FixedHardwareSettings

    def __init__(self, network: Network,
                 settings: FixedHardwareSettings | None = None,
                 hardware: HardwareConfig | None = None,
                 n_workers: int | None = None,
                 cache: EvaluationCache | None = None) -> None:
        if hardware is None:
            raise TypeError("FixedHardwareMapperSearcher requires hardware=...")
        self.network = network
        self.settings = settings or FixedHardwareSettings()
        self.hardware = hardware
        self.n_workers = n_workers
        self.cache = cache

    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        settings = self.settings
        rng = make_rng(settings.seed)
        session = SearchSession("fixed_hw_random", budget=budget, callbacks=callbacks,
                                settings=settings, network=self.network)
        spec = as_spec(self.hardware)
        chosen: list[Mapping] = []
        per_layer = []
        total_latency = 0.0
        total_energy = 0.0
        with EvaluationEngine(cache=self.cache, n_workers=self.n_workers) as engine, \
                session.absorb_interrupt():
            for layer in self.network.layers:

                def generate(layer=layer):
                    mapping = random_mapping_for_hardware(
                        layer, self.hardware, seed=rng, max_attempts=10)
                    if mapping is None:
                        # Fall back to the best mapping regardless of fit
                        # (pessimistic but keeps the comparison defined).
                        mapping = random_mapping(layer, seed=rng,
                                                 max_spatial=self.hardware.pe_dim)
                    return mapping

                best_mapping, best_result = best_of_random_mappings(
                    session, engine, spec,
                    attempts=settings.mappings_per_layer,
                    generate=generate,
                )
                chosen.append(best_mapping)
                per_layer.append(best_result)
                total_latency += best_result.latency_cycles * layer.repeats
                total_energy += best_result.energy * layer.repeats
            # Inside the interrupt guard: a Ctrl-C mid-run leaves `chosen`
            # partial, in which case no (complete) design is ever offered and
            # finish() re-raises the KeyboardInterrupt.
            session.offer(CandidateDesign(
                hardware=self.hardware,
                mappings=chosen,
                performance=NetworkPerformance(total_latency=total_latency,
                                               total_energy=total_energy,
                                               per_layer=tuple(per_layer)),
            ))
        return session.finish()


def best_random_mappings_for_hardware(
    network: Network,
    hardware: HardwareConfig,
    mappings_per_layer: int = 1000,
    seed: SeedLike = None,
) -> tuple[list[Mapping], NetworkPerformance]:
    """Best-of-N random mappings per layer on a fixed hardware design.

    Convenience wrapper around the ``"fixed_hw_random"`` strategy; returns the
    chosen mappings and the whole-network performance.
    """
    settings = FixedHardwareSettings(mappings_per_layer=mappings_per_layer, seed=seed)
    outcome = FixedHardwareMapperSearcher(network, settings, hardware=hardware).search()
    return outcome.best_mappings, outcome.best.performance
