"""Random-pruned mapping search for a fixed hardware design.

Used to give each expert baseline accelerator of Figure 8 a well-tuned set of
mappings: the paper searches 10,000 valid mappings per layer with Timeloop's
random-pruned mapper; this module performs the analogous random mapping search
against our reference model.
"""

from __future__ import annotations

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping_for_hardware
from repro.timeloop.model import NetworkPerformance, evaluate_mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


def best_random_mappings_for_hardware(
    network: Network,
    hardware: HardwareConfig,
    mappings_per_layer: int = 1000,
    seed: SeedLike = None,
) -> tuple[list[Mapping], NetworkPerformance]:
    """Best-of-N random mappings per layer on a fixed hardware design.

    Returns the chosen mappings and the whole-network performance.  Layers for
    which no fitting mapping is found fall back to the best mapping sampled
    regardless of fit (pessimistic but keeps the comparison defined).
    """
    if mappings_per_layer < 1:
        raise ValueError("mappings_per_layer must be positive")
    rng = make_rng(seed)
    spec = GemminiSpec(hardware)
    chosen: list[Mapping] = []
    total_latency = 0.0
    total_energy = 0.0
    per_layer = []
    for layer in network.layers:
        best_result = None
        best_mapping = None
        for _ in range(mappings_per_layer):
            mapping = random_mapping_for_hardware(layer, hardware, seed=rng, max_attempts=10)
            if mapping is None:
                from repro.mapping.random_mapper import random_mapping

                mapping = random_mapping(layer, seed=rng, max_spatial=hardware.pe_dim)
            result = evaluate_mapping(mapping, spec)
            if best_result is None or result.edp < best_result.edp:
                best_result = result
                best_mapping = mapping
        chosen.append(best_mapping)
        per_layer.append(best_result)
        total_latency += best_result.latency_cycles * layer.repeats
        total_energy += best_result.energy * layer.repeats
    performance = NetworkPerformance(
        total_latency=total_latency,
        total_energy=total_energy,
        per_layer=tuple(per_layer),
    )
    return chosen, performance
