"""The unified search API: one protocol, one outcome type, one entry point.

Every co-search strategy in the reproduction — the DOSA one-loop gradient
search, the random and Bayesian two-loop baselines, and the fixed-hardware
random mapper — implements the same :class:`Searcher` protocol::

    searcher.search(budget=None, callbacks=None) -> SearchOutcome

and is registered under a short strategy name, so experiment harnesses can
iterate ``for strategy in ("dosa", "random", "bayesian")`` instead of
hand-wiring per-method glue.  The pieces:

* :class:`SearchBudget` — a uniform sample/wall-time cap.  Samples follow the
  paper's accounting (every reference-model *and* differentiable-model
  evaluation counts one sample), so best-so-far traces from different
  strategies are directly comparable, as in Figures 7-9.
* :class:`SearchTrace` — the single best-so-far curve implementation, keyed
  by reference-model sample count and monotone by construction.
* :class:`CandidateDesign` / :class:`SearchOutcome` — a reference-evaluated
  co-design point, and the common result container (method name, best design,
  all candidates, trace, wall time, seed, settings snapshot).
* :class:`SearchCallback` — progress hooks (``on_step`` / ``on_candidate`` /
  ``on_best``) replacing ad-hoc prints.
* :class:`SearchSession` — shared bookkeeping (sample counter, best-so-far,
  budget enforcement, callback dispatch) used by all searcher implementations.
* :func:`register_searcher` / :func:`get_searcher` /
  :func:`available_strategies` — the strategy registry.
* :func:`optimize` — the one-call facade, also exported as
  ``repro.optimize``::

      outcome = repro.optimize("bert", strategy="dosa", budget=5000, seed=0)
"""

from __future__ import annotations

import numbers
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.arch.config import HardwareConfig
from repro.mapping.mapping import Mapping
from repro.timeloop.model import NetworkPerformance
from repro.utils.log import get_logger
from repro.utils.rng import SeedLike
from repro.workloads.networks import Network, get_network

log = get_logger("search")


# --------------------------------------------------------------------------- #
# Budget
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchBudget:
    """Uniform resource cap for a search run.

    ``max_samples`` caps the number of model evaluations (paper sample
    accounting); ``max_seconds`` caps wall-clock time.  Either may be ``None``
    for "unlimited"; with both ``None`` the searcher's own settings decide
    when to stop.  Budgets are enforced at sample granularity: an in-flight
    reference evaluation (one sample per unique layer) is allowed to finish,
    so a run may overshoot ``max_samples`` by at most the layer count.
    """

    max_samples: int | None = None
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_samples is not None and self.max_samples < 1:
            raise ValueError("max_samples must be at least 1 (or None)")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValueError("max_seconds must be non-negative (or None)")

    @property
    def unlimited(self) -> bool:
        return self.max_samples is None and self.max_seconds is None

    def exhausted(self, samples: int, elapsed_seconds: float) -> bool:
        """Whether a run at ``samples`` evaluations / ``elapsed_seconds`` is done."""
        if self.max_samples is not None and samples >= self.max_samples:
            return True
        if self.max_seconds is not None and elapsed_seconds >= self.max_seconds:
            return True
        return False

    @staticmethod
    def coerce(budget: "SearchBudget | int | None") -> "SearchBudget":
        """Accept ``None`` (unlimited), an int (max samples), or a budget."""
        if budget is None:
            return SearchBudget()
        if isinstance(budget, SearchBudget):
            return budget
        if isinstance(budget, numbers.Integral):
            return SearchBudget(max_samples=int(budget))
        raise TypeError(f"budget must be SearchBudget, int or None, got {budget!r}")


# --------------------------------------------------------------------------- #
# Trace and result containers
# --------------------------------------------------------------------------- #
@dataclass
class TracePoint:
    """Best reference-evaluated EDP after a given number of samples."""

    samples: int
    best_edp: float


@dataclass
class SearchTrace:
    """Best-EDP-so-far as a function of the number of model evaluations.

    The single best-so-far implementation shared by every strategy: recording
    clamps each point to the running minimum, so the curve is monotone
    non-increasing by construction.
    """

    points: list[TracePoint] = field(default_factory=list)

    def record(self, samples: int, edp: float) -> None:
        best = min(edp, self.points[-1].best_edp) if self.points else edp
        self.points.append(TracePoint(samples=samples, best_edp=best))

    def best_edp_after(self, samples: int) -> float:
        """Best EDP achieved using at most ``samples`` evaluations."""
        best = float("inf")
        for point in self.points:
            if point.samples <= samples:
                best = min(best, point.best_edp)
        return best

    # Name used by the pre-unification BestSoFarTrace container.
    best_after = best_edp_after

    @property
    def final_best(self) -> float:
        return self.points[-1].best_edp if self.points else float("inf")

    @property
    def total_samples(self) -> int:
        return max((p.samples for p in self.points), default=0)

    def as_pairs(self) -> list[tuple[int, float]]:
        """The curve as ``(samples, best_edp)`` pairs, e.g. for CSV output."""
        return [(p.samples, p.best_edp) for p in self.points]

    def to_dict(self) -> dict[str, list]:
        return {"samples": [p.samples for p in self.points],
                "best_edp": [p.best_edp for p in self.points]}

    @staticmethod
    def from_dict(payload: dict[str, list]) -> "SearchTrace":
        return SearchTrace(points=[
            TracePoint(samples=int(s), best_edp=float(e))
            for s, e in zip(payload["samples"], payload["best_edp"])
        ])


@dataclass
class CandidateDesign:
    """A rounded, reference-evaluated co-design point."""

    hardware: HardwareConfig
    mappings: list[Mapping]
    performance: NetworkPerformance

    @property
    def edp(self) -> float:
        return self.performance.edp


@dataclass
class SearchOutcome:
    """The common result of every search strategy.

    ``settings`` is a JSON-safe snapshot of the searcher's hyperparameters
    (it round-trips through the outcome JSON serialization for provenance).

    ``extras`` carries strategy-specific artifacts that are *not* serialized
    — live Python objects a caller may want to inspect after the run.  Keys
    are per-strategy; the ones currently produced:

    * ``"start_points"`` (strategy ``dosa``) — the list of
      :class:`~repro.core.optimizer.startpoints.StartPoint` objects the
      gradient descent was seeded from, in generation order.  The fig9
      separation study reads ``extras["start_points"][0]`` to re-run a
      mapping-only search on the first start's hardware.

    Seeded runs are design-identical across the batched/sequential descent
    schedules, but ``candidates``/``trace`` *ordering* (not membership) may
    differ between them — see :mod:`repro.core.optimizer.dosa`.
    """

    method: str
    best: CandidateDesign
    trace: SearchTrace
    candidates: list[CandidateDesign] = field(default_factory=list)
    wall_time_seconds: float = 0.0
    seed: Any = None
    settings: dict[str, Any] = field(default_factory=dict)
    network: str = ""
    extras: dict[str, Any] = field(default_factory=dict)
    #: True when the search was cut short by ``KeyboardInterrupt`` (Ctrl-C)
    #: and this outcome carries the best design found *so far* rather than
    #: the result of a completed run.  Interrupted outcomes round-trip
    #: through the JSON serialization, and the campaign layer re-runs
    #: interrupted jobs on resume instead of treating them as complete.
    interrupted: bool = False
    #: How many candidates the search evaluated, as recorded at
    #: serialization time.  Live outcomes leave this ``None`` (the count is
    #: ``len(candidates)``); outcomes rebuilt from JSON — whose candidate
    #: *objects* are deliberately not persisted — carry the original count
    #: here so the round trip stays lossless (``num_candidates``).
    serialized_candidate_count: int | None = None

    @property
    def num_candidates(self) -> int:
        """Candidates evaluated, surviving the JSON round trip."""
        if self.serialized_candidate_count is not None:
            return self.serialized_candidate_count
        return len(self.candidates)

    @property
    def best_edp(self) -> float:
        return self.best.edp

    @property
    def best_hardware(self) -> HardwareConfig:
        return self.best.hardware

    @property
    def best_mappings(self) -> list[Mapping]:
        return self.best.mappings

    @property
    def total_samples(self) -> int:
        return self.trace.total_samples


# --------------------------------------------------------------------------- #
# Callbacks
# --------------------------------------------------------------------------- #
class SearchCallback:
    """Progress hooks invoked by every searcher; subclass and override.

    Invocation contract, shared across strategies:

    * ``on_step(samples)`` — the sample counter advanced (granularity is
      strategy-defined: one gradient step for DOSA, one reference evaluation
      batch for the black-box searchers).
    * ``on_candidate(candidate, samples)`` — a complete design was
      reference-evaluated.
    * ``on_best(candidate, samples)`` — that candidate improved on the best
      design seen so far; always fires *after* the matching ``on_candidate``.
    """

    def on_step(self, samples: int) -> None:  # pragma: no cover - default no-op
        pass

    def on_candidate(self, candidate: CandidateDesign, samples: int) -> None:
        pass

    def on_best(self, candidate: CandidateDesign, samples: int) -> None:
        pass


class ProgressCallback(SearchCallback):
    """Prints a line whenever the best design improves (CLI/example progress)."""

    def __init__(self, prefix: str = "[search]",
                 printer: Callable[[str], None] = print) -> None:
        self.prefix = prefix
        self.printer = printer

    def on_best(self, candidate: CandidateDesign, samples: int) -> None:
        self.printer(f"{self.prefix} new best EDP {candidate.edp:.4e} "
                     f"after {samples} samples "
                     f"({candidate.hardware.describe()})")


class _CallbackList(SearchCallback):
    """Fans one callback stream out to many registered callbacks."""

    def __init__(self, callbacks: Sequence[SearchCallback]) -> None:
        self.callbacks = list(callbacks)

    def on_step(self, samples: int) -> None:
        for callback in self.callbacks:
            callback.on_step(samples)

    def on_candidate(self, candidate: CandidateDesign, samples: int) -> None:
        for callback in self.callbacks:
            callback.on_candidate(candidate, samples)

    def on_best(self, candidate: CandidateDesign, samples: int) -> None:
        for callback in self.callbacks:
            callback.on_best(candidate, samples)


def as_callback(callbacks) -> SearchCallback:
    """Normalize ``None`` / a single callback / a sequence to one dispatcher."""
    if callbacks is None:
        return SearchCallback()
    if isinstance(callbacks, SearchCallback):
        return callbacks
    return _CallbackList(list(callbacks))


# --------------------------------------------------------------------------- #
# Settings snapshot
# --------------------------------------------------------------------------- #
def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _json_safe(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(item) for item in value]
    return repr(value)


def settings_snapshot(settings: Any) -> dict[str, Any]:
    """A JSON-safe dict view of a settings dataclass (for outcome provenance)."""
    if settings is None:
        return {}
    snapshot = _json_safe(settings)
    return snapshot if isinstance(snapshot, dict) else {"settings": snapshot}


# --------------------------------------------------------------------------- #
# Searcher protocol and the shared session bookkeeping
# --------------------------------------------------------------------------- #
@runtime_checkable
class Searcher(Protocol):
    """What every registered strategy implements."""

    def search(self, budget: SearchBudget | int | None = None,
               callbacks=None) -> SearchOutcome:
        ...


class SearchSession:
    """Per-run bookkeeping shared by all searcher implementations.

    Owns the sample counter, the best-so-far candidate, the unified trace,
    budget enforcement and callback dispatch, so each strategy only decides
    *what* to evaluate, never how to account for it.
    """

    def __init__(
        self,
        method: str,
        budget: SearchBudget | int | None = None,
        callbacks=None,
        settings: Any = None,
        network: Network | str | None = None,
    ) -> None:
        self.method = method
        self.budget = SearchBudget.coerce(budget)
        self.callbacks = as_callback(callbacks)
        self.settings = settings
        self.network_name = network.name if isinstance(network, Network) else (network or "")
        self.trace = SearchTrace()
        self.candidates: list[CandidateDesign] = []
        self.best: CandidateDesign | None = None
        self.samples = 0
        self.interrupted = False
        self._started = time.monotonic()

    # -- accounting ----------------------------------------------------- #
    @property
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started

    def spend(self, count: int = 1) -> int:
        """Advance the sample counter, firing ``on_step`` once per sample.

        Batched evaluation spends several samples in one call; per-sample
        ``on_step`` dispatch is kept so callback streams are independent of
        the evaluation batch size.
        """
        for _ in range(count):
            self.samples += 1
            self.callbacks.on_step(self.samples)
        return self.samples

    def exhausted(self) -> bool:
        """Whether the budget is spent (samples or wall time)."""
        return self.budget.exhausted(self.samples, self.elapsed_seconds)

    def sample_allowance(self, cap: int) -> int:
        """Samples spendable before crossing ``max_samples``, at most ``cap``.

        Batched searchers size their evaluation chunks with this so a batch
        never overshoots the sample budget (the documented overshoot bound —
        one in-flight evaluation per layer — is enforced by the callers'
        keep-the-first-design-feasible rule, not by batching).
        """
        if self.budget.max_samples is None:
            return cap
        return max(0, min(cap, self.budget.max_samples - self.samples))

    # -- candidates ----------------------------------------------------- #
    def offer(self, candidate: CandidateDesign) -> bool:
        """Record a reference-evaluated candidate; returns True if it is a new best."""
        self.candidates.append(candidate)
        self.callbacks.on_candidate(candidate, self.samples)
        improved = self.best is None or candidate.edp < self.best.edp
        if improved:
            self.best = candidate
            self.callbacks.on_best(candidate, self.samples)
        self.trace.record(self.samples, candidate.edp)
        return improved

    def checkpoint(self) -> None:
        """Extend the trace at the current sample count (e.g. after an
        infeasible round that evaluated mappings but produced no candidate)."""
        if self.best is not None:
            self.trace.record(self.samples, self.best.edp)

    # -- interruption ----------------------------------------------------- #
    @contextmanager
    def absorb_interrupt(self):
        """Turn a ``KeyboardInterrupt`` inside the block into graceful stop.

        Searchers wrap their main loop with this so Ctrl-C ends the search at
        the current point instead of unwinding with a bare traceback;
        :meth:`finish` then returns the best-so-far outcome flagged
        ``interrupted=True`` (or re-raises the ``KeyboardInterrupt`` when
        nothing feasible was found yet, so there is never a best-less
        outcome).
        """
        try:
            yield
        except KeyboardInterrupt:
            self.interrupted = True
            log.info("%s search on %s interrupted after %d samples "
                     "(returning best-so-far)", self.method,
                     self.network_name or "<network>", self.samples)

    # -- completion ------------------------------------------------------ #
    def finish(self, extras: dict[str, Any] | None = None) -> SearchOutcome:
        """Seal the session into a :class:`SearchOutcome`.

        ``extras`` becomes :attr:`SearchOutcome.extras` (strategy-specific,
        unserialized artifacts — see the key inventory on
        :class:`SearchOutcome`).  Raises :class:`RuntimeError` if no feasible
        design was ever offered, so callers never receive a best-less outcome
        (an interrupted best-less session re-raises ``KeyboardInterrupt``
        instead, preserving the interrupt for the caller)."""
        if self.best is None:
            if self.interrupted:
                raise KeyboardInterrupt(
                    f"{self.method} search interrupted before any feasible design")
            raise RuntimeError(
                f"{self.method} search produced no feasible design; "
                "increase the budget or the searcher's settings")
        seed = getattr(self.settings, "seed", None)
        log.debug("%s search on %s finished: best EDP %.4e after %d samples "
                  "in %.2fs%s", self.method, self.network_name or "<network>",
                  self.best.edp, self.samples, self.elapsed_seconds,
                  " (interrupted)" if self.interrupted else "")
        return SearchOutcome(
            method=self.method,
            best=self.best,
            trace=self.trace,
            candidates=self.candidates,
            wall_time_seconds=self.elapsed_seconds,
            seed=_json_safe(seed),
            settings=settings_snapshot(self.settings),
            network=self.network_name,
            extras=extras or {},
            interrupted=self.interrupted,
        )


# --------------------------------------------------------------------------- #
# Strategy registry
# --------------------------------------------------------------------------- #
_SEARCHERS: dict[str, type] = {}
_BUILTINS_LOADED = False


def register_searcher(name: str) -> Callable[[type], type]:
    """Class decorator registering a searcher under ``name``.

    The class must implement the :class:`Searcher` protocol and take the
    target :class:`Network` as its first constructor argument (plus an
    optional ``settings`` object; see ``settings_type``).
    """

    def decorator(cls: type) -> type:
        _SEARCHERS[name] = cls
        cls.strategy_name = name
        return cls

    return decorator


def _ensure_builtin_strategies() -> None:
    """Import the built-in strategy modules so their registrations run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.core.optimizer.dosa  # noqa: F401  (registers "dosa")
    import repro.search.bayesian  # noqa: F401  (registers "bayesian")
    import repro.search.random_mapper_search  # noqa: F401  ("fixed_hw_random")
    import repro.search.random_search  # noqa: F401  (registers "random")
    # Only mark loaded once every import succeeded, so a transient failure
    # (e.g. a broken optional dependency) surfaces again on the next call
    # instead of leaving the registry silently half-populated.
    _BUILTINS_LOADED = True


def get_searcher(name: str) -> type:
    """Look up a registered searcher class by strategy name."""
    _ensure_builtin_strategies()
    if name not in _SEARCHERS:
        raise KeyError(f"unknown search strategy {name!r}; "
                       f"options: {sorted(_SEARCHERS)}")
    return _SEARCHERS[name]


def available_strategies() -> tuple[str, ...]:
    """Names of all registered search strategies, sorted."""
    _ensure_builtin_strategies()
    return tuple(sorted(_SEARCHERS))


def create_searcher(strategy: str, network: Network, settings: Any = None,
                    **kwargs) -> Searcher:
    """Instantiate a registered searcher for ``network``."""
    cls = get_searcher(strategy)
    return cls(network, settings=settings, **kwargs)


# --------------------------------------------------------------------------- #
# The facade
# --------------------------------------------------------------------------- #
def optimize(
    network: Network | str,
    strategy: str = "dosa",
    budget: SearchBudget | int | None = None,
    settings: Any = None,
    callbacks=None,
    seed: SeedLike | None = None,
    n_workers: int | None = None,
    **searcher_kwargs,
) -> SearchOutcome:
    """Run one co-search strategy on a network and return its outcome.

    ``network`` may be a :class:`Network` or a registry name (``"bert"``,
    ``"resnet50"``, ...).  ``budget`` may be a :class:`SearchBudget` or an
    int (max samples).  ``settings`` overrides the strategy's default
    hyperparameters; when omitted, ``seed`` seeds the defaults.
    ``n_workers`` sizes the evaluation engine's process pool (``None`` keeps
    reference evaluation in-process; results are identical either way).
    Extra keyword arguments go to the searcher constructor (e.g.
    ``hardware=`` for the ``fixed_hw_random`` strategy, or ``cache=`` to
    share one :class:`~repro.eval.cache.EvaluationCache` across searches).
    """
    if isinstance(network, str):
        network = get_network(network)
    cls = get_searcher(strategy)
    if n_workers is not None:
        searcher_kwargs["n_workers"] = n_workers
    if seed is not None:
        if settings is not None:
            raise TypeError("pass either settings= or seed=, not both: the seed "
                            "lives inside the settings object, so a separate "
                            "seed= would be silently ignored")
        settings_type = getattr(cls, "settings_type", None)
        if settings_type is None:
            raise TypeError(f"strategy {strategy!r} does not expose settings_type; "
                            "pass an explicit settings object instead of seed=")
        settings = settings_type(seed=seed)
    searcher = cls(network, settings=settings, **searcher_kwargs)
    return searcher.search(budget=budget, callbacks=callbacks)
