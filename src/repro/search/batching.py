"""Budget-aware batched inner loops shared by the black-box searchers.

The two-loop baselines (random, Bayesian, fixed-hardware random) all run the
same inner loop: sample up to N random mappings for one layer, evaluate each
on the reference model, keep the best.  :func:`best_of_random_mappings` is
that loop restructured around the :class:`~repro.eval.engine.EvaluationEngine`
batch API: candidates are generated in chunks sized by the session's
remaining sample allowance, evaluated in one engine call (cache + vectorized
batch + optional process pool), and accounted sample-by-sample.

Semantics are preserved exactly relative to the per-sample loop:

* the RNG consumption order is unchanged (one ``generate()`` call per
  attempt), so seeded runs pick the same candidates,
* every requested evaluation spends one sample, cache hit or not,
* a chunk never overshoots ``max_samples`` (the chunk size is clamped to the
  session's :meth:`~repro.search.api.SearchSession.sample_allowance`), and
* the keep-the-first-design-feasible rule still allows a single in-flight
  evaluation per layer once the budget is spent, bounding the overshoot by
  the layer count exactly as the :class:`SearchBudget` contract documents.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.gemmini import GemminiSpec
from repro.eval.engine import EvaluationEngine
from repro.mapping.mapping import Mapping
from repro.search.api import SearchSession
from repro.timeloop.model import PerformanceResult

#: Default evaluation chunk: large enough to amortize batch setup, small
#: enough that wall-time budgets are still checked frequently.
DEFAULT_CHUNK_SIZE = 32


def best_of_random_mappings(
    session: SearchSession,
    engine: EvaluationEngine,
    spec: GemminiSpec,
    attempts: int,
    generate: Callable[[], Mapping | None],
    on_evaluated: Callable[[Mapping, PerformanceResult], None] | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[Mapping | None, PerformanceResult | None]:
    """Best-of-``attempts`` random mappings for one layer, batched.

    ``generate`` produces one candidate per call (or ``None`` when rejection
    sampling fails); ``on_evaluated`` observes every evaluated pair in order
    (the Bayesian searcher collects GP training features with it).  Returns
    the best ``(mapping, result)`` by EDP, or ``(None, None)`` when nothing
    was evaluated.
    """
    best_mapping: Mapping | None = None
    best_result: PerformanceResult | None = None
    remaining = attempts
    while remaining > 0:
        # Honor the budget, but keep the first design feasible: until any
        # design exists, every layer gets at least one evaluated mapping —
        # a single in-flight evaluation past exhaustion, never a full chunk.
        needs_one = best_mapping is None and session.best is None
        if session.exhausted():
            if not needs_one:
                break
            allowance = 1
        else:
            # Not exhausted implies samples < max_samples, so the allowance
            # is at least 1 here.
            allowance = session.sample_allowance(min(remaining, chunk_size))
        batch: list[Mapping] = []
        for _ in range(allowance):
            candidate = generate()
            if candidate is not None:
                batch.append(candidate)
        remaining -= allowance
        if not batch:
            continue
        results = engine.evaluate_many(batch, spec)
        session.spend(len(batch))
        for mapping, result in zip(batch, results):
            if on_evaluated is not None:
                on_evaluated(mapping, result)
            if best_result is None or result.edp < best_result.edp:
                best_result = result
                best_mapping = mapping
    return best_mapping, best_result
