"""Deprecated shim: the result containers now live in :mod:`repro.search.api`.

The pre-unification ``BestSoFarTrace`` (list-of-samples/list-of-EDPs) and the
strategy-specific ``SearchOutcome`` were collapsed into the single
:class:`repro.search.api.SearchTrace` / :class:`repro.search.api.SearchOutcome`
pair shared by every strategy.  Import from :mod:`repro.search.api` (or
:mod:`repro.search`) in new code.
"""

from repro.search.api import CandidateDesign, SearchOutcome, SearchTrace, TracePoint

# Backwards-compatible alias for the old black-box-baseline trace type.
BestSoFarTrace = SearchTrace

__all__ = ["BestSoFarTrace", "CandidateDesign", "SearchOutcome", "SearchTrace",
           "TracePoint"]
