"""Shared result containers for the black-box search baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import HardwareConfig
from repro.mapping.mapping import Mapping


@dataclass
class BestSoFarTrace:
    """Best EDP observed as a function of the number of model evaluations."""

    samples: list[int] = field(default_factory=list)
    best_edp: list[float] = field(default_factory=list)

    def record(self, samples: int, edp: float) -> None:
        best = min(edp, self.best_edp[-1]) if self.best_edp else edp
        self.samples.append(samples)
        self.best_edp.append(best)

    def best_after(self, samples: int) -> float:
        """Best EDP achieved within the first ``samples`` evaluations."""
        best = float("inf")
        for count, edp in zip(self.samples, self.best_edp):
            if count <= samples:
                best = min(best, edp)
        return best

    @property
    def final_best(self) -> float:
        return self.best_edp[-1] if self.best_edp else float("inf")

    @property
    def total_samples(self) -> int:
        return self.samples[-1] if self.samples else 0


@dataclass
class SearchOutcome:
    """Final co-design point found by a searcher, with its evaluation trace."""

    method: str
    best_edp: float
    best_hardware: HardwareConfig
    best_mappings: list[Mapping]
    trace: BestSoFarTrace
