"""Hardware configurations and the minimal-hardware derivation.

A DOSA hardware design point is fully described by three parameters
(Section 6.1): the systolic-array side length (``pe_dim``, so the number of
PEs is ``pe_dim**2``), the accumulator SRAM capacity, and the scratchpad SRAM
capacity.  The mapping-first flow never samples these directly — instead it
computes, for a set of per-layer mappings, the *minimal* configuration able to
run all of them (Figure 3): the PE array comes from the spatial tiling
factors, and each SRAM is sized to the largest per-layer tile it must hold,
rounded up to 1 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.arch.components import (
    BYTES_PER_WORD,
    LEVEL_ACCUMULATOR,
    LEVEL_SCRATCHPAD,
)
from repro.utils.math_utils import round_up_to_multiple
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class HardwareBounds:
    """Legal ranges for the searched hardware parameters."""

    max_pe_dim: int = 128          # paper: PE array size capped at 128x128
    min_pe_dim: int = 1
    max_accumulator_kb: int = 1024
    max_scratchpad_kb: int = 4096
    sram_granularity_kb: int = 1   # paper: SRAM sizes rounded up to 1 KB

    def __post_init__(self) -> None:
        if self.min_pe_dim < 1 or self.max_pe_dim < self.min_pe_dim:
            raise ValueError("invalid PE dimension bounds")
        if self.max_accumulator_kb < 1 or self.max_scratchpad_kb < 1:
            raise ValueError("SRAM bounds must be at least 1 KB")
        if self.sram_granularity_kb < 1:
            raise ValueError("SRAM granularity must be at least 1 KB")


DEFAULT_BOUNDS = HardwareBounds()


@dataclass(frozen=True)
class HardwareConfig:
    """One hardware design point: PE array side and SRAM capacities in KB."""

    pe_dim: int
    accumulator_kb: int
    scratchpad_kb: int

    def __post_init__(self) -> None:
        if self.pe_dim < 1:
            raise ValueError(f"pe_dim must be >= 1, got {self.pe_dim}")
        if self.accumulator_kb < 1:
            raise ValueError(f"accumulator_kb must be >= 1, got {self.accumulator_kb}")
        if self.scratchpad_kb < 1:
            raise ValueError(f"scratchpad_kb must be >= 1, got {self.scratchpad_kb}")

    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        """Total number of processing elements (square array)."""
        return self.pe_dim * self.pe_dim

    @property
    def accumulator_words(self) -> int:
        """Accumulator capacity in (32-bit) words."""
        return self.accumulator_kb * 1024 // BYTES_PER_WORD[LEVEL_ACCUMULATOR]

    @property
    def scratchpad_words(self) -> int:
        """Scratchpad capacity in (8-bit) words."""
        return self.scratchpad_kb * 1024 // BYTES_PER_WORD[LEVEL_SCRATCHPAD]

    @property
    def register_words(self) -> int:
        """Per-array register capacity in words (one stationary weight per PE)."""
        return self.num_pes

    def area_proxy(self) -> float:
        """A crude area indicator: PEs plus SRAM kilobytes (for reporting only)."""
        return float(self.num_pes) + 2.0 * (self.accumulator_kb + self.scratchpad_kb)

    def describe(self) -> str:
        return (
            f"pe_array={self.pe_dim}x{self.pe_dim} "
            f"accumulator={self.accumulator_kb}KB scratchpad={self.scratchpad_kb}KB"
        )


def minimal_hardware_for_requirements(
    spatial_requirement: float,
    accumulator_word_requirement: float,
    scratchpad_word_requirement: float,
    bounds: HardwareBounds = DEFAULT_BOUNDS,
) -> HardwareConfig:
    """Derive the smallest legal :class:`HardwareConfig` meeting the requirements.

    ``spatial_requirement`` is the larger of the C/K spatial tiling factors
    (the square-root of Equation 1's PE count); SRAM requirements are in words
    of the respective level.  Values are rounded up: PE dim to the next
    integer (capped), SRAM capacities to the configured granularity.
    """
    pe_dim = max(bounds.min_pe_dim, int(-(-spatial_requirement // 1)))
    pe_dim = min(pe_dim, bounds.max_pe_dim)

    accumulator_bytes = accumulator_word_requirement * BYTES_PER_WORD[LEVEL_ACCUMULATOR]
    scratchpad_bytes = scratchpad_word_requirement * BYTES_PER_WORD[LEVEL_SCRATCHPAD]
    granularity = bounds.sram_granularity_kb
    accumulator_kb = max(granularity, round_up_to_multiple(accumulator_bytes / 1024.0, granularity))
    scratchpad_kb = max(granularity, round_up_to_multiple(scratchpad_bytes / 1024.0, granularity))
    accumulator_kb = min(accumulator_kb, bounds.max_accumulator_kb)
    scratchpad_kb = min(scratchpad_kb, bounds.max_scratchpad_kb)
    return HardwareConfig(pe_dim=pe_dim, accumulator_kb=accumulator_kb,
                          scratchpad_kb=scratchpad_kb)


def merge_hardware_configs(configs: Iterable[HardwareConfig],
                           bounds: HardwareBounds = DEFAULT_BOUNDS) -> HardwareConfig:
    """Parameter-wise max across per-layer minimal configs (Figure 3).

    The final design must support every layer's mapping, so each hardware
    parameter takes the maximum over the per-layer requirements.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("merge_hardware_configs requires at least one config")
    return HardwareConfig(
        pe_dim=min(max(c.pe_dim for c in configs), bounds.max_pe_dim),
        accumulator_kb=min(max(c.accumulator_kb for c in configs), bounds.max_accumulator_kb),
        scratchpad_kb=min(max(c.scratchpad_kb for c in configs), bounds.max_scratchpad_kb),
    )


def random_hardware_config(
    seed: SeedLike = None,
    bounds: HardwareBounds = DEFAULT_BOUNDS,
    pe_dim_choices: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    sram_kb_choices: tuple[int, ...] = (16, 32, 64, 128, 256, 512),
) -> HardwareConfig:
    """Sample a random valid hardware design point (used for GD start points
    and by the black-box search baselines)."""
    rng = make_rng(seed)
    pe_dim = int(rng.choice([p for p in pe_dim_choices if p <= bounds.max_pe_dim]))
    accumulator_kb = int(rng.choice([s for s in sram_kb_choices
                                     if s <= bounds.max_accumulator_kb]))
    scratchpad_kb = int(rng.choice([s for s in sram_kb_choices
                                    if s <= bounds.max_scratchpad_kb]))
    return HardwareConfig(pe_dim=pe_dim, accumulator_kb=accumulator_kb,
                          scratchpad_kb=scratchpad_kb)
