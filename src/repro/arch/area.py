"""First-order area model for the searched hardware parameters.

The paper notes that DOSA's modular objective could include area "in future
work" (Section 6.5); this module provides that extension so area-delay or
area-constrained studies can be layered on the existing search results.  The
model follows the usual pre-RTL scaling assumptions for a 40 nm-class process:
PE area scales linearly with the MAC count, and SRAM area scales linearly with
capacity plus a fixed bank overhead — the same structure CACTI-style
estimators expose for these capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig

# Area coefficients in mm^2 (40 nm-class, 8-bit MACs; absolute scale is only
# meaningful relative to other designs evaluated with the same coefficients).
PE_AREA_MM2 = 0.0015                 # one 8-bit MAC + pipeline registers
SRAM_AREA_MM2_PER_KB = 0.0075        # dense single-port SRAM
SRAM_BANK_OVERHEAD_MM2 = 0.01        # decoder / sense-amp overhead per array
DRAM_CONTROLLER_AREA_MM2 = 0.35      # fixed: PHY + controller
NOC_AREA_MM2_PER_PE_ROW = 0.006      # operand distribution per array row/column


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of one hardware configuration, split by component."""

    pe_array_mm2: float
    accumulator_mm2: float
    scratchpad_mm2: float
    interconnect_mm2: float
    dram_interface_mm2: float

    @property
    def total_mm2(self) -> float:
        return (self.pe_array_mm2 + self.accumulator_mm2 + self.scratchpad_mm2
                + self.interconnect_mm2 + self.dram_interface_mm2)

    def dominant_component(self) -> str:
        """Name of the component contributing the most area."""
        components = {
            "pe_array": self.pe_array_mm2,
            "accumulator": self.accumulator_mm2,
            "scratchpad": self.scratchpad_mm2,
            "interconnect": self.interconnect_mm2,
            "dram_interface": self.dram_interface_mm2,
        }
        return max(components, key=components.get)


def estimate_area(config: HardwareConfig) -> AreaBreakdown:
    """First-order area estimate of ``config`` in mm^2."""
    return AreaBreakdown(
        pe_array_mm2=PE_AREA_MM2 * config.num_pes,
        accumulator_mm2=(SRAM_AREA_MM2_PER_KB * config.accumulator_kb
                         + SRAM_BANK_OVERHEAD_MM2),
        scratchpad_mm2=(SRAM_AREA_MM2_PER_KB * config.scratchpad_kb
                        + SRAM_BANK_OVERHEAD_MM2),
        interconnect_mm2=NOC_AREA_MM2_PER_PE_ROW * 2.0 * config.pe_dim,
        dram_interface_mm2=DRAM_CONTROLLER_AREA_MM2,
    )


def area_delay_product(config: HardwareConfig, latency_cycles: float) -> float:
    """Area-delay product, the secondary design metric mentioned in Section 2."""
    if latency_cycles <= 0:
        raise ValueError("latency must be positive")
    return estimate_area(config).total_mm2 * latency_cycles


def fits_area_budget(config: HardwareConfig, budget_mm2: float) -> bool:
    """Whether ``config`` fits under an area budget (design-budget constraint)."""
    if budget_mm2 <= 0:
        raise ValueError("area budget must be positive")
    return estimate_area(config).total_mm2 <= budget_mm2
