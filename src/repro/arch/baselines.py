"""Expert-designed baseline accelerators compared against in Figure 8.

The paper evaluates Eyeriss, NVDLA-Small, NVDLA-Large and the default Gemmini
configuration with Timeloop, searching 10,000 valid mappings per layer with a
random-pruned mapper.  This reproduction evaluates parameterized stand-ins for
these designs under the same reference model, so the comparison exercises the
same code path (fixed hardware + mapping-only search) even though the absolute
numbers come from our Table-2 cost model rather than each design's own energy
tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec


@dataclass(frozen=True)
class BaselineAccelerator:
    """A named, fixed hardware design point used as a comparison baseline."""

    name: str
    config: HardwareConfig

    @property
    def spec(self) -> GemminiSpec:
        """Cost-model view of this baseline (Table-2 model on its parameters)."""
        return GemminiSpec(self.config)


# Eyeriss (Chen et al.): 168 PEs (modelled as a 12x12 array under the square
# constraint), a 108 KB global buffer and relatively large per-PE storage.
EYERISS = BaselineAccelerator(
    name="Eyeriss",
    config=HardwareConfig(pe_dim=12, accumulator_kb=16, scratchpad_kb=108),
)

# NVDLA-Small: 64 MACs with a small convolution buffer.
NVDLA_SMALL = BaselineAccelerator(
    name="NVDLA Small",
    config=HardwareConfig(pe_dim=8, accumulator_kb=16, scratchpad_kb=128),
)

# NVDLA-Large: 1024 MACs with a 512 KB convolution buffer.
NVDLA_LARGE = BaselineAccelerator(
    name="NVDLA Large",
    config=HardwareConfig(pe_dim=32, accumulator_kb=64, scratchpad_kb=512),
)

# Gemmini default (Section 6.5): 16x16 PEs, 32 KB accumulator, 128 KB scratchpad.
GEMMINI_DEFAULT_BASELINE = BaselineAccelerator(
    name="Gemmini Default",
    config=HardwareConfig(pe_dim=16, accumulator_kb=32, scratchpad_kb=128),
)


def baseline_accelerators() -> list[BaselineAccelerator]:
    """The four fixed baselines of Figure 8, in the order the paper plots them."""
    return [EYERISS, NVDLA_SMALL, NVDLA_LARGE, GEMMINI_DEFAULT_BASELINE]
