"""The Gemmini-style accelerator specification ("Gemmini-TL" in the paper).

:class:`GemminiSpec` ties a :class:`~repro.arch.config.HardwareConfig` to the
Table-2 bandwidth/energy model and the Table-4 bypass matrix, and answers the
per-level queries both performance models (the differentiable model and the
iterative reference model) need: capacity in words, bandwidth in words/cycle,
energy per access, and which tensors a level stores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.components import (
    BYPASS_MATRIX,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
    PE_ENERGY_PER_MAC,
    level_bandwidth,
    level_energy_per_access,
)
from repro.arch.config import HardwareConfig


@dataclass(frozen=True)
class GemminiSpec:
    """A concrete Gemmini instance: hardware config + Table-2 cost model."""

    config: HardwareConfig

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> tuple[int, ...]:
        """Memory level indices, innermost (registers) to outermost (DRAM)."""
        return MEMORY_LEVEL_INDICES

    def stores(self, level: int) -> frozenset[str]:
        """Tensors kept at ``level`` according to the bypass matrix."""
        return BYPASS_MATRIX[level]

    def holds(self, level: int, tensor: str) -> bool:
        return tensor in BYPASS_MATRIX[level]

    def innermost_level_for(self, tensor: str) -> int:
        """The innermost memory level storing ``tensor`` (W -> registers, ...)."""
        for level in self.levels:
            if self.holds(level, tensor):
                return level
        raise KeyError(f"no level stores tensor {tensor!r}")

    def next_inner_level_for(self, tensor: str, level: int) -> int | None:
        """The closest level below ``level`` that also stores ``tensor``."""
        for candidate in range(level - 1, -1, -1):
            if self.holds(candidate, tensor):
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # Capacities
    # ------------------------------------------------------------------ #
    def capacity_words(self, level: int) -> float:
        """Capacity of ``level`` in words; DRAM is effectively unbounded."""
        if level == LEVEL_REGISTERS:
            return float(self.config.register_words)
        if level == LEVEL_ACCUMULATOR:
            return float(self.config.accumulator_words)
        if level == LEVEL_SCRATCHPAD:
            return float(self.config.scratchpad_words)
        if level == LEVEL_DRAM:
            return float("inf")
        raise ValueError(f"unknown memory level {level}")

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #
    @property
    def mac_energy(self) -> float:
        """Energy of a single multiply-accumulate operation."""
        return PE_ENERGY_PER_MAC

    def bandwidth(self, level: int) -> float:
        """Bandwidth of ``level`` in words per cycle (Table 2)."""
        return level_bandwidth(level, self.config.num_pes)

    def energy_per_access(self, level: int) -> float:
        """Energy per word access at ``level`` (Table 2)."""
        return level_energy_per_access(
            level,
            accumulator_kb=self.config.accumulator_kb,
            scratchpad_kb=self.config.scratchpad_kb,
            num_pes=self.config.num_pes,
        )

    def describe(self) -> str:
        lines = [f"Gemmini ({self.config.describe()})"]
        names = {0: "registers", 1: "accumulator", 2: "scratchpad", 3: "dram"}
        for level in self.levels:
            capacity = self.capacity_words(level)
            capacity_str = "inf" if capacity == float("inf") else f"{int(capacity)} words"
            lines.append(
                f"  L{level} {names[level]:<12} capacity={capacity_str:<16} "
                f"bw={self.bandwidth(level):.1f} words/cycle "
                f"epa={self.energy_per_access(level):.3f}"
            )
        return "\n".join(lines)


# The hand-tuned default Gemmini configuration (Section 6.5): 16x16 PEs,
# 32 KB accumulator, 128 KB scratchpad.
GEMMINI_DEFAULT = GemminiSpec(HardwareConfig(pe_dim=16, accumulator_kb=32, scratchpad_kb=128))
