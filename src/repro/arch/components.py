"""Architectural components and the Table-2 bandwidth / energy model.

The accelerator under study has four memory levels (index ``i``):

====== ============= ===============================
Level  Component     Holds (bypass matrix, Table 4)
====== ============= ===============================
0      PE registers  Weights
1      Accumulator   Outputs / partial sums
2      Scratchpad    Weights, Inputs
3      DRAM          Weights, Inputs, Outputs
====== ============= ===============================

Bandwidths and energy-per-access (EPA) values follow Table 2 of the paper,
collected for a 40 nm process with Accelergy's Aladdin and CACTI plug-ins:

* PE MAC energy and register / DRAM access energy are constants per word.
* SRAM (accumulator, scratchpad) access energy scales with the SRAM capacity;
  the capacity terms ``C_i`` in the formulas are expressed in kilobytes so
  that the resulting magnitudes sit between register and DRAM energies, which
  is the behaviour the CACTI-derived table encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

# Memory level indices (paper Section 4.1).
LEVEL_REGISTERS = 0
LEVEL_ACCUMULATOR = 1
LEVEL_SCRATCHPAD = 2
LEVEL_DRAM = 3

MEMORY_LEVEL_INDICES: tuple[int, ...] = (
    LEVEL_REGISTERS,
    LEVEL_ACCUMULATOR,
    LEVEL_SCRATCHPAD,
    LEVEL_DRAM,
)

# Bypass matrix B (Table 4): which tensors each level stores.
BYPASS_MATRIX: dict[int, frozenset[str]] = {
    LEVEL_REGISTERS: frozenset({"W"}),
    LEVEL_ACCUMULATOR: frozenset({"O"}),
    LEVEL_SCRATCHPAD: frozenset({"W", "I"}),
    LEVEL_DRAM: frozenset({"W", "I", "O"}),
}

# Datawidths (bytes per word) used when converting word capacities to KB, as
# annotated in Figure 3 of the paper: 8-bit scratchpad words, 32-bit
# accumulator partial sums.
BYTES_PER_WORD: dict[int, int] = {
    LEVEL_REGISTERS: 1,
    LEVEL_ACCUMULATOR: 4,
    LEVEL_SCRATCHPAD: 1,
    LEVEL_DRAM: 1,
}

# Energy constants from Table 2 (values in the paper's energy unit).
PE_ENERGY_PER_MAC = 0.561
REGISTER_ENERGY_PER_ACCESS = 0.487
ACCUMULATOR_EPA_BASE = 1.94
ACCUMULATOR_EPA_SLOPE = 0.1005
SCRATCHPAD_EPA_BASE = 0.49
SCRATCHPAD_EPA_SLOPE = 0.025
DRAM_ENERGY_PER_ACCESS = 100.0

# Bandwidth constants from Table 2 (words per cycle).
DRAM_BANDWIDTH_WORDS_PER_CYCLE = 8.0


@dataclass(frozen=True)
class MemoryLevel:
    """Static description of one memory level of the hierarchy."""

    index: int
    name: str
    stores: frozenset[str]

    def holds(self, tensor: str) -> bool:
        """True if this level keeps a copy of tensor ``tensor`` (W/I/O)."""
        return tensor in self.stores


MEMORY_LEVELS: tuple[MemoryLevel, ...] = (
    MemoryLevel(LEVEL_REGISTERS, "registers", BYPASS_MATRIX[LEVEL_REGISTERS]),
    MemoryLevel(LEVEL_ACCUMULATOR, "accumulator", BYPASS_MATRIX[LEVEL_ACCUMULATOR]),
    MemoryLevel(LEVEL_SCRATCHPAD, "scratchpad", BYPASS_MATRIX[LEVEL_SCRATCHPAD]),
    MemoryLevel(LEVEL_DRAM, "dram", BYPASS_MATRIX[LEVEL_DRAM]),
)


def accumulator_energy_per_access(capacity_kb: float, num_pes: float) -> float:
    """Accumulator SRAM energy per access: ``1.94 + 0.1005 * C1 / sqrt(C_PE)``."""
    if capacity_kb < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity_kb}")
    if num_pes <= 0:
        raise ValueError(f"PE count must be positive, got {num_pes}")
    return ACCUMULATOR_EPA_BASE + ACCUMULATOR_EPA_SLOPE * capacity_kb / math.sqrt(num_pes)


def scratchpad_energy_per_access(capacity_kb: float) -> float:
    """Scratchpad SRAM energy per access: ``0.49 + 0.025 * C2``."""
    if capacity_kb < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity_kb}")
    return SCRATCHPAD_EPA_BASE + SCRATCHPAD_EPA_SLOPE * capacity_kb


def level_energy_per_access(level: int, accumulator_kb: float,
                            scratchpad_kb: float, num_pes: float) -> float:
    """Energy per access at ``level`` for a hardware configuration (Table 2)."""
    if level == LEVEL_REGISTERS:
        return REGISTER_ENERGY_PER_ACCESS
    if level == LEVEL_ACCUMULATOR:
        return accumulator_energy_per_access(accumulator_kb, num_pes)
    if level == LEVEL_SCRATCHPAD:
        return scratchpad_energy_per_access(scratchpad_kb)
    if level == LEVEL_DRAM:
        return DRAM_ENERGY_PER_ACCESS
    raise ValueError(f"unknown memory level {level}")


def level_bandwidth(level: int, num_pes: float) -> float:
    """Bandwidth in words per cycle at ``level`` for ``num_pes`` processing elements.

    Table 2: registers read/write two words per PE per cycle, the SRAMs two
    words per systolic-array row/column per cycle, and DRAM a fixed eight
    words per cycle.
    """
    if num_pes <= 0:
        raise ValueError(f"PE count must be positive, got {num_pes}")
    if level == LEVEL_REGISTERS:
        return 2.0 * num_pes
    if level in (LEVEL_ACCUMULATOR, LEVEL_SCRATCHPAD):
        return 2.0 * math.sqrt(num_pes)
    if level == LEVEL_DRAM:
        return DRAM_BANDWIDTH_WORDS_PER_CYCLE
    raise ValueError(f"unknown memory level {level}")
