"""Accelerator architecture descriptions.

Encodes the Gemmini-style accelerator studied by the paper: a square
weight-stationary systolic array of processing elements backed by per-PE
registers, an accumulator SRAM, a scratchpad SRAM and DRAM (Table 2), with the
tensor-to-level bypass matrix of Table 4.  Also provides the expert-designed
baseline configurations used in Figure 8 and the minimal-hardware derivation
of Section 4.1 / Figure 3.
"""

from repro.arch.components import (
    MEMORY_LEVELS,
    MemoryLevel,
    LEVEL_REGISTERS,
    LEVEL_ACCUMULATOR,
    LEVEL_SCRATCHPAD,
    LEVEL_DRAM,
    BYPASS_MATRIX,
    PE_ENERGY_PER_MAC,
    DRAM_ENERGY_PER_ACCESS,
    REGISTER_ENERGY_PER_ACCESS,
    accumulator_energy_per_access,
    scratchpad_energy_per_access,
    level_bandwidth,
    level_energy_per_access,
)
from repro.arch.config import (
    HardwareConfig,
    HardwareBounds,
    DEFAULT_BOUNDS,
    minimal_hardware_for_requirements,
    merge_hardware_configs,
    random_hardware_config,
)
from repro.arch.gemmini import GemminiSpec, GEMMINI_DEFAULT
from repro.arch.baselines import (
    BaselineAccelerator,
    EYERISS,
    NVDLA_SMALL,
    NVDLA_LARGE,
    GEMMINI_DEFAULT_BASELINE,
    baseline_accelerators,
)

__all__ = [
    "MEMORY_LEVELS",
    "MemoryLevel",
    "LEVEL_REGISTERS",
    "LEVEL_ACCUMULATOR",
    "LEVEL_SCRATCHPAD",
    "LEVEL_DRAM",
    "BYPASS_MATRIX",
    "PE_ENERGY_PER_MAC",
    "DRAM_ENERGY_PER_ACCESS",
    "REGISTER_ENERGY_PER_ACCESS",
    "accumulator_energy_per_access",
    "scratchpad_energy_per_access",
    "level_bandwidth",
    "level_energy_per_access",
    "HardwareConfig",
    "HardwareBounds",
    "DEFAULT_BOUNDS",
    "minimal_hardware_for_requirements",
    "merge_hardware_configs",
    "random_hardware_config",
    "GemminiSpec",
    "GEMMINI_DEFAULT",
    "BaselineAccelerator",
    "EYERISS",
    "NVDLA_SMALL",
    "NVDLA_LARGE",
    "GEMMINI_DEFAULT_BASELINE",
    "baseline_accelerators",
]
