"""Random-number-generation helpers.

Every stochastic component of the reproduction (random mappers, search
baselines, the synthetic RTL simulator's deterministic perturbations, DNN
weight initialization) accepts either a seed or a ``numpy.random.Generator``.
This module provides the single conversion point.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
