"""Integer and statistical helpers used throughout the DOSA reproduction.

The mapping machinery works heavily with divisors of layer dimensions
(tiling factors must multiply exactly to the problem size), so fast integer
factorization helpers live here, next to the small statistics routines used
by the experiment harnesses (geometric mean, Spearman rank correlation).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def round_up_to_multiple(value: float, multiple: int) -> int:
    """Round ``value`` up to the nearest positive multiple of ``multiple``."""
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    return int(math.ceil(value / multiple)) * multiple


def next_power_of_two(value: int) -> int:
    """Smallest power of two that is >= ``value`` (minimum 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


@lru_cache(maxsize=65536)
def prime_factorization(n: int) -> tuple[int, ...]:
    """Return the prime factorization of ``n`` as a sorted tuple of primes.

    ``prime_factorization(12)`` returns ``(2, 2, 3)``.  ``n`` must be >= 1;
    the factorization of 1 is the empty tuple.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: list[int] = []
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return tuple(factors)


@lru_cache(maxsize=65536)
def divisors(n: int) -> tuple[int, ...]:
    """Return all positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


def round_to_nearest_divisor(value: float, n: int, max_value: int | None = None) -> int:
    """Round ``value`` to the divisor of ``n`` closest to it.

    If ``max_value`` is given, only divisors <= ``max_value`` are considered
    (there is always at least the divisor 1).  Ties round down, matching the
    conservative rounding used when snapping tiling factors.
    """
    candidates = [d for d in divisors(n) if max_value is None or d <= max_value]
    if not candidates:
        candidates = [1]
    best = candidates[0]
    best_gap = abs(value - best)
    for candidate in candidates[1:]:
        gap = abs(value - candidate)
        if gap < best_gap:
            best = candidate
            best_gap = gap
    return best


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(np.asarray(values, dtype=float)))))


def _rankdata(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-based) with ties sharing the mean of their positions."""
    arr = np.asarray(values, dtype=float)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(len(arr), dtype=float)
    sorted_vals = arr[order]
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = mean_rank
        i = j + 1
    return ranks


def spearman_rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation coefficient between two equal-length sequences.

    Used to score latency predictors against the reference simulator, as in
    Figures 10 and 11 of the paper.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ValueError("need at least two samples for a correlation")
    rx = _rankdata(x)
    ry = _rankdata(y)
    rx = rx - rx.mean()
    ry = ry - ry.mean()
    denom = float(np.sqrt((rx**2).sum() * (ry**2).sum()))
    if denom == 0.0:
        return 0.0
    return float((rx * ry).sum() / denom)
