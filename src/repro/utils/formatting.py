"""Plain-text table and number formatting for experiment output.

The original artifact produces matplotlib figures; this reproduction emits the
underlying numbers as aligned text tables and CSV files instead.
"""

from __future__ import annotations

from typing import Sequence


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI magnitude suffix (k, M, G, T, P, E)."""
    suffixes = ["", "k", "M", "G", "T", "P", "E"]
    magnitude = 0
    scaled = float(value)
    while abs(scaled) >= 1000.0 and magnitude < len(suffixes) - 1:
        scaled /= 1000.0
        magnitude += 1
    return f"{scaled:.{digits}g}{suffixes[magnitude]}{unit}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
