"""Shared utilities: integer math, statistics, formatting, and RNG helpers."""

from repro.utils.math_utils import (
    divisors,
    prime_factorization,
    round_to_nearest_divisor,
    geometric_mean,
    spearman_rank_correlation,
    next_power_of_two,
    ceil_div,
    round_up_to_multiple,
)
from repro.utils.formatting import format_table, format_si
from repro.utils.rng import make_rng

__all__ = [
    "divisors",
    "prime_factorization",
    "round_to_nearest_divisor",
    "geometric_mean",
    "spearman_rank_correlation",
    "next_power_of_two",
    "ceil_div",
    "round_up_to_multiple",
    "format_table",
    "format_si",
    "make_rng",
]
