"""Structured logging for the reproduction's long-running components.

Every component logs through a child of the single ``repro`` logger::

    from repro.utils.log import get_logger
    log = get_logger("campaign.scheduler")
    log.info("job %s done (best EDP %.4e)", job_id, edp)

Nothing is printed unless :func:`configure_logging` (or the ``--log-level``
flag on ``repro.cli``) installs a handler, so library users keep full control
of log routing: the ``repro`` logger propagates to the root logger by
default and carries a ``NullHandler`` to silence the "no handler" warning.

The line format is deliberately grep-friendly (one event per line, fixed
field order)::

    2026-08-07 12:00:00,123 INFO  repro.service.daemon: job j-1a2b3c queued

Batch experiment harnesses stay print-based; the loggers exist for the parts
of the system that run unattended — searchers, the campaign scheduler, and
the search service daemon.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: The names accepted by ``--log-level`` (lower-case, argparse-friendly).
LOG_LEVELS: tuple[str, ...] = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-5s %(name)s: %(message)s"

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(component: str) -> logging.Logger:
    """The per-component logger ``repro.<component>``."""
    return logging.getLogger(f"{_ROOT_NAME}.{component}")


def configure_logging(level: str | int = "warning",
                      stream: IO[str] | None = None) -> logging.Logger:
    """Install one stream handler on the ``repro`` logger at ``level``.

    Idempotent: calling again replaces the previously-installed handler (and
    its level) instead of stacking duplicates, so the CLI and tests can
    reconfigure freely.  ``stream`` defaults to ``sys.stderr`` so log lines
    never interleave with machine-readable stdout (reports, JSON).
    """
    if isinstance(level, str):
        if level.lower() not in LOG_LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"options: {', '.join(LOG_LEVELS)}")
        level = getattr(logging, level.upper())
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        if isinstance(handler, logging.StreamHandler) \
                and not isinstance(handler, logging.NullHandler) \
                and getattr(handler, "_repro_configured", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_configured = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
