"""JSON persistence for search results and experiment artifacts.

Search runs are expensive; these helpers let the examples, the CLI ``search``
subcommand and the experiment harnesses save the winning design (hardware +
per-layer mappings + trace) and reload it later for re-evaluation, which is
how the paper's artifact ships the DOSA-generated mappings to the FireSim
evaluation step.

Two granularities are supported:

* :func:`save_design` / :func:`load_design` — a bare co-design point
  (hardware + mappings + metadata),
* :func:`save_outcome` / :func:`load_outcome` — a full unified
  :class:`repro.search.api.SearchOutcome` (method, best design, best-so-far
  trace, wall time, seed and settings snapshot).  Per-layer performance
  details and non-best candidates are not serialized; the best design's
  totals are stored so ``outcome.best_edp`` survives the round trip even for
  adjusted-latency (RTL) searches.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.arch.config import HardwareConfig
from repro.mapping.mapping import Mapping
from repro.search.api import CandidateDesign, SearchBudget, SearchOutcome, SearchTrace
from repro.timeloop.model import NetworkPerformance
from repro.utils.atomic import write_atomic


def budget_to_dict(budget: SearchBudget) -> dict[str, Any]:
    """Serialize a :class:`SearchBudget` (used by campaign specs)."""
    return {"max_samples": budget.max_samples, "max_seconds": budget.max_seconds}


def budget_from_dict(payload: dict[str, Any]) -> SearchBudget:
    max_samples = payload.get("max_samples")
    max_seconds = payload.get("max_seconds")
    return SearchBudget(
        max_samples=None if max_samples is None else int(max_samples),
        max_seconds=None if max_seconds is None else float(max_seconds),
    )


def hardware_to_dict(config: HardwareConfig) -> dict[str, int]:
    return {
        "pe_dim": config.pe_dim,
        "accumulator_kb": config.accumulator_kb,
        "scratchpad_kb": config.scratchpad_kb,
    }


def hardware_from_dict(payload: dict[str, Any]) -> HardwareConfig:
    return HardwareConfig(
        pe_dim=int(payload["pe_dim"]),
        accumulator_kb=int(payload["accumulator_kb"]),
        scratchpad_kb=int(payload["scratchpad_kb"]),
    )


def design_to_dict(hardware: HardwareConfig, mappings: list[Mapping],
                   metadata: dict[str, Any] | None = None) -> dict[str, Any]:
    """Serialize a co-design point (hardware + one mapping per unique layer)."""
    return {
        "hardware": hardware_to_dict(hardware),
        "mappings": [m.as_dict() for m in mappings],
        "metadata": metadata or {},
    }


def design_from_dict(payload: dict[str, Any]) -> tuple[HardwareConfig, list[Mapping], dict]:
    hardware = hardware_from_dict(payload["hardware"])
    mappings = [Mapping.from_dict(entry) for entry in payload["mappings"]]
    return hardware, mappings, dict(payload.get("metadata", {}))


def save_design(path: str | Path, hardware: HardwareConfig, mappings: list[Mapping],
                metadata: dict[str, Any] | None = None) -> Path:
    """Write a co-design point to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    write_atomic(path, json.dumps(design_to_dict(hardware, mappings, metadata), indent=2))
    return path


def load_design(path: str | Path) -> tuple[HardwareConfig, list[Mapping], dict]:
    """Load a co-design point previously written by :func:`save_design`."""
    payload = json.loads(Path(path).read_text())
    return design_from_dict(payload)


# --------------------------------------------------------------------------- #
# Unified search outcomes
# --------------------------------------------------------------------------- #
def outcome_to_dict(outcome: SearchOutcome) -> dict[str, Any]:
    """Serialize a unified :class:`SearchOutcome` to a JSON-safe dict."""
    best = outcome.best
    return {
        "method": outcome.method,
        "network": outcome.network,
        "seed": outcome.seed,
        "settings": outcome.settings,
        "wall_time_seconds": outcome.wall_time_seconds,
        "interrupted": outcome.interrupted,
        "num_candidates": outcome.num_candidates,
        "best": {
            "hardware": hardware_to_dict(best.hardware),
            "mappings": [m.as_dict() for m in best.mappings],
            "total_latency": best.performance.total_latency,
            "total_energy": best.performance.total_energy,
            # repro-lint: allow[serde-parity] derived: CandidateDesign.edp recomputes it from latency*energy
            "edp": best.edp,
        },
        "trace": outcome.trace.to_dict(),
    }


def outcome_from_dict(payload: dict[str, Any]) -> SearchOutcome:
    """Rebuild a :class:`SearchOutcome` written by :func:`outcome_to_dict`.

    Per-layer performance results and non-best candidates are not persisted;
    the restored outcome carries the best design's aggregate latency/energy
    (``per_layer`` is empty) and an empty candidate list — but the *count*
    of evaluated candidates survives via ``serialized_candidate_count``, so
    ``outcome.num_candidates`` and re-serialization are lossless.
    """
    best_payload = payload["best"]
    performance = NetworkPerformance(
        total_latency=float(best_payload["total_latency"]),
        total_energy=float(best_payload["total_energy"]),
        per_layer=(),
    )
    best = CandidateDesign(
        hardware=hardware_from_dict(best_payload["hardware"]),
        mappings=[Mapping.from_dict(entry) for entry in best_payload["mappings"]],
        performance=performance,
    )
    return SearchOutcome(
        method=payload["method"],
        best=best,
        trace=SearchTrace.from_dict(payload["trace"]),
        wall_time_seconds=float(payload.get("wall_time_seconds", 0.0)),
        seed=payload.get("seed"),
        settings=dict(payload.get("settings", {})),
        network=payload.get("network", ""),
        interrupted=bool(payload.get("interrupted", False)),
        serialized_candidate_count=int(payload.get("num_candidates", 0)),
    )


def deterministic_outcome_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Strip the nondeterministic fields from an outcome payload.

    ``wall_time_seconds`` is the only field of :func:`outcome_to_dict` that
    varies between bit-reproducible runs of the same seeded search; dropping
    it leaves a payload two such runs produce *identically*, whichever
    machine or process ran them.
    """
    payload = dict(payload)
    payload.pop("wall_time_seconds", None)
    return payload


def canonical_outcome_json(source: SearchOutcome | dict[str, Any],
                           deterministic: bool = True) -> str:
    """One canonical JSON text per outcome, for byte-for-byte comparison.

    Accepts a live :class:`SearchOutcome` or an already-serialized payload
    dict (e.g. one reloaded from a campaign store) — both produce the same
    bytes for the same search, because JSON round-trips floats exactly.  With
    ``deterministic=True`` (the default) the wall-clock field is stripped, so
    a service-run job can be byte-compared against an offline
    :func:`repro.optimize` run with the same seed.  Keys are sorted and the
    layout fixed (2-space indent, trailing newline).
    """
    payload = source if isinstance(source, dict) else outcome_to_dict(source)
    if deterministic:
        payload = deterministic_outcome_payload(payload)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def save_outcome(path: str | Path, outcome: SearchOutcome) -> Path:
    """Write a unified search outcome to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    write_atomic(path, json.dumps(outcome_to_dict(outcome), indent=2))
    return path


def load_outcome(path: str | Path) -> SearchOutcome:
    """Load a search outcome previously written by :func:`save_outcome`."""
    return outcome_from_dict(json.loads(Path(path).read_text()))
