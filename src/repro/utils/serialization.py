"""JSON persistence for search results and experiment artifacts.

Search runs are expensive; these helpers let the examples and experiment
harnesses save the winning design (hardware + per-layer mappings + trace) and
reload it later for re-evaluation, which is how the paper's artifact ships the
DOSA-generated mappings to the FireSim evaluation step.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.arch.config import HardwareConfig
from repro.mapping.mapping import Mapping


def hardware_to_dict(config: HardwareConfig) -> dict[str, int]:
    return {
        "pe_dim": config.pe_dim,
        "accumulator_kb": config.accumulator_kb,
        "scratchpad_kb": config.scratchpad_kb,
    }


def hardware_from_dict(payload: dict[str, Any]) -> HardwareConfig:
    return HardwareConfig(
        pe_dim=int(payload["pe_dim"]),
        accumulator_kb=int(payload["accumulator_kb"]),
        scratchpad_kb=int(payload["scratchpad_kb"]),
    )


def design_to_dict(hardware: HardwareConfig, mappings: list[Mapping],
                   metadata: dict[str, Any] | None = None) -> dict[str, Any]:
    """Serialize a co-design point (hardware + one mapping per unique layer)."""
    return {
        "hardware": hardware_to_dict(hardware),
        "mappings": [m.as_dict() for m in mappings],
        "metadata": metadata or {},
    }


def design_from_dict(payload: dict[str, Any]) -> tuple[HardwareConfig, list[Mapping], dict]:
    hardware = hardware_from_dict(payload["hardware"])
    mappings = [Mapping.from_dict(entry) for entry in payload["mappings"]]
    return hardware, mappings, dict(payload.get("metadata", {}))


def save_design(path: str | Path, hardware: HardwareConfig, mappings: list[Mapping],
                metadata: dict[str, Any] | None = None) -> Path:
    """Write a co-design point to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(design_to_dict(hardware, mappings, metadata), indent=2))
    return path


def load_design(path: str | Path) -> tuple[HardwareConfig, list[Mapping], dict]:
    """Load a co-design point previously written by :func:`save_design`."""
    payload = json.loads(Path(path).read_text())
    return design_from_dict(payload)
