"""Complete-or-absent file writes shared by the store and the service.

One durable-write idiom, used everywhere a file must never be observed
half-written: write to a sibling temporary file, flush + fsync it, atomically
rename it over the target, then fsync the directory so the rename itself is
durable.  Readers therefore see either the previous complete content or the
new complete content, never a partial file — the property the campaign
store's manifest/segment writes and the service's job records rely on for
crash-safe restart.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def write_atomic(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (temp + fsync + rename).

    The temporary sibling gets a unique name (``mkstemp``), so concurrent
    writers of the same target cannot trip over each other's temp file —
    the two renames serialize and the last complete write wins, which is
    exactly the semantics readers of an atomically-replaced file expect.
    """
    path = Path(path)
    fd, temp = tempfile.mkstemp(dir=path.parent,
                                prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.chmod(temp, 0o644)  # mkstemp defaults to 0600
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise
    directory_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return path


def write_json_atomic(path: str | Path, payload: Any, indent: int = 2) -> Path:
    """Atomically write ``payload`` as JSON (trailing newline included)."""
    return write_atomic(path, json.dumps(payload, indent=indent) + "\n")
