"""Seven-dimensional layer representation (R, S, P, Q, C, K, N).

A layer is a single tensor contraction: a convolution with R x S kernels over
C input channels producing K output channels on a P x Q output feature map for
a batch of N, or a matrix multiplication expressed as the special case
R = S = 1, P = 1 (or Q = 1).  Strides enter the input-size calculation
(Equation 3 of the paper) and are carried on the layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.utils.math_utils import divisors

# Canonical dimension order used everywhere in the reproduction.
DIMENSIONS: tuple[str, ...] = ("R", "S", "P", "Q", "C", "K", "N")

# Paper Section 4.1.1: dimension subsets relevant to each tensor.
WEIGHT_DIMS: frozenset[str] = frozenset({"R", "S", "C", "K"})
INPUT_DIMS: frozenset[str] = frozenset({"R", "S", "P", "Q", "C", "N"})
OUTPUT_DIMS: frozenset[str] = frozenset({"P", "Q", "K", "N"})

TENSOR_DIMS: dict[str, frozenset[str]] = {
    "W": WEIGHT_DIMS,
    "I": INPUT_DIMS,
    "O": OUTPUT_DIMS,
}

TENSORS: tuple[str, ...] = ("W", "I", "O")


@dataclass(frozen=True)
class LayerDims:
    """Problem dimensions of one DNN layer plus convolution strides.

    Attributes mirror the paper's notation.  ``repeats`` counts how many times
    a layer with identical dimensions appears in the parent network; repeated
    layers share a single mapping whose energy and latency are scaled by the
    repetition count (Section 4.5).
    """

    R: int = 1
    S: int = 1
    P: int = 1
    Q: int = 1
    C: int = 1
    K: int = 1
    N: int = 1
    stride_p: int = 1
    stride_q: int = 1
    name: str = ""
    repeats: int = 1

    def __post_init__(self) -> None:
        for dim in DIMENSIONS:
            value = getattr(self, dim)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"dimension {dim} must be a positive integer, got {value!r}")
        if self.stride_p < 1 or self.stride_q < 1:
            raise ValueError("strides must be positive integers")
        if self.repeats < 1:
            raise ValueError("repeats must be a positive integer")

    # ------------------------------------------------------------------ #
    # Dimension access
    # ------------------------------------------------------------------ #
    def dim(self, name: str) -> int:
        """Size of problem dimension ``name`` (one of R,S,P,Q,C,K,N)."""
        if name not in DIMENSIONS:
            raise KeyError(f"unknown dimension {name!r}")
        return int(getattr(self, name))

    def dims(self) -> dict[str, int]:
        """All seven dimensions as an ordered mapping."""
        return {d: self.dim(d) for d in DIMENSIONS}

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self.dims().items())

    def divisors_of(self, name: str) -> tuple[int, ...]:
        """All valid (divisor) tiling factors of dimension ``name``."""
        return divisors(self.dim(name))

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations in the layer."""
        total = 1
        for dim in DIMENSIONS:
            total *= self.dim(dim)
        return total

    @property
    def input_height(self) -> int:
        """Input activation height implied by P, R and the stride."""
        return self.stride_p * (self.P - 1) + self.R

    @property
    def input_width(self) -> int:
        """Input activation width implied by Q, S and the stride."""
        return self.stride_q * (self.Q - 1) + self.S

    def tensor_size(self, tensor: str) -> int:
        """Number of words in tensor ``tensor`` ('W', 'I', or 'O')."""
        if tensor == "W":
            return self.R * self.S * self.C * self.K
        if tensor == "I":
            return self.N * self.C * self.input_height * self.input_width
        if tensor == "O":
            return self.N * self.K * self.P * self.Q
        raise KeyError(f"unknown tensor {tensor!r}")

    @property
    def is_matmul(self) -> bool:
        """True when the layer degenerates to a matrix multiplication."""
        return self.R == 1 and self.S == 1 and self.stride_p == 1 and self.stride_q == 1

    @property
    def arithmetic_intensity(self) -> float:
        """MACs per word of unique tensor data (a roofline-style indicator)."""
        total_words = sum(self.tensor_size(t) for t in TENSORS)
        return self.macs / total_words

    def dims_key(self) -> tuple[int, ...]:
        """Hashable key of the problem dimensions and strides (ignores name)."""
        return (
            self.R, self.S, self.P, self.Q, self.C, self.K, self.N,
            self.stride_p, self.stride_q,
        )

    def with_repeats(self, repeats: int) -> "LayerDims":
        """Copy of this layer with a different repetition count."""
        return LayerDims(
            R=self.R, S=self.S, P=self.P, Q=self.Q, C=self.C, K=self.K, N=self.N,
            stride_p=self.stride_p, stride_q=self.stride_q,
            name=self.name, repeats=repeats,
        )

    def __str__(self) -> str:
        label = self.name or "layer"
        dims = " ".join(f"{d}={self.dim(d)}" for d in DIMENSIONS)
        stride = f" stride={self.stride_p}x{self.stride_q}" if (self.stride_p, self.stride_q) != (1, 1) else ""
        reps = f" x{self.repeats}" if self.repeats > 1 else ""
        return f"{label}: {dims}{stride}{reps}"


def conv2d_layer(
    in_channels: int,
    out_channels: int,
    output_size: int | tuple[int, int],
    kernel_size: int | tuple[int, int] = 3,
    stride: int | tuple[int, int] = 1,
    batch: int = 1,
    name: str = "",
    repeats: int = 1,
) -> LayerDims:
    """Construct a convolution layer from the usual framework-style arguments."""
    p, q = output_size if isinstance(output_size, tuple) else (output_size, output_size)
    r, s = kernel_size if isinstance(kernel_size, tuple) else (kernel_size, kernel_size)
    stride_p, stride_q = stride if isinstance(stride, tuple) else (stride, stride)
    return LayerDims(
        R=r, S=s, P=p, Q=q, C=in_channels, K=out_channels, N=batch,
        stride_p=stride_p, stride_q=stride_q, name=name, repeats=repeats,
    )


def matmul_layer(
    m: int,
    k: int,
    n: int,
    batch: int = 1,
    name: str = "",
    repeats: int = 1,
) -> LayerDims:
    """Construct a matrix multiplication ``(M x K) @ (K x N)`` as a 7-dim layer.

    Following the common Timeloop convention for GEMM-as-convolution, the
    reduction dimension maps to C, the output-column dimension to K, and the
    output-row dimension to P (with R = S = Q = 1).
    """
    return LayerDims(
        R=1, S=1, P=m, Q=1, C=k, K=n, N=batch, name=name, repeats=repeats,
    )


def depthwise_as_grouped_convs(
    channels: int,
    output_size: int,
    kernel_size: int = 3,
    stride: int = 1,
    batch: int = 1,
    name: str = "",
    repeats: int = 1,
) -> LayerDims:
    """Approximate a depthwise convolution as a single-input-channel conv.

    Gemmini's weight-stationary dataflow has no native depthwise support; the
    standard lowering treats each channel as an independent C=1 convolution,
    which we fold into one layer with the channel count on K and the
    repetition count absorbing the group dimension is *not* done here —
    instead the layer keeps C=1, K=channels, which matches how Timeloop
    workloads describe depthwise layers.
    """
    return conv2d_layer(
        in_channels=1,
        out_channels=channels,
        output_size=output_size,
        kernel_size=kernel_size,
        stride=stride,
        batch=batch,
        name=name,
        repeats=repeats,
    )
