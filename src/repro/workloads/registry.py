"""Cross-network layer collections.

The model-correlation study (Figure 4) draws random mappings for a pool of
unique layers collected across several networks; this module provides that
pooling plus small helpers for sampling layer subsets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.utils.rng import SeedLike, make_rng
from repro.workloads.layer import LayerDims
from repro.workloads.networks import Network, target_networks, training_networks


def unique_layers_across(networks: Iterable[Network]) -> list[LayerDims]:
    """All layers with distinct dimensions across ``networks`` (repeats reset to 1)."""
    seen: dict[tuple[int, ...], LayerDims] = {}
    for network in networks:
        for layer in network.layers:
            key = layer.dims_key()
            if key not in seen:
                seen[key] = layer.with_repeats(1)
    return list(seen.values())


def correlation_layer_pool() -> list[LayerDims]:
    """Layer pool used for the differentiable-model correlation study (Fig. 4).

    The paper samples 73 unique matrix-multiplication and convolution layers;
    pooling the target and training networks here yields a comparable set.
    """
    return unique_layers_across(target_networks() + training_networks())


def sample_layers(
    layers: Sequence[LayerDims],
    count: int,
    seed: SeedLike = None,
) -> list[LayerDims]:
    """Sample ``count`` layers (with replacement if count exceeds the pool)."""
    if not layers:
        raise ValueError("cannot sample from an empty layer pool")
    rng = make_rng(seed)
    replace = count > len(layers)
    indices = rng.choice(len(layers), size=count, replace=replace)
    return [layers[int(i)] for i in indices]
