"""Network definitions for the training and target workloads of Table 6.

Target workloads (evaluated by DOSA): BERT, ResNet-50, RetinaNet (layers not
in its ResNet backbone) and U-Net.  Training workloads (used to fit the
DNN-based latency-difference predictor): AlexNet, ResNeXt-50 (32x4d), VGG-16
and a DeepBench subset (OCR and face-recognition GEMMs).

Layer dimensions follow the standard ImageNet/SQuAD-style shapes used by the
published architectures.  Layers with identical dimensions are de-duplicated;
the repetition count multiplies that layer's energy and latency when a whole
network is evaluated (paper Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.workloads.layer import LayerDims, conv2d_layer, matmul_layer


@dataclass
class Network:
    """A named collection of layers with de-duplicated repetition counts."""

    name: str
    layers: list[LayerDims] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"network {self.name!r} has no layers")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def total_macs(self) -> int:
        """Total MACs across the network, accounting for layer repetitions."""
        return sum(layer.macs * layer.repeats for layer in self.layers)

    @property
    def num_unique_layers(self) -> int:
        return len(self.layers)

    @property
    def num_layer_instances(self) -> int:
        """Number of layer executions including repetitions."""
        return sum(layer.repeats for layer in self.layers)

    def describe(self) -> str:
        lines = [f"{self.name}: {self.num_unique_layers} unique layers, "
                 f"{self.num_layer_instances} instances, {self.total_macs:,} MACs"]
        lines.extend(f"  {layer}" for layer in self.layers)
        return "\n".join(lines)


def _deduplicate(name: str, layers: Iterable[LayerDims]) -> Network:
    """Merge layers with identical dimensions, summing their repeat counts."""
    merged: dict[tuple[int, ...], LayerDims] = {}
    order: list[tuple[int, ...]] = []
    for layer in layers:
        key = layer.dims_key()
        if key in merged:
            existing = merged[key]
            merged[key] = existing.with_repeats(existing.repeats + layer.repeats)
        else:
            merged[key] = layer
            order.append(key)
    return Network(name=name, layers=[merged[key] for key in order])


# --------------------------------------------------------------------------- #
# Target workloads
# --------------------------------------------------------------------------- #
def resnet50(batch: int = 1) -> Network:
    """ResNet-50 (He et al., 2016) for 224x224 ImageNet inputs."""
    layers: list[LayerDims] = [
        conv2d_layer(3, 64, 112, kernel_size=7, stride=2, batch=batch, name="conv1"),
    ]

    def bottleneck_stage(stage: str, in_ch: int, mid_ch: int, out_ch: int,
                         size: int, blocks: int, first_stride: int) -> None:
        # First block: projection shortcut plus strided 3x3.
        layers.append(conv2d_layer(in_ch, mid_ch, size, kernel_size=1,
                                   stride=first_stride, batch=batch,
                                   name=f"{stage}_b1_conv1x1_reduce"))
        layers.append(conv2d_layer(mid_ch, mid_ch, size, kernel_size=3,
                                   batch=batch, name=f"{stage}_b1_conv3x3"))
        layers.append(conv2d_layer(mid_ch, out_ch, size, kernel_size=1,
                                   batch=batch, name=f"{stage}_b1_conv1x1_expand"))
        layers.append(conv2d_layer(in_ch, out_ch, size, kernel_size=1,
                                   stride=first_stride, batch=batch,
                                   name=f"{stage}_b1_shortcut"))
        # Remaining identity blocks share dimensions, so use repeats.
        if blocks > 1:
            layers.append(conv2d_layer(out_ch, mid_ch, size, kernel_size=1, batch=batch,
                                       name=f"{stage}_bN_conv1x1_reduce",
                                       repeats=blocks - 1))
            layers.append(conv2d_layer(mid_ch, mid_ch, size, kernel_size=3, batch=batch,
                                       name=f"{stage}_bN_conv3x3", repeats=blocks - 1))
            layers.append(conv2d_layer(mid_ch, out_ch, size, kernel_size=1, batch=batch,
                                       name=f"{stage}_bN_conv1x1_expand",
                                       repeats=blocks - 1))

    bottleneck_stage("conv2", 64, 64, 256, 56, blocks=3, first_stride=1)
    bottleneck_stage("conv3", 256, 128, 512, 28, blocks=4, first_stride=2)
    bottleneck_stage("conv4", 512, 256, 1024, 14, blocks=6, first_stride=2)
    bottleneck_stage("conv5", 1024, 512, 2048, 7, blocks=3, first_stride=2)
    layers.append(matmul_layer(1, 2048, 1000, batch=batch, name="fc1000"))
    return _deduplicate("resnet50", layers)


def bert_base(sequence_length: int = 512, batch: int = 1) -> Network:
    """BERT-base encoder (12 layers, hidden 768, 12 heads) as GEMM layers."""
    hidden = 768
    heads = 12
    head_dim = hidden // heads
    ffn = 4 * hidden
    num_layers = 12
    layers = [
        matmul_layer(sequence_length, hidden, hidden, batch=batch,
                     name="qkv_projection", repeats=3 * num_layers),
        matmul_layer(sequence_length, head_dim, sequence_length, batch=batch,
                     name="attention_scores", repeats=heads * num_layers),
        matmul_layer(sequence_length, sequence_length, head_dim, batch=batch,
                     name="attention_context", repeats=heads * num_layers),
        matmul_layer(sequence_length, hidden, hidden, batch=batch,
                     name="attention_output", repeats=num_layers),
        matmul_layer(sequence_length, hidden, ffn, batch=batch,
                     name="ffn_up", repeats=num_layers),
        matmul_layer(sequence_length, ffn, hidden, batch=batch,
                     name="ffn_down", repeats=num_layers),
    ]
    return _deduplicate("bert", layers)


def unet(input_size: int = 256, base_channels: int = 64, batch: int = 1) -> Network:
    """2-D U-Net (Ronneberger et al., 2015) encoder-decoder for segmentation."""
    layers: list[LayerDims] = []
    channels = [base_channels * (2**i) for i in range(5)]  # 64..1024
    size = input_size
    in_ch = 1
    # Contracting path: two 3x3 convs per level, then 2x2 downsample.
    for level, ch in enumerate(channels):
        layers.append(conv2d_layer(in_ch, ch, size, kernel_size=3, batch=batch,
                                   name=f"enc{level}_conv1"))
        layers.append(conv2d_layer(ch, ch, size, kernel_size=3, batch=batch,
                                   name=f"enc{level}_conv2"))
        in_ch = ch
        if level < len(channels) - 1:
            size //= 2
    # Expanding path: upsample (2x2 transposed conv), concatenate skip, two 3x3 convs.
    for level in range(len(channels) - 2, -1, -1):
        size *= 2
        up_out = channels[level]
        layers.append(conv2d_layer(in_ch, up_out, size, kernel_size=2, batch=batch,
                                   name=f"dec{level}_upconv"))
        layers.append(conv2d_layer(up_out * 2, up_out, size, kernel_size=3, batch=batch,
                                   name=f"dec{level}_conv1"))
        layers.append(conv2d_layer(up_out, up_out, size, kernel_size=3, batch=batch,
                                   name=f"dec{level}_conv2"))
        in_ch = up_out
    layers.append(conv2d_layer(base_channels, 2, input_size, kernel_size=1, batch=batch,
                               name="segmentation_head"))
    return _deduplicate("unet", layers)


def retinanet_heads(input_size: int = 640, num_classes: int = 80,
                    anchors: int = 9, batch: int = 1) -> Network:
    """RetinaNet layers outside its ResNet backbone: FPN plus class/box subnets.

    The paper evaluates RetinaNet "on layers that are not part of its ResNet
    backbone" (Table 6), i.e. the feature pyramid laterals/outputs and the
    classification and box regression heads shared across pyramid levels
    P3-P7.
    """
    fpn_channels = 256
    backbone_channels = {8: 512, 16: 1024, 32: 2048}  # C3, C4, C5 strides
    pyramid_sizes = [input_size // stride for stride in (8, 16, 32, 64, 128)]
    layers: list[LayerDims] = []
    # Lateral 1x1 convs from backbone feature maps C3-C5.
    for stride, ch in backbone_channels.items():
        layers.append(conv2d_layer(ch, fpn_channels, input_size // stride, kernel_size=1,
                                   batch=batch, name=f"fpn_lateral_s{stride}"))
    # 3x3 output convs on P3-P5, plus P6/P7 convs.
    for size in pyramid_sizes[:3]:
        layers.append(conv2d_layer(fpn_channels, fpn_channels, size, kernel_size=3,
                                   batch=batch, name=f"fpn_output_{size}"))
    layers.append(conv2d_layer(2048, fpn_channels, pyramid_sizes[3], kernel_size=3, stride=2,
                               batch=batch, name="fpn_p6"))
    layers.append(conv2d_layer(fpn_channels, fpn_channels, pyramid_sizes[4], kernel_size=3,
                               stride=2, batch=batch, name="fpn_p7"))
    # Classification and box subnets: four 3x3 convs plus a prediction conv,
    # applied at each of the five pyramid levels.
    for size in pyramid_sizes:
        layers.append(conv2d_layer(fpn_channels, fpn_channels, size, kernel_size=3,
                                   batch=batch, name=f"subnet_conv_{size}", repeats=8))
        layers.append(conv2d_layer(fpn_channels, anchors * num_classes, size, kernel_size=3,
                                   batch=batch, name=f"cls_pred_{size}"))
        layers.append(conv2d_layer(fpn_channels, anchors * 4, size, kernel_size=3,
                                   batch=batch, name=f"box_pred_{size}"))
    return _deduplicate("retinanet", layers)


# --------------------------------------------------------------------------- #
# Training workloads (for the DNN latency-difference predictor)
# --------------------------------------------------------------------------- #
def alexnet(batch: int = 1) -> Network:
    """AlexNet (Krizhevsky et al., 2012)."""
    layers = [
        conv2d_layer(3, 64, 55, kernel_size=11, stride=4, batch=batch, name="conv1"),
        conv2d_layer(64, 192, 27, kernel_size=5, batch=batch, name="conv2"),
        conv2d_layer(192, 384, 13, kernel_size=3, batch=batch, name="conv3"),
        conv2d_layer(384, 256, 13, kernel_size=3, batch=batch, name="conv4"),
        conv2d_layer(256, 256, 13, kernel_size=3, batch=batch, name="conv5"),
        matmul_layer(1, 9216, 4096, batch=batch, name="fc6"),
        matmul_layer(1, 4096, 4096, batch=batch, name="fc7"),
        matmul_layer(1, 4096, 1000, batch=batch, name="fc8"),
    ]
    return _deduplicate("alexnet", layers)


def vgg16(batch: int = 1) -> Network:
    """VGG-16 (Simonyan & Zisserman, 2014)."""
    cfg = [
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    layers = [
        conv2d_layer(in_ch, out_ch, size, kernel_size=3, batch=batch,
                     name=f"conv_{i}")
        for i, (in_ch, out_ch, size) in enumerate(cfg)
    ]
    layers.extend([
        matmul_layer(1, 25088, 4096, batch=batch, name="fc1"),
        matmul_layer(1, 4096, 4096, batch=batch, name="fc2"),
        matmul_layer(1, 4096, 1000, batch=batch, name="fc3"),
    ])
    return _deduplicate("vgg16", layers)


def resnext50_32x4d(batch: int = 1) -> Network:
    """ResNeXt-50 (32x4d).  Grouped 3x3 convolutions are expressed per group
    (C and K divided by the 32 groups) with the group count folded into the
    layer repetition."""
    groups = 32
    layers: list[LayerDims] = [
        conv2d_layer(3, 64, 112, kernel_size=7, stride=2, batch=batch, name="conv1"),
    ]

    def stage(name: str, in_ch: int, width: int, out_ch: int, size: int,
              blocks: int, first_stride: int) -> None:
        group_width = width // groups
        layers.append(conv2d_layer(in_ch, width, size, kernel_size=1, stride=first_stride,
                                   batch=batch, name=f"{name}_b1_reduce"))
        layers.append(conv2d_layer(group_width, group_width, size, kernel_size=3, batch=batch,
                                   name=f"{name}_b1_grouped3x3", repeats=groups))
        layers.append(conv2d_layer(width, out_ch, size, kernel_size=1, batch=batch,
                                   name=f"{name}_b1_expand"))
        layers.append(conv2d_layer(in_ch, out_ch, size, kernel_size=1, stride=first_stride,
                                   batch=batch, name=f"{name}_b1_shortcut"))
        if blocks > 1:
            layers.append(conv2d_layer(out_ch, width, size, kernel_size=1, batch=batch,
                                       name=f"{name}_bN_reduce", repeats=blocks - 1))
            layers.append(conv2d_layer(group_width, group_width, size, kernel_size=3,
                                       batch=batch, name=f"{name}_bN_grouped3x3",
                                       repeats=groups * (blocks - 1)))
            layers.append(conv2d_layer(width, out_ch, size, kernel_size=1, batch=batch,
                                       name=f"{name}_bN_expand", repeats=blocks - 1))

    stage("conv2", 64, 128, 256, 56, blocks=3, first_stride=1)
    stage("conv3", 256, 256, 512, 28, blocks=4, first_stride=2)
    stage("conv4", 512, 512, 1024, 14, blocks=6, first_stride=2)
    stage("conv5", 1024, 1024, 2048, 7, blocks=3, first_stride=2)
    layers.append(matmul_layer(1, 2048, 1000, batch=batch, name="fc1000"))
    return _deduplicate("resnext50_32x4d", layers)


def deepbench_subset(batch: int = 1) -> Network:
    """A subset of Baidu DeepBench inference GEMMs and convolutions.

    The OCR and face-recognition entries used by the paper as additional
    training-set diversity: large skinny GEMMs plus a few mid-size convs.
    """
    layers = [
        # OCR-style GEMMs (RNN/attention projections).
        matmul_layer(5124, 700, 2048, batch=batch, name="ocr_gemm_1"),
        matmul_layer(35, 700, 2048, batch=batch, name="ocr_gemm_2"),
        matmul_layer(3072, 1024, 1024, batch=batch, name="ocr_gemm_3"),
        matmul_layer(512, 2816, 1024, batch=batch, name="ocr_gemm_4"),
        matmul_layer(512, 2048, 1024, batch=batch, name="ocr_gemm_5"),
        # Face-recognition style convolutions (DeepBench "Face Recognition").
        conv2d_layer(64, 64, 56, kernel_size=3, batch=batch, name="face_conv_1"),
        conv2d_layer(128, 128, 28, kernel_size=3, batch=batch, name="face_conv_2"),
        conv2d_layer(256, 256, 14, kernel_size=3, batch=batch, name="face_conv_3"),
        conv2d_layer(512, 512, 7, kernel_size=3, batch=batch, name="face_conv_4"),
        conv2d_layer(3, 64, 112, kernel_size=7, stride=2, batch=batch, name="face_stem"),
    ]
    return _deduplicate("deepbench", layers)


# --------------------------------------------------------------------------- #
# Additional workloads (not part of the paper's Table 6)
# --------------------------------------------------------------------------- #
def mobilenet_v2(batch: int = 1) -> Network:
    """MobileNet-V2 for 224x224 inputs, with depthwise stages lowered per-channel.

    Included beyond the paper's workload set because its depthwise separable
    convolutions stress the mapper very differently from ResNet-style blocks
    (C=1 depthwise layers have no input-channel parallelism for the WS
    dataflow to exploit).
    """
    layers: list[LayerDims] = [
        conv2d_layer(3, 32, 112, kernel_size=3, stride=2, batch=batch, name="stem"),
    ]

    # (expansion, out_channels, blocks, stride, output size after the stage)
    inverted_residuals = [
        (1, 16, 1, 1, 112),
        (6, 24, 2, 2, 56),
        (6, 32, 3, 2, 28),
        (6, 64, 4, 2, 14),
        (6, 96, 3, 1, 14),
        (6, 160, 3, 2, 7),
        (6, 320, 1, 1, 7),
    ]
    in_ch = 32
    for expansion, out_ch, blocks, stride, size in inverted_residuals:
        hidden = in_ch * expansion
        if expansion != 1:
            layers.append(conv2d_layer(in_ch, hidden, size * stride if stride > 1 else size,
                                       kernel_size=1, batch=batch,
                                       name=f"expand_{out_ch}", repeats=1))
        # Depthwise 3x3 lowered to per-channel C=1 convolutions; the channel
        # count is absorbed into the repetition count.
        layers.append(conv2d_layer(1, 1, size, kernel_size=3, stride=stride, batch=batch,
                                   name=f"depthwise_{out_ch}", repeats=hidden))
        layers.append(conv2d_layer(hidden, out_ch, size, kernel_size=1, batch=batch,
                                   name=f"project_{out_ch}"))
        if blocks > 1:
            hidden = out_ch * expansion
            layers.append(conv2d_layer(out_ch, hidden, size, kernel_size=1, batch=batch,
                                       name=f"expand_{out_ch}_rest", repeats=blocks - 1))
            layers.append(conv2d_layer(1, 1, size, kernel_size=3, batch=batch,
                                       name=f"depthwise_{out_ch}_rest",
                                       repeats=hidden * (blocks - 1)))
            layers.append(conv2d_layer(hidden, out_ch, size, kernel_size=1, batch=batch,
                                       name=f"project_{out_ch}_rest", repeats=blocks - 1))
        in_ch = out_ch
    layers.append(conv2d_layer(320, 1280, 7, kernel_size=1, batch=batch, name="head_conv"))
    layers.append(matmul_layer(1, 1280, 1000, batch=batch, name="classifier"))
    return _deduplicate("mobilenet_v2", layers)


def gpt2_decoder(sequence_length: int = 1024, hidden: int = 768, num_layers: int = 12,
                 batch: int = 1) -> Network:
    """A GPT-2-small-style decoder stack expressed as GEMM layers.

    Included beyond the paper's workload set as a larger-sequence transformer
    target; useful for exercising the mapper on long, skinny GEMMs.
    """
    heads = hidden // 64
    head_dim = hidden // heads
    ffn = 4 * hidden
    layers = [
        matmul_layer(sequence_length, hidden, 3 * hidden, batch=batch,
                     name="qkv_fused", repeats=num_layers),
        matmul_layer(sequence_length, head_dim, sequence_length, batch=batch,
                     name="attention_scores", repeats=heads * num_layers),
        matmul_layer(sequence_length, sequence_length, head_dim, batch=batch,
                     name="attention_context", repeats=heads * num_layers),
        matmul_layer(sequence_length, hidden, hidden, batch=batch,
                     name="attention_output", repeats=num_layers),
        matmul_layer(sequence_length, hidden, ffn, batch=batch,
                     name="ffn_up", repeats=num_layers),
        matmul_layer(sequence_length, ffn, hidden, batch=batch,
                     name="ffn_down", repeats=num_layers),
        matmul_layer(sequence_length, hidden, 50257, batch=batch, name="lm_head"),
    ]
    return _deduplicate("gpt2_decoder", layers)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
NETWORK_BUILDERS: dict[str, Callable[..., Network]] = {
    "resnet50": resnet50,
    "bert": bert_base,
    "unet": unet,
    "retinanet": retinanet_heads,
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnext50_32x4d": resnext50_32x4d,
    "deepbench": deepbench_subset,
    "mobilenet_v2": mobilenet_v2,
    "gpt2_decoder": gpt2_decoder,
}

TARGET_WORKLOAD_NAMES: tuple[str, ...] = ("unet", "resnet50", "bert", "retinanet")
TRAINING_WORKLOAD_NAMES: tuple[str, ...] = (
    "alexnet", "resnext50_32x4d", "vgg16", "deepbench",
)


def get_network(name: str, **kwargs) -> Network:
    """Build a network by registry name (see ``NETWORK_BUILDERS``)."""
    if name not in NETWORK_BUILDERS:
        raise KeyError(f"unknown network {name!r}; options: {sorted(NETWORK_BUILDERS)}")
    return NETWORK_BUILDERS[name](**kwargs)


def target_networks(batch: int = 1) -> list[Network]:
    """The four target workloads evaluated in Section 6 (Table 6, right)."""
    return [get_network(name, batch=batch) for name in TARGET_WORKLOAD_NAMES]


def training_networks(batch: int = 1) -> list[Network]:
    """The training workloads used to fit the DNN predictor (Table 6, left)."""
    return [get_network(name, batch=batch) for name in TRAINING_WORKLOAD_NAMES]
