"""DNN workload definitions.

The paper expresses every matrix-multiplication and convolution layer with
seven problem dimensions (Section 3.1.1): R and S (weight height/width), P and
Q (output activation height/width), C (input channels), K (output channels)
and N (batch).  This package provides the :class:`LayerDims` representation,
constructors for conv/matmul layers, and the full target and training network
definitions of Table 6.
"""

from repro.workloads.layer import (
    DIMENSIONS,
    WEIGHT_DIMS,
    INPUT_DIMS,
    OUTPUT_DIMS,
    LayerDims,
    conv2d_layer,
    matmul_layer,
    depthwise_as_grouped_convs,
)
from repro.workloads.networks import (
    Network,
    alexnet,
    vgg16,
    resnext50_32x4d,
    deepbench_subset,
    resnet50,
    bert_base,
    unet,
    retinanet_heads,
    training_networks,
    target_networks,
    get_network,
    NETWORK_BUILDERS,
)

__all__ = [
    "DIMENSIONS",
    "WEIGHT_DIMS",
    "INPUT_DIMS",
    "OUTPUT_DIMS",
    "LayerDims",
    "conv2d_layer",
    "matmul_layer",
    "depthwise_as_grouped_convs",
    "Network",
    "alexnet",
    "vgg16",
    "resnext50_32x4d",
    "deepbench_subset",
    "resnet50",
    "bert_base",
    "unet",
    "retinanet_heads",
    "training_networks",
    "target_networks",
    "get_network",
    "NETWORK_BUILDERS",
]
