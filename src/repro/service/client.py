"""A resilient stdlib HTTP client for the search service.

Wraps the daemon's JSON API (submit / poll / stream / cancel / fetch) in
methods that speak the repo's own types where it helps (budgets, hardware
configs) and raw dicts elsewhere.  One ``http.client`` connection per
request — the service is a job queue, not a chat channel, and per-request
connections keep the client trivially thread-safe.

Resilience (all of it exercised by ``benchmarks/bench_chaos.py``):

* every request retries transient failures — 429/503 (honoring
  ``Retry-After``) and dropped/refused connections — with capped
  exponential backoff plus jitter,
* submits carry an **idempotency key** by default, so a retry whose first
  attempt actually landed returns the original job instead of double-running
  the search,
* :meth:`events` can auto-reconnect a dropped SSE stream with
  ``Last-Event-ID``, replaying exactly the missed frames (daemon restarts
  replay from the start: the event log is per-process),
* :meth:`wait` polls with capped exponential backoff and tolerates brief
  daemon restarts.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import uuid
from pathlib import Path
from typing import Any, Iterator, Mapping
from urllib.parse import quote, urlsplit

from repro.search.api import SearchBudget
from repro.utils.serialization import budget_to_dict, hardware_to_dict

#: Job states / SSE events after which nothing more will happen.
TERMINAL_STATES = ("done", "failed", "cancelled")
TERMINAL_EVENTS = ("done", "failed", "cancelled")

#: Cap on how long a server-sent ``Retry-After`` can make us sleep.
MAX_RETRY_AFTER = 30.0


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.reason = message
        self.retry_after = retry_after


class Client:
    """Talk to one running search-service daemon."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 4, backoff_base: float = 0.25,
                 backoff_cap: float = 4.0) -> None:
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} "
                             "(the service speaks plain http)")
        if parts.hostname is None:
            raise ValueError(f"no host in service URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Client-side retry jitter only (decorrelates a thundering herd of
        # retrying clients); never feeds anything result-affecting.
        self._jitter = random.Random()

    @classmethod
    def from_root(cls, root: str | Path, timeout: float = 60.0,
                  **kwargs: Any) -> "Client":
        """Discover the daemon through its ``<root>/service.json`` file."""
        endpoint_path = Path(root) / "service.json"
        try:
            endpoint = json.loads(endpoint_path.read_text())
        except OSError as error:
            raise ServiceError(
                0, f"no running service under {root} "
                   f"(cannot read {endpoint_path}: {error})") from None
        return cls(f"http://{endpoint['host']}:{endpoint['port']}",
                   timeout=timeout, **kwargs)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _backoff_delay(self, attempt: int,
                       retry_after: float | None = None) -> float:
        """Capped exponential backoff with jitter; honors ``Retry-After``."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._jitter.random()  # jitter in [0.5, 1.5)
        if retry_after is not None:
            delay = max(delay, min(retry_after, MAX_RETRY_AFTER))
        return delay

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None,
                 timeout: float | None = None,
                 retry: bool = True) -> tuple[int, bytes]:
        """One API call, with transparent retries on transient failures.

        Retries 429/503 (honoring ``Retry-After``) and transport-level
        errors (connection refused/reset, timeouts — a restarting daemon).
        Retrying is safe across the whole API: GETs and DELETEs are
        idempotent, and submit POSTs carry an idempotency key.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, timeout)
            except ServiceError as error:
                if retry and error.status in (429, 503) \
                        and attempt < self.retries:
                    time.sleep(self._backoff_delay(attempt,
                                                   error.retry_after))
                    attempt += 1
                    continue
                raise
            except (http.client.HTTPException, OSError):
                if retry and attempt < self.retries:
                    time.sleep(self._backoff_delay(attempt))
                    attempt += 1
                    continue
                raise

    def _request_once(self, method: str, path: str,
                      body: Mapping[str, Any] | None,
                      timeout: float | None) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            payload = None
            headers = {"Accept": "application/json"}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                raise self._error_from(response.status, data,
                                       response.getheader("Retry-After"))
            return response.status, data
        finally:
            connection.close()

    @staticmethod
    def _error_from(status: int, data: bytes,
                    retry_after: str | None) -> ServiceError:
        try:
            message = json.loads(data).get("error", data.decode(errors="replace"))
        except ValueError:
            message = data.decode(errors="replace")
        seconds: float | None = None
        if retry_after:
            # Retry-After may be delta-seconds or an HTTP-date; only the
            # numeric form is parsed, anything else falls back to None
            # (better an unhinted retry than a crashed client).
            try:
                seconds = float(retry_after)
            except ValueError:
                seconds = None
        return ServiceError(status, message, retry_after=seconds)

    def _get_json(self, path: str) -> dict:
        _, data = self._request("GET", path)
        return json.loads(data)

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def submit_search(self, network: str, strategy: str = "dosa",
                      seed: int = 0,
                      budget: int | Mapping[str, Any] | SearchBudget
                      | None = None,
                      settings: Mapping[str, Any] | None = None,
                      hardware: Any = None,
                      tenant: str | None = None,
                      idempotency_key: str | None = None) -> dict:
        """Submit one seeded search; returns the accepted job summary.

        A fresh ``idempotency_key`` is minted when none is given, so
        transparent submit retries (connection lost after the daemon
        accepted) can never double-run the job.
        """
        body: dict[str, Any] = {
            "kind": "search",
            "network": network,
            "strategy": strategy,
            "seed": seed,
            "idempotency_key": idempotency_key or f"c-{uuid.uuid4().hex}",
        }
        if budget is not None:
            body["budget"] = (budget_to_dict(budget)
                              if isinstance(budget, SearchBudget)
                              else budget)
        if settings:
            body["settings"] = dict(settings)
        if hardware is not None:
            body["hardware"] = (hardware if isinstance(hardware, Mapping)
                                else hardware_to_dict(hardware))
        if tenant is not None:
            body["tenant"] = tenant
        _, data = self._request("POST", "/v1/jobs", body=body)
        return json.loads(data)

    def submit_campaign(self, spec: Any,
                        tenant: str | None = None,
                        idempotency_key: str | None = None) -> dict:
        """Submit a whole campaign grid (a CampaignSpec or its dict form)."""
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        body: dict[str, Any] = {
            "kind": "campaign",
            "spec": payload,
            "idempotency_key": idempotency_key or f"c-{uuid.uuid4().hex}",
        }
        if tenant is not None:
            body["tenant"] = tenant
        _, data = self._request("POST", "/v1/jobs", body=body)
        return json.loads(data)

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{quote(job_id, safe='')}")

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs"
        if tenant is not None:
            path += f"?tenant={quote(tenant, safe='')}"
        return self._get_json(path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation (``DELETE``); returns the job summary.

        Cancellation is cooperative: a queued job is cancelled immediately,
        a running job stops at its next step with best-so-far persisted (a
        job that completes first stays ``done``)."""
        _, data = self._request("DELETE",
                                f"/v1/jobs/{quote(job_id, safe='')}")
        return json.loads(data)

    def result_bytes(self, job_id: str, deterministic: bool = True) -> bytes:
        """The raw result document — for search jobs, the canonical outcome
        JSON, byte-comparable against an offline run's canonical form."""
        flag = "1" if deterministic else "0"
        _, data = self._request(
            "GET",
            f"/v1/jobs/{quote(job_id, safe='')}/result?deterministic={flag}")
        return data

    def result(self, job_id: str, deterministic: bool = True) -> dict:
        return json.loads(self.result_bytes(job_id, deterministic))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2, poll_cap: float = 2.0,
             restart_grace: float = 20.0) -> dict:
        """Poll until the job reaches a terminal state; raise on failure.

        The poll interval backs off exponentially from ``poll`` up to
        ``poll_cap`` (a slow daemon is not hammered forever at 5 Hz).
        Transport errors are tolerated for up to ``restart_grace`` seconds
        beyond the per-request retries — long enough to ride out a daemon
        drain + restart, which re-registers every persisted job.  Returns
        the record for ``done`` and ``cancelled`` jobs; raises
        ``ServiceError`` (including the job's last event) for ``failed``.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.01, poll)
        last_contact = time.monotonic()
        while True:
            record = None
            try:
                record = self.job(job_id)
            except ServiceError:
                raise
            except (http.client.HTTPException, OSError) as error:
                if time.monotonic() - last_contact > restart_grace:
                    raise ServiceError(
                        0, f"lost the daemon while waiting for {job_id}: "
                           f"{error!r}") from None
            if record is not None:
                last_contact = time.monotonic()
                state = record["state"]
                if state in ("done", "cancelled"):
                    return record
                if state == "failed":
                    raise ServiceError(
                        500, self._failure_message(job_id, record))
            if time.monotonic() >= deadline:
                state = record["state"] if record is not None else "unreachable"
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:.0f}s")
            time.sleep(interval)
            interval = min(poll_cap, interval * 1.6)

    def _failure_message(self, job_id: str, record: Mapping[str, Any]) -> str:
        message = f"job {job_id} failed: {record.get('error')}"
        last = self._last_event(job_id)
        if last is not None:
            name, payload = last
            message += (f" (last event: {name} "
                        f"{json.dumps(payload, sort_keys=True)})")
        return message

    def _last_event(self, job_id: str) -> tuple[str, dict] | None:
        """The last event of a terminal job's stream (replay, then closed)."""
        try:
            last = None
            for _, name, payload in self._events_stream(job_id, None):
                last = (name, payload)
            return last
        except (ServiceError, http.client.HTTPException, OSError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # Events (SSE)
    # ------------------------------------------------------------------ #
    def events(self, job_id: str,
               last_event_id: int | str | None = None,
               reconnect: bool = False,
               reconnect_grace: float = 30.0) -> Iterator[tuple[str, dict]]:
        """Stream the job's server-sent events as ``(event, payload)`` pairs.

        Blocks on a dedicated connection until the daemon closes the stream
        (job reached a terminal state, or the daemon drained).  With
        ``reconnect=True``, a dropped connection — or a stream the daemon
        closed *without* a terminal frame, e.g. a drain — is transparently
        resumed with ``Last-Event-ID`` until a terminal event arrives:
        within one daemon process exactly the missed frames replay; across
        a daemon restart the fresh event log replays from its start.  Gives
        up (``ServiceError``) after ``reconnect_grace`` seconds without
        receiving anything.
        """
        if not reconnect:
            for _, name, payload in self._events_stream(job_id,
                                                        last_event_id):
                yield name, payload
            return
        last_seen = last_event_id
        last_alive = time.monotonic()
        attempt = 0
        while True:
            terminal = False
            try:
                for event_id, name, payload in self._events_stream(
                        job_id, last_seen):
                    last_alive = time.monotonic()
                    attempt = 0
                    if event_id is not None:
                        last_seen = event_id
                    yield name, payload
                    if name in TERMINAL_EVENTS:
                        terminal = True
            except ServiceError:
                raise  # 404 and friends are not transient
            except (http.client.HTTPException, OSError):
                pass  # dropped mid-stream; reconnect below
            if terminal:
                return
            if time.monotonic() - last_alive > reconnect_grace:
                raise ServiceError(
                    0, f"event stream for {job_id} lost for over "
                       f"{reconnect_grace:.0f}s")
            time.sleep(self._backoff_delay(attempt))
            attempt += 1

    def _events_stream(
            self, job_id: str,
            last_event_id: int | str | None) -> Iterator[tuple[str | None,
                                                               str, dict]]:
        """One SSE connection: yields ``(event_id, event, payload)``."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request(
                "GET", f"/v1/jobs/{quote(job_id, safe='')}/events",
                headers=headers)
            response = connection.getresponse()
            if response.status >= 400:
                raise self._error_from(response.status, response.read(),
                                       response.getheader("Retry-After"))
            event, event_id, data_lines = None, None, []
            for raw in response:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("id:"):
                    event_id = line[len("id:"):].strip()
                elif line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line:
                    if event is not None or data_lines:
                        payload = json.loads("\n".join(data_lines) or "{}")
                        yield (event_id, event or "message", payload)
                    event, event_id, data_lines = None, None, []
        finally:
            connection.close()
