"""A thin stdlib HTTP client for the search service.

Wraps the daemon's JSON API (submit / poll / stream / fetch) in methods that
speak the repo's own types where it helps (budgets, hardware configs) and
raw dicts elsewhere.  One ``http.client`` connection per request — the
service is a job queue, not a chat channel, and per-request connections keep
the client trivially thread-safe.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path
from typing import Any, Iterator, Mapping
from urllib.parse import quote, urlsplit

from repro.search.api import SearchBudget
from repro.utils.serialization import budget_to_dict, hardware_to_dict


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.reason = message
        self.retry_after = retry_after


class Client:
    """Talk to one running search-service daemon."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parts = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} "
                             "(the service speaks plain http)")
        if parts.hostname is None:
            raise ValueError(f"no host in service URL {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    @classmethod
    def from_root(cls, root: str | Path, timeout: float = 60.0) -> "Client":
        """Discover the daemon through its ``<root>/service.json`` file."""
        endpoint_path = Path(root) / "service.json"
        try:
            endpoint = json.loads(endpoint_path.read_text())
        except OSError as error:
            raise ServiceError(
                0, f"no running service under {root} "
                   f"(cannot read {endpoint_path}: {error})") from None
        return cls(f"http://{endpoint['host']}:{endpoint['port']}",
                   timeout=timeout)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None,
                 timeout: float | None = None) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            payload = None
            headers = {"Accept": "application/json"}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                raise self._error_from(response.status, data,
                                       response.getheader("Retry-After"))
            return response.status, data
        finally:
            connection.close()

    @staticmethod
    def _error_from(status: int, data: bytes,
                    retry_after: str | None) -> ServiceError:
        try:
            message = json.loads(data).get("error", data.decode(errors="replace"))
        except ValueError:
            message = data.decode(errors="replace")
        return ServiceError(status, message,
                            retry_after=float(retry_after)
                            if retry_after else None)

    def _get_json(self, path: str) -> dict:
        _, data = self._request("GET", path)
        return json.loads(data)

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def submit_search(self, network: str, strategy: str = "dosa",
                      seed: int = 0,
                      budget: int | Mapping[str, Any] | SearchBudget
                      | None = None,
                      settings: Mapping[str, Any] | None = None,
                      hardware: Any = None,
                      tenant: str | None = None) -> dict:
        """Submit one seeded search; returns the accepted job summary."""
        body: dict[str, Any] = {
            "kind": "search",
            "network": network,
            "strategy": strategy,
            "seed": seed,
        }
        if budget is not None:
            body["budget"] = (budget_to_dict(budget)
                              if isinstance(budget, SearchBudget)
                              else budget)
        if settings:
            body["settings"] = dict(settings)
        if hardware is not None:
            body["hardware"] = (hardware if isinstance(hardware, Mapping)
                                else hardware_to_dict(hardware))
        if tenant is not None:
            body["tenant"] = tenant
        _, data = self._request("POST", "/v1/jobs", body=body)
        return json.loads(data)

    def submit_campaign(self, spec: Any,
                        tenant: str | None = None) -> dict:
        """Submit a whole campaign grid (a CampaignSpec or its dict form)."""
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        body: dict[str, Any] = {"kind": "campaign", "spec": payload}
        if tenant is not None:
            body["tenant"] = tenant
        _, data = self._request("POST", "/v1/jobs", body=body)
        return json.loads(data)

    def job(self, job_id: str) -> dict:
        return self._get_json(f"/v1/jobs/{quote(job_id, safe='')}")

    def jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/v1/jobs"
        if tenant is not None:
            path += f"?tenant={quote(tenant, safe='')}"
        return self._get_json(path)["jobs"]

    def result_bytes(self, job_id: str, deterministic: bool = True) -> bytes:
        """The raw result document — for search jobs, the canonical outcome
        JSON, byte-comparable against an offline run's canonical form."""
        flag = "1" if deterministic else "0"
        _, data = self._request(
            "GET",
            f"/v1/jobs/{quote(job_id, safe='')}/result?deterministic={flag}")
        return data

    def result(self, job_id: str, deterministic: bool = True) -> dict:
        return json.loads(self.result_bytes(job_id, deterministic))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; raise on failure."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] == "done":
                return record
            if record["state"] == "failed":
                raise ServiceError(500, f"job {job_id} failed: "
                                        f"{record.get('error')}")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} "
                    f"after {timeout:.0f}s")
            time.sleep(poll)

    def events(self, job_id: str,
               last_event_id: int | None = None) -> Iterator[tuple[str, dict]]:
        """Stream the job's server-sent events as ``(event, payload)`` pairs.

        Blocks on a dedicated connection until the daemon closes the stream
        (job reached a terminal state, or the daemon drained).
        """
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request(
                "GET", f"/v1/jobs/{quote(job_id, safe='')}/events",
                headers=headers)
            response = connection.getresponse()
            if response.status >= 400:
                raise self._error_from(response.status, response.read(),
                                       response.getheader("Retry-After"))
            event, data_lines = None, []
            for raw in response:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                elif not line:
                    if event is not None or data_lines:
                        payload = json.loads("\n".join(data_lines) or "{}")
                        yield (event or "message", payload)
                    event, data_lines = None, []
        finally:
            connection.close()
