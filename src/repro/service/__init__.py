"""Search-as-a-service: a job daemon serving searches and campaigns.

See :mod:`repro.service.daemon` for the architecture overview and
``docs/service.md`` for the HTTP API and failure-mode catalogue.
"""

from repro.service.client import Client, ServiceError
from repro.service.daemon import (
    SearchService,
    ServiceConfig,
    ServiceRejection,
    create_server,
    serve,
    write_endpoint_file,
)
from repro.service.faults import (
    FaultDrop,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from repro.service.jobs import JobRecord, RequestError, ServiceLayout

__all__ = [
    "Client",
    "FaultDrop",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "JobRecord",
    "RequestError",
    "SearchService",
    "ServiceConfig",
    "ServiceError",
    "ServiceLayout",
    "ServiceRejection",
    "create_server",
    "serve",
    "write_endpoint_file",
]
