"""Search-as-a-service: a job daemon serving searches and campaigns.

See :mod:`repro.service.daemon` for the architecture overview and
``docs/service.md`` for the HTTP API.
"""

from repro.service.client import Client, ServiceError
from repro.service.daemon import (
    SearchService,
    ServiceConfig,
    ServiceRejection,
    create_server,
    serve,
    write_endpoint_file,
)
from repro.service.jobs import JobRecord, RequestError, ServiceLayout

__all__ = [
    "Client",
    "JobRecord",
    "RequestError",
    "SearchService",
    "ServiceConfig",
    "ServiceError",
    "ServiceLayout",
    "ServiceRejection",
    "create_server",
    "serve",
    "write_endpoint_file",
]
