"""Deterministic fault injection for the service layer.

Chaos testing is only useful when it is *reproducible*: a fault schedule
that depends on wall clocks or scheduler races produces unreproducible
failures, which is exactly what this repo exists to avoid.  A
:class:`FaultPlan` therefore describes faults as data — JSON round-trip,
validated like every other spec in the repo — and fires them at **named
sites** threaded through the daemon and the campaign scheduler:

=================  ============================================  ==============
site               where the hook fires                          actions
=================  ============================================  ==============
``worker.step``    each search step inside a pool worker         kill, stall
``worker.cell``    a campaign cell starting inside a worker      kill, stall
``store.append``   the parent persisting one cell outcome        error
``daemon.dispatch``a dispatcher thread picking up a job          exit, stall
``sse.frame``      one SSE frame about to be written             drop
=================  ============================================  ==============

Rules are matched by site plus an optional ``match`` substring of the hook
key (hook keys embed deterministic identifiers such as the campaign cell id
``bert/random/seed=0/budget=0`` and the step's sample count), and fire on
the ``at``-th matching hit — or, with ``probability`` set, on hits selected
by a seeded hash of ``(plan.seed, rule, hit)``, so the selection is
deterministic across processes and replays without any RNG state.

Fires are **globally capped** through a filesystem ledger: before acting,
the injector claims one of the rule's ``max_fires`` slots by exclusively
creating a marker file under the ledger directory.  Worker processes,
respawned pools and restarted daemons all share the ledger (it lives under
the service root), so a rule that SIGKILLs a worker at step 10 does it
``max_fires`` times total — not once per respawned worker, which would
starve the job forever.

When no plan is armed, every hook is a no-op behind a single ``None``
check — production traffic pays one attribute load per site.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.utils.log import get_logger

log = get_logger("service.faults")

PLAN_VERSION = 1

#: Hook sites and the actions each one supports.
SITE_ACTIONS: dict[str, tuple[str, ...]] = {
    "worker.step": ("kill", "stall"),
    "worker.cell": ("kill", "stall"),
    "store.append": ("error",),
    "daemon.dispatch": ("exit", "stall"),
    "sse.frame": ("drop",),
}

ACTIONS = ("kill", "stall", "error", "exit", "drop")

#: Exit status used by the ``exit`` action (simulated daemon crash).
CRASH_EXIT_STATUS = 70


class InjectedFault(OSError):
    """The ``error`` action: a simulated disk-full/partial-write ``OSError``.

    Subclasses :class:`OSError` so the daemon's transient-I/O retry path
    handles injected faults exactly as it would handle the real thing.
    """


class FaultDrop(Exception):
    """The ``drop`` action: the SSE handler must abruptly close the stream."""


@dataclass(frozen=True)
class FaultRule:
    """One fault: where it fires, when, what it does, and how often at most."""

    site: str
    action: str
    #: Substring the hook key must contain ("" matches every hit).
    match: str = ""
    #: Fire on the ``at``-th matching hit (1-based, counted per process).
    at: int = 1
    #: Global cap on fires, enforced across processes/restarts by the ledger.
    max_fires: int = 1
    #: ``stall`` duration.
    seconds: float = 0.0
    #: When set, replaces ``at``: each matching hit fires with this
    #: probability, decided by a seeded hash (deterministic, stateless).
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.site not in SITE_ACTIONS:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"options: {sorted(SITE_ACTIONS)}")
        if self.action not in SITE_ACTIONS[self.site]:
            raise ValueError(
                f"action {self.action!r} is not valid at site {self.site!r} "
                f"(valid: {SITE_ACTIONS[self.site]})")
        if not isinstance(self.at, int) or self.at < 1:
            raise ValueError(f"at must be an int >= 1, got {self.at!r}")
        if not isinstance(self.max_fires, int) or self.max_fires < 1:
            raise ValueError(f"max_fires must be an int >= 1, "
                             f"got {self.max_fires!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds!r}")
        if self.action == "stall" and self.seconds == 0:
            raise ValueError("stall rules need seconds > 0")
        if self.probability is not None \
                and not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], "
                             f"got {self.probability!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "match": self.match,
            "at": self.at,
            "max_fires": self.max_fires,
            "seconds": self.seconds,
            "probability": self.probability,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "FaultRule":
        unknown = set(payload) - {"site", "action", "match", "at",
                                  "max_fires", "seconds", "probability"}
        if unknown:
            raise ValueError(f"unknown fault rule fields {sorted(unknown)}")
        return FaultRule(
            site=str(payload["site"]),
            action=str(payload["action"]),
            match=str(payload.get("match", "")),
            at=int(payload.get("at", 1)),
            max_fires=int(payload.get("max_fires", 1)),
            seconds=float(payload.get("seconds", 0.0)),
            probability=(None if payload.get("probability") is None
                         else float(payload["probability"])),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults to inject."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    version: int = PLAN_VERSION

    def __post_init__(self) -> None:
        if self.version != PLAN_VERSION:
            raise ValueError(f"unsupported fault plan version {self.version}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise TypeError(f"rules must be FaultRule, got {rule!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(payload) - {"version", "seed", "rules"}
        if unknown:
            raise ValueError(f"unknown fault plan fields {sorted(unknown)}")
        rules_payload = payload.get("rules", ())
        if not isinstance(rules_payload, (list, tuple)):
            raise ValueError(f"rules must be a list, got {rules_payload!r}")
        return FaultPlan(
            version=int(payload.get("version", PLAN_VERSION)),
            seed=int(payload.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules_payload),
        )

    @staticmethod
    def load(path: str | Path) -> "FaultPlan":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as error:
            raise ValueError(f"cannot load fault plan {path}: {error}") \
                from None
        return FaultPlan.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        from repro.utils.atomic import write_json_atomic

        return write_json_atomic(path, self.to_dict())


def _hash_fraction(seed: int, rule_index: int, hit: int) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) for probability rules."""
    digest = hashlib.sha256(
        f"{seed}:{rule_index}:{hit}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """The armed form of a plan: hit counters + the shared fire ledger."""

    def __init__(self, plan: FaultPlan, ledger_dir: str | Path) -> None:
        self.plan = plan
        self.ledger_dir = Path(ledger_dir)
        self.ledger_dir.mkdir(parents=True, exist_ok=True)
        self._hits = [0] * len(plan.rules)
        self._by_site: dict[str, list[int]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_site.setdefault(rule.site, []).append(index)

    # ------------------------------------------------------------------ #
    def _claim(self, rule_index: int, max_fires: int) -> bool:
        """Claim one global fire slot via exclusive marker-file creation.

        ``os.open(..., O_CREAT | O_EXCL)`` either creates the (empty) marker
        atomically or fails with ``FileExistsError`` — exactly one process
        wins each slot, across workers, respawned pools and daemon restarts.
        """
        for slot in range(max_fires):
            marker = self.ledger_dir / f"rule{rule_index}.fire{slot}"
            try:
                os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
            except OSError:  # pragma: no cover - ledger on a dying disk
                return False
        return False

    def fires(self) -> list[str]:
        """Ledger marker names claimed so far (sorted; for reports/tests)."""
        if not self.ledger_dir.is_dir():
            return []
        return [path.name for path in sorted(self.ledger_dir.glob("rule*"))]

    # ------------------------------------------------------------------ #
    def fire(self, site: str, key: str = "") -> None:
        """Count one hit at ``site`` and perform any due rule's action."""
        for index in self._by_site.get(site, ()):
            rule = self.plan.rules[index]
            if rule.match and rule.match not in key:
                continue
            self._hits[index] += 1
            if rule.probability is None:
                due = self._hits[index] == rule.at
            else:
                due = _hash_fraction(self.plan.seed, index,
                                     self._hits[index]) < rule.probability
            if due and self._claim(index, rule.max_fires):
                self._act(rule, site, key)

    def _act(self, rule: FaultRule, site: str, key: str) -> None:
        log.warning("fault injection: %s at %s (key %r, pid %d)",
                    rule.action, site, key, os.getpid())
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.action == "stall":
            time.sleep(rule.seconds)
        elif rule.action == "error":
            raise InjectedFault(
                f"injected I/O fault at {site} (key {key!r})")
        elif rule.action == "exit":
            os._exit(CRASH_EXIT_STATUS)
        elif rule.action == "drop":
            raise FaultDrop(f"injected connection drop at {site} "
                            f"(key {key!r})")
        else:  # pragma: no cover - rules are validated at construction
            raise AssertionError(f"unhandled fault action {rule.action!r}")


#: The process-wide armed injector (None = all hooks are no-ops).
_INJECTOR: FaultInjector | None = None


def arm(plan: FaultPlan, ledger_dir: str | Path) -> FaultInjector:
    """Arm ``plan`` in this process; returns the injector (for inspection)."""
    global _INJECTOR
    _INJECTOR = FaultInjector(plan, ledger_dir)
    log.info("fault plan armed: %d rules, ledger %s",
             len(plan.rules), ledger_dir)
    return _INJECTOR


def disarm() -> None:
    global _INJECTOR
    _INJECTOR = None


def armed() -> bool:
    return _INJECTOR is not None


def fire(site: str, key: str = "") -> None:
    """The zero-cost-when-unarmed hook every fault site calls."""
    if _INJECTOR is not None:
        _INJECTOR.fire(site, key)


def iter_sites() -> Iterable[str]:
    return SITE_ACTIONS.keys()


__all__ = [
    "ACTIONS",
    "CRASH_EXIT_STATUS",
    "FaultDrop",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "SITE_ACTIONS",
    "arm",
    "armed",
    "disarm",
    "fire",
    "iter_sites",
]
