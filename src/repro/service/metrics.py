"""Daemon-side operational metrics (``GET /metrics``).

Plain counters plus a bounded latency reservoir, all behind one lock —
nothing here is persisted, the numbers describe the current daemon process
only (job *outcomes* are persisted in the per-job result stores).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float | None:
    """Linear-interpolated percentile (``q`` in [0, 100]); None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class ServiceMetrics:
    """Thread-safe counters + completed-job latency percentiles."""

    #: Completed-job latencies kept for percentile estimates; older samples
    #: age out so a long-lived daemon reports recent behaviour.
    LATENCY_WINDOW = 4096

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs_submitted = 0
        self.jobs_rejected_full = 0
        self.jobs_rejected_draining = 0
        self.jobs_rejected_invalid = 0
        self.jobs_rejected_quota = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_interrupted = 0
        self.jobs_resumed = 0
        self.jobs_cancelled = 0
        self.jobs_retried = 0
        self.jobs_deduplicated = 0
        self.jobs_expired = 0
        self.workers_killed = 0
        self.pool_respawns = 0
        self.spill_compactions = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._latencies: deque[float] = deque(maxlen=self.LATENCY_WINDOW)

    # ------------------------------------------------------------------ #
    def count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + delta)

    def add_cache(self, hits: int, misses: int) -> None:
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    # ------------------------------------------------------------------ #
    def snapshot(self, queued: int, running: int) -> dict:
        """The ``/metrics`` payload (gauges are passed in by the service)."""
        with self._lock:
            latencies = list(self._latencies)
            lookups = self.cache_hits + self.cache_misses
            return {
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "queued": queued,
                    "running": running,
                    "done": self.jobs_done,
                    "failed": self.jobs_failed,
                    "interrupted": self.jobs_interrupted,
                    "resumed": self.jobs_resumed,
                    "cancelled": self.jobs_cancelled,
                    "retried": self.jobs_retried,
                    "deduplicated": self.jobs_deduplicated,
                    "expired": self.jobs_expired,
                    "rejected_full": self.jobs_rejected_full,
                    "rejected_draining": self.jobs_rejected_draining,
                    "rejected_invalid": self.jobs_rejected_invalid,
                    "rejected_quota": self.jobs_rejected_quota,
                },
                "recovery": {
                    "workers_killed": self.workers_killed,
                    "pool_respawns": self.pool_respawns,
                    "spill_compactions": self.spill_compactions,
                },
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
                },
                "latency_seconds": {
                    "count": len(latencies),
                    "p50": percentile(latencies, 50.0),
                    "p99": percentile(latencies, 99.0),
                    "max": max(latencies) if latencies else None,
                },
            }
