"""The service's job model: records, tenancy layout, and spec construction.

A *service job* wraps one unit of client-submitted work — a single search or
a whole campaign grid — as data that survives daemon restarts:

* the :class:`JobRecord` (tenant, kind, normalized request, lifecycle state,
  timestamps) lives in ``job.json``, written atomically on every transition,
* the job's results live in a per-job
  :class:`~repro.campaign.store.ResultStore` under the same directory, keyed
  by a campaign spec derived *deterministically* from the normalized request
  (so a restarted daemon rebuilds the identical spec and the store accepts
  it).

Directory layout under the service root::

    <root>/
      service.json                      # live endpoint (host/port/pid)
      cache/                            # shared evaluation-cache spill
      tenants/<tenant>/jobs/<job_id>/
        job.json                        # JobRecord (atomic)
        store/                          # ResultStore (manifest + results)

Search jobs become single-cell campaign grids, so one code path — the
campaign scheduler — executes, persists and resumes everything, and a
service-run search is bit-reproducible against an offline
:func:`repro.optimize` call with the same seed.
"""

from __future__ import annotations

import json
import re
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.campaign.spec import CampaignSpec, StrategyVariant
from repro.search.api import available_strategies
from repro.utils.atomic import write_json_atomic
from repro.utils.serialization import (
    budget_from_dict,
    budget_to_dict,
    hardware_from_dict,
    hardware_to_dict,
)
from repro.workloads.networks import NETWORK_BUILDERS

#: Job lifecycle states.  ``queued`` and ``running`` jobs are re-enqueued by
#: a restarted daemon; ``done``, ``failed`` and ``cancelled`` are terminal.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"
JOB_STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED,
              STATE_CANCELLED)
TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)

JOB_KINDS = ("search", "campaign")

DEFAULT_TENANT = "default"

RECORD_NAME = "job.json"
STORE_DIR_NAME = "store"
#: Cancellation sentinel inside a job dir: its appearance makes pool workers
#: raise ``KeyboardInterrupt`` at their next step (see
#: ``campaign.scheduler.PoolProgress.cancel_path``).
CANCEL_NAME = "cancel"

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")
_IDEMPOTENCY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.:-]{0,127}$")


class RequestError(ValueError):
    """A client request that cannot be accepted (HTTP 400)."""


def validate_tenant(tenant: Any) -> str:
    """A filesystem-safe tenant id (``default`` when omitted)."""
    if tenant is None:
        return DEFAULT_TENANT
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise RequestError(
            f"invalid tenant {tenant!r}: expected 1-64 characters of "
            "[A-Za-z0-9_.-] starting with an alphanumeric")
    return tenant


def validate_idempotency_key(key: Any) -> str | None:
    """An optional client-chosen submit dedupe key (``None`` when omitted).

    The key is transport-level: it deduplicates ambiguous submit retries but
    is *not* part of the normalized request, so it never influences the job's
    campaign spec or results.
    """
    if key is None:
        return None
    if not isinstance(key, str) or not _IDEMPOTENCY_RE.match(key):
        raise RequestError(
            f"invalid idempotency_key {key!r}: expected 1-128 characters of "
            "[A-Za-z0-9_.:-] starting with an alphanumeric")
    return key


def new_job_id() -> str:
    return f"j-{uuid.uuid4().hex[:12]}"


# --------------------------------------------------------------------------- #
# Request normalization
# --------------------------------------------------------------------------- #
def _normalize_budget(value: Any) -> dict[str, Any]:
    if value is None:
        payload: dict[str, Any] = {}
    elif isinstance(value, bool):
        raise RequestError(f"invalid budget {value!r}")
    elif isinstance(value, int):
        payload = {"max_samples": value}
    elif isinstance(value, Mapping):
        unknown = set(value) - {"max_samples", "max_seconds"}
        if unknown:
            raise RequestError(f"unknown budget fields {sorted(unknown)}")
        payload = dict(value)
    else:
        raise RequestError(f"budget must be an int or "
                           f"{{max_samples, max_seconds}}, got {value!r}")
    try:
        return budget_to_dict(budget_from_dict(payload))
    except (TypeError, ValueError) as error:
        raise RequestError(f"invalid budget: {error}") from None


def normalize_search_request(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and canonicalize a ``kind="search"`` request body.

    The normalized dict fully determines the job's campaign spec, so two
    daemons (or one daemon before and after a restart) derive identical specs
    from it.
    """
    unknown = set(payload) - {"tenant", "kind", "network", "strategy", "seed",
                              "budget", "settings", "hardware",
                              "idempotency_key"}
    if unknown:
        raise RequestError(f"unknown request fields {sorted(unknown)}")
    network = payload.get("network")
    if network not in NETWORK_BUILDERS:
        raise RequestError(f"unknown network {network!r}; "
                           f"options: {sorted(NETWORK_BUILDERS)}")
    strategy = payload.get("strategy", "dosa")
    if strategy not in available_strategies():
        raise RequestError(f"unknown strategy {strategy!r}; "
                           f"options: {list(available_strategies())}")
    seed = payload.get("seed", 0)
    settings = payload.get("settings") or {}
    if not isinstance(settings, Mapping):
        raise RequestError(f"settings must be an object, got {settings!r}")
    hardware = payload.get("hardware")
    request = {
        "network": network,
        "strategy": strategy,
        "seed": seed,
        "budget": _normalize_budget(payload.get("budget")),
        "settings": dict(settings),
        "hardware": (None if hardware is None
                     else hardware_to_dict(hardware_from_dict(hardware))
                     if isinstance(hardware, Mapping)
                     else _raise_hardware(hardware)),
    }
    # Building the spec runs the full campaign-grade validation (settings
    # keys are checked when the job is constructed by the scheduler).
    build_campaign_spec("validate", "search", request)
    return request


def _raise_hardware(value: Any) -> None:
    raise RequestError(f"hardware must be an object with "
                       f"pe_dim/accumulator_kb/scratchpad_kb, got {value!r}")


def normalize_campaign_request(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and canonicalize a ``kind="campaign"`` request body."""
    unknown = set(payload) - {"tenant", "kind", "spec", "idempotency_key"}
    if unknown:
        raise RequestError(f"unknown request fields {sorted(unknown)}")
    spec_payload = payload.get("spec")
    if not isinstance(spec_payload, Mapping):
        raise RequestError("campaign jobs need a 'spec' object "
                           "(see docs/campaign.md)")
    try:
        spec = CampaignSpec.from_dict(spec_payload)
    except (KeyError, TypeError, ValueError) as error:
        raise RequestError(f"invalid campaign spec: {error}") from None
    return {"spec": spec.to_dict()}


def normalize_request(payload: Any) -> tuple[str, str, dict[str, Any]]:
    """``(tenant, kind, normalized_request)`` of a submit body, or raise."""
    if not isinstance(payload, Mapping):
        raise RequestError("request body must be a JSON object")
    tenant = validate_tenant(payload.get("tenant"))
    kind = payload.get("kind", "search")
    if kind == "search":
        return tenant, kind, normalize_search_request(payload)
    if kind == "campaign":
        return tenant, kind, normalize_campaign_request(payload)
    raise RequestError(f"unknown job kind {kind!r}; options: {JOB_KINDS}")


# --------------------------------------------------------------------------- #
# Spec construction (deterministic in the normalized request)
# --------------------------------------------------------------------------- #
def build_campaign_spec(job_id: str, kind: str,
                        request: Mapping[str, Any]) -> CampaignSpec:
    """The campaign spec a job's store is keyed on.

    Deterministic: the same ``(job_id, kind, request)`` always produces the
    same spec dict, which is what lets a restarted daemon reopen the job's
    :class:`~repro.campaign.store.ResultStore` (the store refuses a changed
    spec) and resume exactly where the crashed daemon left off.
    """
    if kind == "campaign":
        return CampaignSpec.from_dict(request["spec"])
    hardware = request.get("hardware")
    try:
        variant = StrategyVariant(
            name=request["strategy"],
            settings=dict(request.get("settings", {})),
            hardware=None if hardware is None else hardware_from_dict(hardware),
        )
        return CampaignSpec(
            name=f"service-{job_id}",
            workloads=(request["network"],),
            strategies=(variant,),
            seeds=(request.get("seed", 0),),
            budgets=(budget_from_dict(request.get("budget", {})),),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise RequestError(str(error)) from None


# --------------------------------------------------------------------------- #
# The persistent record
# --------------------------------------------------------------------------- #
@dataclass
class JobRecord:
    """One service job's persistent lifecycle state (``job.json``)."""

    job_id: str
    tenant: str
    kind: str
    request: dict[str, Any]
    state: str = STATE_QUEUED
    # repro-lint: allow[determinism-clock] submission timestamp for queue ordering display, not part of any result
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    attempts: int = 0
    #: Small deterministic summary of a finished job (best EDP / samples for
    #: searches, cell count for campaigns); the full outcome lives in the
    #: job's result store.
    result: dict[str, Any] | None = None
    #: Client-supplied submit dedupe key (transport-level; not part of the
    #: normalized request, never influences the spec or the results).
    idempotency_key: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "request": self.request,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "attempts": self.attempts,
            "result": self.result,
            "idempotency_key": self.idempotency_key,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "JobRecord":
        state = payload.get("state", STATE_QUEUED)
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        return JobRecord(
            job_id=str(payload["job_id"]),
            tenant=str(payload.get("tenant", DEFAULT_TENANT)),
            kind=str(payload.get("kind", "search")),
            request=dict(payload["request"]),
            state=state,
            created_at=float(payload.get("created_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 0)),
            result=payload.get("result"),
            idempotency_key=payload.get("idempotency_key"),
        )

    def summary(self) -> dict[str, Any]:
        """The API view of this record (what ``GET /v1/jobs/<id>`` returns)."""
        payload = self.to_dict()
        payload["terminal"] = self.terminal
        return payload

    def spec(self) -> CampaignSpec:
        return build_campaign_spec(self.job_id, self.kind, self.request)


# --------------------------------------------------------------------------- #
# Layout
# --------------------------------------------------------------------------- #
class ServiceLayout:
    """Path arithmetic for one service root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def endpoint_path(self) -> Path:
        return self.root / "service.json"

    @property
    def tenants_dir(self) -> Path:
        return self.root / "tenants"

    def job_dir(self, tenant: str, job_id: str) -> Path:
        return self.tenants_dir / tenant / "jobs" / job_id

    def record_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / RECORD_NAME

    def store_dir(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / STORE_DIR_NAME

    def cancel_path(self, tenant: str, job_id: str) -> Path:
        return self.job_dir(tenant, job_id) / CANCEL_NAME

    @property
    def fault_ledger_dir(self) -> Path:
        """The fault-injection fire ledger (shared by daemon + workers)."""
        return self.root / "fault-ledger"

    # ------------------------------------------------------------------ #
    def save_record(self, record: JobRecord) -> None:
        """Atomically persist a record (crash leaves old or new, never half)."""
        path = self.record_path(record.tenant, record.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json_atomic(path, record.to_dict())

    def load_records(self) -> list[JobRecord]:
        """Every decodable job record under the root, oldest first.

        Undecodable records are skipped (a crash can only ever leave the
        previous complete ``job.json`` thanks to the atomic writes; anything
        else is external damage and should not take the daemon down).
        """
        records: list[JobRecord] = []
        if not self.tenants_dir.is_dir():
            return records
        for path in sorted(self.tenants_dir.glob(f"*/jobs/*/{RECORD_NAME}")):
            try:
                records.append(JobRecord.from_dict(json.loads(path.read_text())))
            except (ValueError, KeyError, TypeError, OSError):
                continue
        records.sort(key=lambda r: (r.created_at, r.job_id))
        return records
