"""Search-as-a-service: the long-running job daemon.

One daemon process serves many concurrent clients over HTTP/JSON (stdlib
``http.server`` only — no new dependencies):

* ``POST /v1/jobs`` submits a search or campaign job into a **bounded**
  queue (429 + ``Retry-After`` when full — backpressure, not buffering),
* ``n_workers`` dispatcher threads drive each job through a
  :class:`~repro.campaign.scheduler.CampaignScheduler` pointed at **one
  shared fork worker pool**, so total evaluation parallelism is capped at
  the pool size no matter how many clients are connected,
* every job persists into its own per-tenant
  :class:`~repro.campaign.store.ResultStore`, all sharing a single
  cross-process evaluation-cache spill (``<root>/cache``) — tenants benefit
  from each other's reference-model evaluations, and because cache entries
  are bit-identical to fresh evaluations, sharing never changes results,
* ``GET /v1/jobs/<id>/events`` streams per-job progress as server-sent
  events fed by the search callbacks running inside the pool workers,
* SIGTERM/SIGINT drains gracefully: the queue closes (503), a shared stop
  event makes every in-flight search raise at its next step, the searchers'
  ``absorb_interrupt`` path persists flagged best-so-far outcomes, and a
  restarted daemon resumes exactly those jobs (seeded determinism makes the
  resumed results identical to an uninterrupted run).

Results are **byte-identical** to offline :func:`repro.optimize` runs with
the same seed: ``GET /v1/jobs/<id>/result`` serves the canonical outcome
JSON (wall-clock stripped), so clients can diff service output against local
runs.

The daemon is additionally hardened for hostile conditions (all of it
exercised deterministically by ``repro.service.faults`` plans and
``benchmarks/bench_chaos.py``):

* worker **heartbeats + a watchdog**: a pool worker that goes silent
  mid-cell is SIGKILLed, the broken pool is respawned, and the job requeues
  (its store already holds every completed cell, so the retry resumes
  bit-identically),
* **per-tenant admission quotas and round-robin dispatch**, so one tenant's
  campaign cannot starve other tenants' jobs,
* ``DELETE /v1/jobs/<id>`` **cancellation** through a per-job sentinel file
  driving the same cooperative best-so-far stop path the SIGTERM drain uses
  (terminal state ``cancelled``),
* submit **idempotency keys**, so a client retrying an ambiguous submit
  never double-runs a job,
* **TTL garbage collection** of terminal jobs plus periodic cache-spill
  compaction on a timer.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import socket
import threading
import time
from collections import deque
from collections.abc import Mapping
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Empty
from typing import Any, Callable

from repro.campaign.report import CampaignReport
from repro.campaign.scheduler import (
    CampaignScheduler,
    PoolProgress,
    install_worker_channel,
)
from repro.campaign.store import ResultStore, compact_cache_dir
from repro.service import faults
from repro.service.faults import FaultDrop, FaultPlan
from repro.service.jobs import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobRecord,
    RequestError,
    ServiceLayout,
    new_job_id,
    normalize_request,
    validate_idempotency_key,
)
from repro.service.metrics import ServiceMetrics
from repro.utils.atomic import write_atomic, write_json_atomic
from repro.utils.log import get_logger
from repro.utils.serialization import (
    canonical_outcome_json,
    deterministic_outcome_payload,
)

log = get_logger("service.daemon")

#: Submit bodies larger than this are rejected outright (413).
MAX_REQUEST_BYTES = 8 * 1024 * 1024


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance."""

    root: Path
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; the actual endpoint is discoverable via
    #: ``<root>/service.json``.
    port: int = 0
    #: Fork-pool size *and* dispatcher-thread count: at most this many
    #: evaluations run concurrently across all clients and tenants.
    n_workers: int = 2
    #: Bounded submit queue: beyond this many queued (not yet running) jobs,
    #: submits get 429 + Retry-After instead of unbounded buffering.
    queue_limit: int = 64
    #: Socket timeout applied to each HTTP request (slowloris guard).
    request_timeout: float = 30.0
    #: Stream an ``on_step`` SSE event every N samples.
    step_period: int = 25
    #: SSE keep-alive comment period while a job is idle in the queue.
    heartbeat_seconds: float = 10.0
    #: Per-tenant cap on active (queued + running) jobs; beyond it submits
    #: get 429 + Retry-After.  ``None`` disables quotas.
    tenant_quota: int | None = None
    #: Dispatch attempts per job before it is failed for good — worker-pool
    #: crashes and transient store I/O errors requeue up to this many tries.
    max_attempts: int = 3
    #: SIGKILL a pool worker that sends no heartbeat for this long while
    #: inside a cell (hung/stalled worker detection).  ``None`` disables.
    watchdog_seconds: float | None = 60.0
    #: How often workers heartbeat while searching (drives the watchdog).
    worker_heartbeat_seconds: float = 2.0
    #: Delete terminal jobs (record + store) this long after they finished;
    #: ``None`` keeps them forever.
    job_ttl_seconds: float | None = None
    #: GC sweep period (only relevant with a TTL or compaction interval).
    gc_interval_seconds: float = 30.0
    #: Compact the shared cache spill every this many seconds; ``None``
    #: leaves compaction to the ``repro.cli campaign compact`` command.
    compact_interval_seconds: float | None = None
    #: Armed fault-injection plan (chaos testing only; ``None`` keeps every
    #: fault site a no-op).
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError(f"tenant_quota must be >= 1 or None, "
                             f"got {self.tenant_quota}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.watchdog_seconds is not None and self.watchdog_seconds <= 0:
            raise ValueError(f"watchdog_seconds must be > 0 or None, "
                             f"got {self.watchdog_seconds}")
        if self.worker_heartbeat_seconds <= 0:
            raise ValueError(f"worker_heartbeat_seconds must be > 0, "
                             f"got {self.worker_heartbeat_seconds}")
        if self.job_ttl_seconds is not None and self.job_ttl_seconds < 0:
            raise ValueError(f"job_ttl_seconds must be >= 0 or None, "
                             f"got {self.job_ttl_seconds}")
        if self.gc_interval_seconds <= 0:
            raise ValueError(f"gc_interval_seconds must be > 0, "
                             f"got {self.gc_interval_seconds}")
        if self.compact_interval_seconds is not None \
                and self.compact_interval_seconds <= 0:
            raise ValueError(f"compact_interval_seconds must be > 0 or None, "
                             f"got {self.compact_interval_seconds}")


class ServiceRejection(Exception):
    """A request the daemon refuses with a specific HTTP status."""

    def __init__(self, status: int, reason: str,
                 retry_after: float | None = None) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after


class _JobEvents:
    """One job's in-memory event log: append-only, bounded, replayable.

    SSE handlers tail it by sequence number, so a client that reconnects
    with ``Last-Event-ID`` resumes where it left off (within the retention
    window).  ``close()`` wakes every tail and marks the stream finished.
    """

    CAP = 1024

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._events: list[tuple[int, str, dict]] = []
        self._base = 0
        self.closed = False

    def emit(self, event: str, payload: dict) -> None:
        with self._cond:
            if self.closed:
                return
            seq = self._base + len(self._events)
            self._events.append((seq, event, dict(payload)))
            overflow = len(self._events) - self.CAP
            if overflow > 0:
                del self._events[:overflow]
                self._base += overflow
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def since(self, seq: int, timeout: float) -> tuple[list, bool]:
        """Events with sequence >= ``seq`` (blocking up to ``timeout``)."""
        with self._cond:
            self._cond.wait_for(
                lambda: self.closed or self._base + len(self._events) > seq,
                timeout=timeout)
            start = max(0, seq - self._base)
            return list(self._events[start:]), self.closed


class SearchService:
    """The daemon's engine: queue, dispatchers, shared pool, persistence.

    Separate from the HTTP layer so tests (and embedders) can drive it
    directly; :func:`create_server` wraps it in a ``ThreadingHTTPServer``.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.layout = ServiceLayout(config.root)
        self.layout.root.mkdir(parents=True, exist_ok=True)
        self.layout.cache_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = ServiceMetrics()
        # repro-lint: allow[determinism-clock] daemon start timestamp feeds uptime only, never a result payload
        self.started_at = time.time()
        #: Identifies this daemon process in SSE event ids
        #: (``<epoch>.<seq>``).  Event logs are in-memory, so sequence
        #: numbers reset on restart; a client resuming with a
        #: ``Last-Event-ID`` minted by a *previous* daemon must get a full
        #: replay instead of waiting for sequence numbers that may never
        #: come.
        self.events_epoch = f"{os.getpid():x}-{int(self.started_at):x}"
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._registry: dict[str, JobRecord] = {}
        #: Per-tenant FIFO queues plus a rotating tenant cursor: dispatch is
        #: round-robin *across tenants* (one tenant's campaign flood cannot
        #: starve another tenant's single search), FIFO within each tenant.
        self._queues: dict[str, deque[str]] = {}
        self._rr: deque[str] = deque()
        self._events: dict[str, _JobEvents] = {}
        #: Jobs whose cancellation was requested while running (the on-disk
        #: sentinel file is authoritative; this mirrors it for lock-cheap
        #: checks and survives only this process).
        self._cancel_requested: set[str] = set()
        #: ``(tenant, idempotency_key) -> job_id`` submit dedupe map,
        #: rebuilt from the persisted records on recovery.
        self._idempotency: dict[tuple[str, str], str] = {}
        #: ``(job_tag, worker_pid) -> last monotonic heartbeat`` for workers
        #: currently inside a cell; the watchdog kills stale entries.
        self._liveness: dict[tuple[str, int], float] = {}
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._dispatchers: list[threading.Thread] = []
        self._progress_stop = threading.Event()
        self._progress_thread: threading.Thread | None = None
        self._watchdog_thread: threading.Thread | None = None
        self._gc_thread: threading.Thread | None = None
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        self._mp_context = context
        self._progress_queue = context.Queue()
        self._stop_event = context.Event()
        self._executor: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._pool_generation = 0
        self._fault_hook: Callable[[str, str], None] | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Fork the worker pool, recover persisted jobs, start the threads.

        The pool is forked (and warmed up) *before* any service thread
        exists: forking a process that already runs threads risks inheriting
        locks mid-acquire, so all forks happen while this is still a
        single-threaded process.
        """
        if self.config.fault_plan is not None:
            faults.arm(self.config.fault_plan, self.layout.fault_ledger_dir)
            self._fault_hook = faults.fire
        self._executor = self._make_executor()
        self.recover()
        self._progress_thread = threading.Thread(
            target=self._progress_loop, name="svc-progress", daemon=True)
        self._progress_thread.start()
        for index in range(self.config.n_workers):
            thread = threading.Thread(target=self._dispatch_loop,
                                      name=f"svc-dispatch-{index}", daemon=True)
            thread.start()
            self._dispatchers.append(thread)
        if self.config.watchdog_seconds is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, name="svc-watchdog", daemon=True)
            self._watchdog_thread.start()
        if self.config.job_ttl_seconds is not None \
                or self.config.compact_interval_seconds is not None:
            self._gc_thread = threading.Thread(
                target=self._gc_loop, name="svc-gc", daemon=True)
            self._gc_thread.start()
        log.info("service started: root=%s workers=%d queue_limit=%d",
                 self.layout.root, self.config.n_workers,
                 self.config.queue_limit)

    def _make_executor(self) -> ProcessPoolExecutor:
        """Fork (and warm) a full worker pool wired to the shared channel.

        Called at startup (pre-threads: the safe fork) and again on respawn
        after a worker died hard.  A respawn forks a process that already
        runs service threads — the classic fork-after-threads hazard — but
        the children only re-exec the initializer and the worker loop over
        multiprocessing primitives created back in ``__init__``, which is
        the standard, practically-safe recovery for a broken
        ``ProcessPoolExecutor`` (the alternative is failing every queued
        job).
        """
        plan = self.config.fault_plan
        executor = ProcessPoolExecutor(
            max_workers=self.config.n_workers,
            mp_context=self._mp_context,
            initializer=install_worker_channel,
            initargs=(self._progress_queue, self._stop_event,
                      None if plan is None else plan.to_dict(),
                      None if plan is None
                      else str(self.layout.fault_ledger_dir)),
        )
        # Occupy every slot with a short sleep so the executor forks its full
        # complement of workers now instead of lazily from a dispatcher.
        futures_wait([executor.submit(time.sleep, 0.2)
                      for _ in range(self.config.n_workers)])
        return executor

    # ------------------------------------------------------------------ #
    def fault_fire(self, site: str, key: str = "") -> None:
        """Hit a parent-side fault site (no-op unless a plan is armed)."""
        if self._fault_hook is not None:
            self._fault_hook(site, key)

    def _pool_state(self) -> tuple[ProcessPoolExecutor | None, int]:
        with self._pool_lock:
            return self._executor, self._pool_generation

    def _ensure_pool(self, generation: int) -> None:
        """Respawn the shared pool unless someone already did (or draining)."""
        with self._pool_lock:
            if self._pool_generation != generation \
                    or self._draining.is_set():
                return
            broken = self._executor
            self._executor = self._make_executor()
            self._pool_generation += 1
            respawned = self._pool_generation
        if broken is not None:
            broken.shutdown(wait=False)
        self.metrics.count("pool_respawns")
        log.warning("service: worker pool respawned (generation %d)",
                    respawned)

    def recover(self) -> None:
        """Re-register persisted jobs; re-enqueue the incomplete ones.

        A job that was ``running`` when the previous daemon died goes back to
        ``queued``: its store already holds any flagged best-so-far outcome,
        and the scheduler's resume path re-runs exactly the incomplete cells.
        """
        for record in self.layout.load_records():
            self._registry[record.job_id] = record
            if record.idempotency_key:
                self._idempotency[(record.tenant, record.idempotency_key)] \
                    = record.job_id
            if record.terminal:
                continue
            if self.layout.cancel_path(record.tenant,
                                       record.job_id).exists():
                # Cancelled while the daemon was down (or between the
                # cancel request and the crash): honor the sentinel now
                # instead of resuming a job nobody wants.
                log.info("service: honoring persisted cancellation of %s",
                         record.job_id)
                self._finish(record, STATE_CANCELLED)
                continue
            resumed = record.state == STATE_RUNNING or record.attempts > 0
            record.state = STATE_QUEUED
            self.layout.save_record(record)
            with self._lock:
                self._enqueue_locked(record)
            self._events_for(record.job_id).emit(
                "queued", {"job_id": record.job_id, "resumed": resumed})
            if resumed:
                self.metrics.count("jobs_resumed")
                log.info("service: resuming job %s (attempt %d)",
                         record.job_id, record.attempts + 1)

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, interrupt, persist, wind down.

        In-flight searches raise at their next step (via the shared stop
        event), the schedulers persist their flagged best-so-far outcomes,
        and the affected jobs return to ``queued`` on disk so the next daemon
        resumes them.  Idempotent; blocks until fully drained.
        """
        with self._cond:
            first = not self._draining.is_set()
            self._draining.set()
            self._cond.notify_all()
        if not first:
            self._drained.wait()
            return
        log.info("service draining: interrupting in-flight jobs")
        self._stop_event.set()
        for thread in self._dispatchers:
            thread.join()
        with self._pool_lock:
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=True)
        self._progress_stop.set()
        for thread in (self._progress_thread, self._watchdog_thread,
                       self._gc_thread):
            if thread is not None:
                thread.join()
        with self._lock:
            events = list(self._events.values())
        for log_ in events:
            log_.close()
        self._drained.set()
        log.info("service drained")

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------ #
    # Client-facing operations (HTTP handlers call these)
    # ------------------------------------------------------------------ #
    def submit(self, payload: Any) -> JobRecord:
        """Validate, persist and enqueue one job; raise on rejection.

        With an ``idempotency_key`` in the body, a retried submit whose
        first attempt actually landed returns the original record instead
        of enqueueing a duplicate — safe submit retries over a lossy
        connection.
        """
        if self._draining.is_set():
            self.metrics.count("jobs_rejected_draining")
            raise ServiceRejection(503, "service is draining")
        try:
            key = (validate_idempotency_key(payload.get("idempotency_key"))
                   if isinstance(payload, Mapping) else None)
            tenant, kind, request = normalize_request(payload)
        except RequestError:
            self.metrics.count("jobs_rejected_invalid")
            raise
        with self._cond:
            if key is not None:
                existing_id = self._idempotency.get((tenant, key))
                existing = (self._registry.get(existing_id)
                            if existing_id is not None else None)
                if existing is not None:
                    self.metrics.count("jobs_deduplicated")
                    log.info("service: submit dedupe for tenant %s key %s "
                             "-> %s", tenant, key, existing.job_id)
                    return existing
            if self._queue_depth_locked() >= self.config.queue_limit:
                self.metrics.count("jobs_rejected_full")
                raise ServiceRejection(
                    429, f"queue is full ({self.config.queue_limit} jobs)",
                    retry_after=1.0)
            quota = self.config.tenant_quota
            if quota is not None:
                active = sum(1 for r in self._registry.values()
                             if r.tenant == tenant
                             and r.state in (STATE_QUEUED, STATE_RUNNING))
                if active >= quota:
                    self.metrics.count("jobs_rejected_quota")
                    raise ServiceRejection(
                        429, f"tenant {tenant} is at its quota of {quota} "
                             "active jobs", retry_after=2.0)
            record = JobRecord(job_id=new_job_id(), tenant=tenant,
                               kind=kind, request=request,
                               idempotency_key=key)
            self.layout.save_record(record)
            self._registry[record.job_id] = record
            if key is not None:
                self._idempotency[(tenant, key)] = record.job_id
            self._enqueue_locked(record)
            events = self._events_for(record.job_id)
            self._cond.notify()
        events.emit("queued", {"job_id": record.job_id, "resumed": False})
        self.metrics.count("jobs_submitted")
        log.info("service: accepted %s job %s (tenant %s)",
                 kind, record.job_id, tenant)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job (``DELETE /v1/jobs/<id>``), cooperatively.

        A queued job is cancelled immediately.  A running job gets the
        on-disk sentinel its workers poll: at their next step they raise,
        the scheduler persists flagged best-so-far outcomes through the
        same path the drain uses, and the job finishes as ``cancelled``.
        Terminal jobs are a 409 (cancellation is cooperative — a job that
        completes before its workers notice the sentinel stays ``done``).
        """
        with self._cond:
            record = self._registry.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.terminal:
                raise ServiceRejection(
                    409, f"job {job_id} is already {record.state}")
            queued_now = record.state == STATE_QUEUED
            if queued_now:
                queue = self._queues.get(record.tenant)
                if queue is not None:
                    try:
                        queue.remove(job_id)
                    except ValueError:  # pragma: no cover - resumed races
                        pass
            self._cancel_requested.add(job_id)
        sentinel = self.layout.cancel_path(record.tenant, job_id)
        sentinel.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(sentinel, "cancel requested\n")
        if queued_now:
            self._finish(record, STATE_CANCELLED)
            log.info("service: cancelled queued job %s", job_id)
        else:
            self._events_for(job_id).emit("cancelling", {"job_id": job_id})
            log.info("service: cancellation requested for running job %s",
                     job_id)
        return record

    def job(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._registry.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def job_summaries(self, tenant: str | None = None) -> list[dict]:
        with self._lock:
            records = list(self._registry.values())
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        records.sort(key=lambda r: (r.created_at, r.job_id))
        return [r.summary() for r in records]

    def job_events(self, job_id: str) -> _JobEvents:
        """The job's event log; terminal jobs from before a restart get a
        synthetic terminal frame so late subscribers still see an ending."""
        with self._lock:
            record = self._registry.get(job_id)
            if record is None:
                raise KeyError(job_id)
            events = self._events_for(job_id)
        if record.terminal and not events.closed:
            if record.state == STATE_DONE:
                events.emit("done", {"job_id": job_id, "result": record.result})
            elif record.state == STATE_CANCELLED:
                events.emit("cancelled", {"job_id": job_id})
            else:
                events.emit("failed", {"job_id": job_id, "error": record.error})
            events.close()
        return events

    def result_bytes(self, job_id: str, deterministic: bool = True) -> bytes:
        """The finished job's result document, as served bytes.

        For search jobs this is exactly
        :func:`~repro.utils.serialization.canonical_outcome_json` of the
        persisted outcome — byte-identical to canonicalizing an offline
        :func:`repro.optimize` run with the same seed.
        """
        record = self.job(job_id)
        if record.state != STATE_DONE:
            raise ServiceRejection(
                409, f"job {job_id} is {record.state}, not done")
        store = ResultStore(self.layout.store_dir(record.tenant, job_id),
                            writer=False, create=False,
                            cache_dir=self.layout.cache_dir)
        latest = store.latest_outcomes()
        if record.kind == "search":
            cell = record.spec().jobs()[0].job_id
            return canonical_outcome_json(
                latest[cell], deterministic=deterministic).encode()
        cells = {cell: (deterministic_outcome_payload(payload)
                        if deterministic else payload)
                 for cell, payload in latest.items()}
        document = {
            "kind": "campaign",
            "campaign": record.spec().name,
            "jobs": cells,
            "report": CampaignReport.from_store(store).to_text(),
        }
        return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()

    def health_payload(self) -> dict:
        import repro  # runtime import: repro/__init__ imports this module

        with self._lock:
            depth = self._queue_depth_locked()
            tenants = {tenant: len(queue)
                       for tenant, queue in self._queues.items() if queue}
        return {
            "status": "draining" if self.draining else "ok",
            "version": repro.__version__,
            "pid": os.getpid(),
            "root": str(self.layout.root),
            "workers": self.config.n_workers,
            "queue": {"depth": depth, "limit": self.config.queue_limit,
                      "tenants": tenants},
            # repro-lint: allow[determinism-clock] health endpoint uptime is operational metadata, not a result
            "uptime_seconds": time.time() - self.started_at,
        }

    def metrics_payload(self) -> dict:
        with self._lock:
            queued = self._queue_depth_locked()
            running = sum(1 for r in self._registry.values()
                          if r.state == STATE_RUNNING)
        return self.metrics.snapshot(queued=queued, running=running)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _events_for(self, job_id: str) -> _JobEvents:
        with self._lock:
            events = self._events.get(job_id)
            if events is None:
                events = self._events[job_id] = _JobEvents()
            return events

    def _enqueue_locked(self, record: JobRecord) -> None:
        queue = self._queues.get(record.tenant)
        if queue is None:
            queue = self._queues[record.tenant] = deque()
            self._rr.append(record.tenant)
        queue.append(record.job_id)

    def _next_job_locked(self) -> JobRecord | None:
        """Round-robin across tenants, FIFO within each tenant."""
        for _ in range(len(self._rr)):
            tenant = self._rr[0]
            self._rr.rotate(-1)
            queue = self._queues.get(tenant)
            if queue:
                return self._registry[queue.popleft()]
        return None

    def _queue_depth_locked(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                record = None
                while not self._draining.is_set():
                    record = self._next_job_locked()
                    if record is not None:
                        break
                    self._cond.wait(0.5)
                if record is None:
                    # Draining: leave still-queued jobs for the next daemon,
                    # they are already persisted as queued.
                    return
                record.state = STATE_RUNNING
                # repro-lint: allow[determinism-clock] job lifecycle timestamp; excluded from served result payloads
                record.started_at = time.time()
                record.attempts += 1
            # Everything per-job stays inside the try: a dispatcher thread
            # that dies takes its share of the throughput (and any job it
            # would ever have run) with it, so no per-job error may escape.
            try:
                self.layout.save_record(record)
                self.fault_fire("daemon.dispatch",
                                f"{record.tenant}:{record.kind}")
                self._events_for(record.job_id).emit(
                    "running",
                    {"job_id": record.job_id, "attempt": record.attempts})
                self._execute(record)
            except Exception as error:  # noqa: BLE001 - keep dispatching
                log.error("service: job %s crashed the dispatcher: %r",
                          record.job_id, error)
                try:
                    self._finish(record, STATE_FAILED, error=repr(error))
                except Exception:  # noqa: BLE001 - job dir may be gone
                    log.exception("service: could not record job %s as "
                                  "failed", record.job_id)

    def _execute(self, record: JobRecord) -> None:
        events = self._events_for(record.job_id)
        started = time.monotonic()
        executor, generation = self._pool_state()
        try:
            spec = record.spec()
            store = ResultStore(
                self.layout.store_dir(record.tenant, record.job_id),
                spec=spec, cache_dir=self.layout.cache_dir)
            scheduler = CampaignScheduler(
                spec, store, executor=executor,
                progress=PoolProgress(
                    tag=record.job_id,
                    step_period=self.config.step_period,
                    heartbeat_seconds=self.config.worker_heartbeat_seconds,
                    cancel_path=str(self.layout.cancel_path(
                        record.tenant, record.job_id))),
                fault_hook=self._fault_hook)

            def on_cell(job, outcome) -> None:
                events.emit("cell_done", {
                    "cell": job.job_id,
                    "best_edp": outcome.best_edp,
                    "samples": outcome.total_samples,
                    "interrupted": outcome.interrupted,
                })

            run = scheduler.run(on_job_done=on_cell)
        except BrokenProcessPool as error:
            # A worker died hard (SIGKILL by the watchdog, OOM, a crash):
            # the pool is permanently broken.  Respawn it and requeue the
            # job — completed cells are already persisted, so the retry
            # resumes from the store and stays bit-identical.
            log.warning("service: job %s lost its worker pool (%r)",
                        record.job_id, error)
            self._forget_liveness(record.job_id)
            self._ensure_pool(generation)
            self._requeue_or_fail(record, f"worker pool broke: {error!r}")
            return
        except OSError as error:
            # Transient store I/O (disk full, partial write): the append
            # failed *before* the result line landed, so a retry re-runs
            # only the unpersisted cells.
            log.warning("service: job %s hit an I/O error (%r)",
                        record.job_id, error)
            self._forget_liveness(record.job_id)
            self._requeue_or_fail(record, f"store I/O error: {error!r}")
            return
        except Exception as error:  # noqa: BLE001 - job-level failure
            log.warning("service: job %s failed: %r", record.job_id, error)
            self._forget_liveness(record.job_id)
            self._finish(record, STATE_FAILED, error=repr(error))
            return
        self._forget_liveness(record.job_id)
        if run.was_interrupted:
            if self._cancel_pending(record):
                # The interrupt came from the cancellation sentinel, not the
                # drain: flagged best-so-far cells are persisted, the job
                # ends as cancelled.
                self._finish(record, STATE_CANCELLED)
                log.info("service: job %s cancelled "
                         "(%d best-so-far cells persisted)",
                         record.job_id, len(run.interrupted))
                return
            # Drain: flagged best-so-far cells are persisted in the store;
            # the record goes back to queued for the next daemon to resume.
            # As in _finish, the record is re-queued and persisted before the
            # terminal frame so a client that saw it observes the final state.
            with self._lock:
                record.state = STATE_QUEUED
            self.layout.save_record(record)
            self.metrics.count("jobs_interrupted")
            events.emit("interrupted",
                        {"job_id": record.job_id,
                         "persisted_cells": run.interrupted})
            events.close()
            log.info("service: job %s interrupted by drain "
                     "(%d best-so-far cells persisted)",
                     record.job_id, len(run.interrupted))
            return
        if run.failed:
            first_id, first_error = run.failed[0]
            self._finish(record, STATE_FAILED,
                         error=f"{len(run.failed)} cells failed "
                               f"(first: {first_id}: {first_error})")
            return
        if run.pending_after:
            self._finish(record, STATE_FAILED,
                         error=f"{len(run.pending_after)} cells unexpectedly "
                               "pending after a full run")
            return
        summary = {
            "cells": len(run.outcomes),
            "samples": sum(o.total_samples for o in run.outcomes.values()),
        }
        if run.outcomes:
            summary["best_edp"] = min(o.best_edp
                                      for o in run.outcomes.values())
        # Latency is observed before the terminal event: a client that saw
        # the "done" frame must find this job in the /metrics percentiles.
        self.metrics.observe_latency(time.monotonic() - started)
        self._finish(record, STATE_DONE, result=summary)

    def _finish(self, record: JobRecord, state: str, error: str | None = None,
                result: dict | None = None) -> None:
        # State, persisted record and counters must all be in place before
        # the terminal frame goes out: a client that saw "done" on the event
        # stream may immediately fetch the result (no 409) and the metrics
        # (this job counted).  If a subscriber lands in between, job_events
        # synthesizes the terminal frame and closes the log first — emit on
        # a closed log is a no-op, so the frame is never duplicated.
        events = self._events_for(record.job_id)
        with self._lock:
            record.state = state
            # repro-lint: allow[determinism-clock] job lifecycle timestamp; excluded from served result payloads
            record.finished_at = time.time()
            record.error = error
            record.result = result
            self._cancel_requested.discard(record.job_id)
        self.layout.save_record(record)
        if state == STATE_DONE:
            self.metrics.count("jobs_done")
            events.emit("done", {"job_id": record.job_id, "result": result})
        elif state == STATE_CANCELLED:
            self.metrics.count("jobs_cancelled")
            events.emit("cancelled", {"job_id": record.job_id})
        else:
            self.metrics.count("jobs_failed")
            events.emit("failed", {"job_id": record.job_id, "error": error})
        events.close()

    def _cancel_pending(self, record: JobRecord) -> bool:
        with self._lock:
            if record.job_id in self._cancel_requested:
                return True
        # The sentinel is authoritative (covers a cancel issued against the
        # previous daemon just before it crashed).
        return self.layout.cancel_path(record.tenant,
                                       record.job_id).exists()

    def _requeue_or_fail(self, record: JobRecord, reason: str) -> None:
        """Retry a job after an infrastructure failure, up to max_attempts."""
        if self._cancel_pending(record):
            self._finish(record, STATE_CANCELLED)
            return
        if record.attempts >= self.config.max_attempts:
            self._finish(record, STATE_FAILED,
                         error=f"{reason} (giving up after "
                               f"{record.attempts} attempts)")
            return
        # Persist the queued state *before* the record becomes poppable: a
        # dispatcher woken by the notify would otherwise race this thread's
        # save_record with its own running-state save of the same job.
        with self._lock:
            record.state = STATE_QUEUED
        self.layout.save_record(record)
        with self._cond:
            if not self._draining.is_set():
                self._enqueue_locked(record)
            self._cond.notify()
        self.metrics.count("jobs_retried")
        self._events_for(record.job_id).emit(
            "retrying", {"job_id": record.job_id,
                         "attempt": record.attempts, "reason": reason})
        log.info("service: job %s requeued after attempt %d (%s)",
                 record.job_id, record.attempts, reason)

    def _forget_liveness(self, tag: str) -> None:
        with self._lock:
            for key in [k for k in self._liveness if k[0] == tag]:
                self._liveness.pop(key, None)

    def _watchdog_loop(self) -> None:
        """SIGKILL workers that stopped heartbeating mid-cell.

        The kill surfaces as ``BrokenProcessPool`` in the dispatcher driving
        that job, which respawns the pool and requeues — turning a silent
        hang into the same recovery path as a worker crash.
        """
        timeout = self.config.watchdog_seconds
        interval = max(0.2, min(1.0, timeout / 4.0))
        while not self._progress_stop.wait(interval):
            now = time.monotonic()
            with self._lock:
                stale = [key for key, beat in self._liveness.items()
                         if now - beat > timeout]
                for key in stale:
                    self._liveness.pop(key, None)
            for tag, pid in stale:
                log.warning("service: worker %d on job %s silent for over "
                            "%.1fs; killing it", pid, tag, timeout)
                self.metrics.count("workers_killed")
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass  # already gone

    def _gc_loop(self) -> None:
        """Expire terminal jobs past their TTL; compact the spill on a timer."""
        compact_every = self.config.compact_interval_seconds
        next_compact = (time.monotonic() + compact_every
                        if compact_every is not None else None)
        while not self._progress_stop.wait(self.config.gc_interval_seconds):
            try:
                self._collect_expired()
            except Exception as error:  # noqa: BLE001 - keep sweeping
                log.warning("service: GC sweep failed: %r", error)
            if next_compact is not None \
                    and time.monotonic() >= next_compact:
                next_compact = time.monotonic() + compact_every
                try:
                    stats = compact_cache_dir(self.layout.cache_dir)
                    self.metrics.count("spill_compactions")
                    log.info("service: spill compacted (%s)", stats)
                except Exception as error:  # noqa: BLE001 - keep sweeping
                    log.warning("service: spill compaction failed: %r", error)

    def _collect_expired(self) -> None:
        ttl = self.config.job_ttl_seconds
        if ttl is None:
            return
        # repro-lint: allow[determinism-clock] TTL expiry compares persisted lifecycle timestamps, never result data
        now = time.time()
        expired: list[tuple[JobRecord, _JobEvents | None]] = []
        with self._lock:
            for record in list(self._registry.values()):
                if not record.terminal:
                    continue
                finished = record.finished_at or record.created_at
                if now - finished < ttl:
                    continue
                self._registry.pop(record.job_id, None)
                if record.idempotency_key:
                    self._idempotency.pop(
                        (record.tenant, record.idempotency_key), None)
                expired.append((record,
                                self._events.pop(record.job_id, None)))
        for record, events in expired:
            if events is not None:
                events.close()
            shutil.rmtree(self.layout.job_dir(record.tenant, record.job_id),
                          ignore_errors=True)
            self.metrics.count("jobs_expired")
            log.info("service: expired %s job %s (%s, ttl %.0fs)",
                     record.state, record.job_id, record.tenant, ttl)

    def _progress_loop(self) -> None:
        """Translate worker-channel tuples into SSE events and metrics."""
        while not self._progress_stop.is_set():
            try:
                item = self._progress_queue.get(timeout=0.25)
            except Empty:
                continue
            except (OSError, EOFError, ValueError):  # pragma: no cover
                return
            try:
                event, tag, payload = item
            except (TypeError, ValueError):  # pragma: no cover - bad frame
                continue
            pid = payload.get("pid") if isinstance(payload, dict) else None
            if event == "stats":
                self.metrics.add_cache(int(payload.get("hits", 0)),
                                       int(payload.get("misses", 0)))
                if pid is not None:
                    # Cell finished: the worker is idle again, stop
                    # watching it (idle workers legitimately go silent).
                    with self._lock:
                        self._liveness.pop((tag, int(pid)), None)
                continue
            if event in ("job", "hb") and pid is not None:
                with self._lock:
                    self._liveness[(tag, int(pid))] = time.monotonic()
            if event == "hb":
                continue  # liveness bookkeeping only, not a client event
            name = "cell_started" if event == "job" else event
            with self._lock:
                events = self._events.get(tag)
            if events is not None:
                events.emit(name, payload)


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #
def _build_handler(service: SearchService) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service"
        timeout = service.config.request_timeout

        # -------------------------------------------------------------- #
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            log.debug("http %s: " + format, self.address_string(), *args)

        def _send_bytes(self, status: int, body: bytes, content_type: str,
                        headers: dict[str, str] | None = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: dict,
                       headers: dict[str, str] | None = None) -> None:
            body = (json.dumps(payload, indent=2, sort_keys=True)
                    + "\n").encode()
            self._send_bytes(status, body, "application/json", headers)

        def _send_error_json(self, status: int, message: str,
                             headers: dict[str, str] | None = None) -> None:
            self._send_json(status, {"error": message}, headers)

        def _send_rejection(self, rejection: ServiceRejection) -> None:
            headers = {}
            if rejection.retry_after is not None:
                headers["Retry-After"] = str(int(rejection.retry_after) or 1)
            self._send_error_json(rejection.status, rejection.reason, headers)

        # -------------------------------------------------------------- #
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            from urllib.parse import parse_qs, urlsplit

            parts = urlsplit(self.path)
            path, query = parts.path, parse_qs(parts.query)
            try:
                if path == "/healthz":
                    self._send_json(200, service.health_payload())
                elif path == "/metrics":
                    self._send_json(200, service.metrics_payload())
                elif path == "/v1/jobs":
                    tenant = query.get("tenant", [None])[0]
                    self._send_json(
                        200, {"jobs": service.job_summaries(tenant)})
                elif path.startswith("/v1/jobs/"):
                    rest = path[len("/v1/jobs/"):]
                    if rest.endswith("/events"):
                        self._stream_events(rest[:-len("/events")])
                    elif rest.endswith("/result"):
                        flag = query.get("deterministic", ["1"])[0]
                        deterministic = flag not in ("0", "false", "no")
                        body = service.result_bytes(rest[:-len("/result")],
                                                    deterministic)
                        self._send_bytes(200, body, "application/json")
                    elif "/" not in rest and rest:
                        self._send_json(200, service.job(rest).summary())
                    else:
                        self._send_error_json(404, f"no route for {path}")
                else:
                    self._send_error_json(404, f"no route for {path}")
            except KeyError as error:
                self._send_error_json(404, f"unknown job {error.args[0]}")
            except ServiceRejection as rejection:
                self._send_rejection(rejection)

        def do_DELETE(self) -> None:  # noqa: N802 - http.server API
            path = urlsplit_path(self.path)
            if not path.startswith("/v1/jobs/"):
                self._send_error_json(404, f"no route for {path}")
                return
            job_id = path[len("/v1/jobs/"):]
            if not job_id or "/" in job_id:
                self._send_error_json(404, f"no route for {path}")
                return
            try:
                record = service.cancel(job_id)
            except KeyError:
                self._send_error_json(404, f"unknown job {job_id}")
                return
            except ServiceRejection as rejection:
                self._send_rejection(rejection)
                return
            self._send_json(202, record.summary())

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if urlsplit_path(self.path) != "/v1/jobs":
                self._send_error_json(404, f"no route for {self.path}")
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._send_error_json(400, "bad Content-Length")
                return
            if length > MAX_REQUEST_BYTES:
                self._send_error_json(413, "request body too large")
                return
            try:
                payload = json.loads(self.rfile.read(length) or b"null")
            except (ValueError, OSError):
                self._send_error_json(400, "request body is not valid JSON")
                return
            try:
                record = service.submit(payload)
            except RequestError as error:
                self._send_error_json(400, str(error))
                return
            except ServiceRejection as rejection:
                self._send_rejection(rejection)
                return
            self._send_json(202, record.summary())

        # -------------------------------------------------------------- #
        def _stream_events(self, job_id: str) -> None:
            try:
                events = service.job_events(job_id)
            except KeyError:
                self._send_error_json(404, f"unknown job {job_id}")
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            seq = 0
            last_id = self.headers.get("Last-Event-ID")
            if last_id is not None:
                # Ids are "<epoch>.<seq>"; a bare integer (same-daemon
                # shorthand) is honored too.  An id from another daemon's
                # epoch means the in-memory log restarted — replay from 0.
                epoch, _, num = last_id.rpartition(".")
                if not epoch or epoch == service.events_epoch:
                    try:
                        seq = int(num) + 1
                    except ValueError:
                        pass
            try:
                while True:
                    batch, closed = events.since(
                        seq, timeout=service.config.heartbeat_seconds)
                    for seq_i, name, payload in batch:
                        try:
                            service.fault_fire("sse.frame",
                                               f"{job_id}:{name}:{seq_i}")
                        except FaultDrop:
                            # Injected connection drop: close the stream
                            # abruptly, mid-job — the client reconnects
                            # with Last-Event-ID and replays from here.
                            return
                        frame = (f"id: {service.events_epoch}.{seq_i}\n"
                                 f"event: {name}\n"
                                 f"data: {json.dumps(payload, sort_keys=True)}"
                                 "\n\n")
                        self.wfile.write(frame.encode())
                        seq = seq_i + 1
                    if not batch and not closed:
                        self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    if closed and not batch:
                        return
            except (BrokenPipeError, ConnectionResetError,
                    socket.timeout, OSError):
                return  # client went away; nothing to clean up

    return Handler


def urlsplit_path(path: str) -> str:
    from urllib.parse import urlsplit

    return urlsplit(path).path


def create_server(service: SearchService,
                  host: str | None = None,
                  port: int | None = None) -> ThreadingHTTPServer:
    """Bind the HTTP front-end (``port=0`` picks an ephemeral port)."""
    server = ThreadingHTTPServer(
        (service.config.host if host is None else host,
         service.config.port if port is None else port),
        _build_handler(service))
    server.daemon_threads = True
    return server


def write_endpoint_file(service: SearchService,
                        server: ThreadingHTTPServer) -> Path:
    """Publish the live endpoint at ``<root>/service.json`` (atomic)."""
    host, port = server.server_address[:2]
    return write_json_atomic(service.layout.endpoint_path, {
        "host": host,
        "port": port,
        "pid": os.getpid(),
        "started_at": service.started_at,
    })


def serve(config: ServiceConfig,
          ready: Callable[[SearchService, ThreadingHTTPServer], None]
          | None = None) -> int:
    """Blocking daemon entry point (the body of ``repro.cli serve``).

    Installs SIGTERM/SIGINT handlers that drain gracefully (a second signal
    hard-exits).  ``ready`` is called once the socket is bound — the service
    smoke tests use it; scripts can also poll ``<root>/service.json``.
    """
    import signal

    service = SearchService(config)
    service.start()
    server = create_server(service)
    write_endpoint_file(service, server)
    host, port = server.server_address[:2]
    log.info("service listening on http://%s:%d (root %s)",
             host, port, service.layout.root)
    if ready is not None:
        ready(service, server)
    stopping = threading.Event()

    def _shutdown() -> None:
        service.drain()
        server.shutdown()

    def _graceful(signum, frame) -> None:
        if stopping.is_set():  # pragma: no cover - second-signal hard exit
            os._exit(130)
        stopping.set()
        threading.Thread(target=_shutdown, name="svc-shutdown",
                         daemon=True).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _graceful)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        if not stopping.is_set():
            service.drain()
        try:
            service.layout.endpoint_path.unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    return 0
