"""Mapping representation and mappers.

A *mapping* fixes, for one layer, the spatial and temporal tiling factors at
every memory level and the per-level loop orderings (paper Section 3.1.2).
This package provides:

* :class:`~repro.mapping.mapping.Mapping` — the factor/ordering container used
  by both the differentiable model and the iterative reference model,
* rounding of fractional factors to the nearest valid divisors (Section 5.3.2),
  both as a per-mapping scalar walk (the parity oracle) and as a vectorized
  ``(S, L)`` integer-rounding kernel over stacked factor tensors
  (:mod:`~repro.mapping.rounding_walk`),
* a random valid mapper (used by the search baselines and the correlation and
  surrogate-training datasets),
* a CoSA-style heuristic mapper used to seed gradient-descent start points and
  as the "constant mapper" of the Figure 9 study.
"""

from repro.mapping.mapping import (
    LoopOrdering,
    Mapping,
    SPATIAL_DIMS,
    ordering_for_tensor,
    DEFAULT_ORDERINGS,
)
from repro.mapping.rounding import round_mapping, round_factors_for_dimension
from repro.mapping.rounding_walk import (
    RoundingTables,
    round_factor_tensors,
    round_mapping_batch,
)
from repro.mapping.constraints import (
    mapping_is_valid,
    validate_mapping,
    mapping_fits_hardware,
    capacity_requirements,
    minimal_hardware_for_mapping,
    minimal_hardware_for_mappings,
)
from repro.mapping.random_mapper import random_mapping, random_mapping_for_hardware
from repro.mapping.cosa import cosa_mapping

__all__ = [
    "LoopOrdering",
    "Mapping",
    "SPATIAL_DIMS",
    "ordering_for_tensor",
    "DEFAULT_ORDERINGS",
    "round_mapping",
    "round_factors_for_dimension",
    "RoundingTables",
    "round_factor_tensors",
    "round_mapping_batch",
    "mapping_is_valid",
    "validate_mapping",
    "mapping_fits_hardware",
    "capacity_requirements",
    "minimal_hardware_for_mapping",
    "minimal_hardware_for_mappings",
    "random_mapping",
    "random_mapping_for_hardware",
    "cosa_mapping",
]
