"""Exhaustive mapping search for small layers (an optimality oracle).

For layers whose dimensions have few divisors, the full mapspace (all divisor
splits across the memory levels plus the three loop orderings) is small enough
to enumerate.  The exhaustive optimum serves two purposes in the reproduction:

* a ground-truth oracle for tests — heuristic and gradient-based mappers can be
  checked against the true best EDP on tiny layers,
* a way to measure how close CoSA-style and DOSA mappings get to optimal on
  problems where the optimum is known, mirroring the "near-optimal mappings"
  claim of Section 6.4 at a scale where it can be verified exactly.

The enumeration cost grows as the product of the per-dimension divisor-split
counts; :func:`mapspace_size` lets callers check it is tractable before
enumerating.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.constraints import mapping_fits_hardware
from repro.mapping.mapping import DIM_INDEX, LoopOrdering, Mapping, NUM_LEVELS, SPATIAL_DIMS
from repro.timeloop.model import evaluate_mapping
from repro.utils.math_utils import divisors
from repro.workloads.layer import DIMENSIONS, LayerDims


def _splits(value: int, positions: int) -> list[tuple[int, ...]]:
    """All ways to write ``value`` as an ordered product of ``positions`` divisors."""
    if positions == 1:
        return [(value,)]
    results: list[tuple[int, ...]] = []
    for head in divisors(value):
        for rest in _splits(value // head, positions - 1):
            results.append((head, *rest))
    return results


def _positions_per_dim(dim: str) -> int:
    """Number of factor positions for one dimension (temporal levels + spatial slot)."""
    spatial_levels = {d for _, d in SPATIAL_DIMS}
    return NUM_LEVELS + (1 if dim in spatial_levels else 0)


def mapspace_size(layer: LayerDims, orderings_per_level: int = 3) -> int:
    """Number of candidate mappings the exhaustive search would enumerate."""
    total = orderings_per_level
    for dim in DIMENSIONS:
        total *= len(_splits(layer.dim(dim), _positions_per_dim(dim)))
    return total


def enumerate_mappings(
    layer: LayerDims,
    max_spatial: int = 128,
    include_orderings: bool = True,
) -> Iterator[Mapping]:
    """Yield every structurally valid mapping of ``layer`` (use on small layers only)."""
    spatial_levels = {d: level for level, d in SPATIAL_DIMS}
    per_dim_splits = [_splits(layer.dim(dim), _positions_per_dim(dim)) for dim in DIMENSIONS]
    orderings = ([LoopOrdering.WEIGHT_STATIONARY, LoopOrdering.INPUT_STATIONARY,
                  LoopOrdering.OUTPUT_STATIONARY] if include_orderings
                 else [LoopOrdering.WEIGHT_STATIONARY])

    for combination in product(*per_dim_splits):
        mapping = Mapping(layer=layer)
        feasible = True
        for dim, split in zip(DIMENSIONS, combination):
            j = DIM_INDEX[dim]
            for level in range(NUM_LEVELS):
                mapping.temporal[level, j] = float(split[level])
            if dim in spatial_levels:
                spatial_value = split[NUM_LEVELS]
                if spatial_value > max_spatial:
                    feasible = False
                    break
                mapping.spatial[spatial_levels[dim], j] = float(spatial_value)
        if not feasible:
            continue
        for ordering in orderings:
            yield mapping.with_orderings([ordering] * NUM_LEVELS)


@dataclass(frozen=True)
class ExhaustiveResult:
    """Outcome of an exhaustive mapspace sweep on one layer."""

    best_mapping: Mapping
    best_edp: float
    evaluated: int


def exhaustive_best_mapping(
    layer: LayerDims,
    hardware: HardwareConfig,
    max_candidates: int = 2_000_000,
    require_fit: bool = True,
) -> ExhaustiveResult:
    """The EDP-optimal mapping of ``layer`` on ``hardware`` by enumeration.

    Raises ``ValueError`` when the mapspace exceeds ``max_candidates`` — the
    oracle is meant for small layers; large layers are what the heuristic and
    gradient-based mappers are for.
    """
    size = mapspace_size(layer)
    if size > max_candidates:
        raise ValueError(
            f"mapspace of {size} candidates exceeds the limit of {max_candidates}; "
            "exhaustive search is only intended for small layers")
    spec = GemminiSpec(hardware)
    best_mapping: Mapping | None = None
    best_edp = float("inf")
    evaluated = 0
    for mapping in enumerate_mappings(layer, max_spatial=hardware.pe_dim):
        if require_fit and not mapping_fits_hardware(mapping, hardware):
            continue
        result = evaluate_mapping(mapping, spec)
        evaluated += 1
        if result.edp < best_edp:
            best_edp = result.edp
            best_mapping = mapping
    if best_mapping is None:
        raise RuntimeError("no feasible mapping found in the exhaustive sweep")
    return ExhaustiveResult(best_mapping=best_mapping, best_edp=best_edp, evaluated=evaluated)
