"""A CoSA-style constrained heuristic mapper.

The original DOSA flow seeds gradient descent with mappings produced by
CoSA [Huang et al., ISCA 2021], an ILP-based scheduler that maximizes buffer
utilization and spatial parallelism subject to capacity constraints (it
requires the proprietary Gurobi solver).  This module provides a greedy
constrained mapper with the same objective structure:

1. maximize PE-array utilization by choosing the largest C/K spatial factors
   that fit the array,
2. fill the accumulator with output-tile loops (innermost temporal level),
3. fill the scratchpad with weight/input reuse loops (reduction dimensions
   and R/S at the accumulator's temporal level),
4. leave the remaining iteration space at DRAM.

It always produces a valid mapping that fits the given hardware configuration
and serves both as the GD start-point mapper and as the "constant mapper"
baseline in the Figure 9 study.
"""

from __future__ import annotations

from repro.arch.components import (
    LEVEL_ACCUMULATOR,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
)
from repro.arch.config import HardwareConfig
from repro.mapping.constraints import tensor_tile_words
from repro.mapping.mapping import DIM_INDEX, LoopOrdering, Mapping
from repro.utils.math_utils import divisors
from repro.workloads.layer import LayerDims


def _largest_divisor_at_most(value: int, limit: float) -> int:
    """Largest divisor of ``value`` that does not exceed ``limit``."""
    best = 1
    for candidate in divisors(value):
        if candidate <= limit:
            best = candidate
    return best


Constraint = tuple[int, float, tuple[str, ...]]


def _grow_factor(
    mapping: Mapping,
    level: int,
    dim: str,
    constraints: list[Constraint],
) -> None:
    """Grow ``mapping.temporal[level, dim]`` as far as the capacity budgets allow.

    The factor is increased through successive divisors of the remaining
    iteration count while, for every ``(budget_level, budget_words, tensors)``
    constraint, the combined tile of ``tensors`` at ``budget_level`` stays
    within ``budget_words``.
    """
    j = DIM_INDEX[dim]
    remaining = int(round(mapping.layer.dim(dim) / mapping.factor_product(dim)
                          * mapping.temporal[level, j]))
    best = int(mapping.temporal[level, j])
    for candidate in divisors(remaining):
        if candidate < best:
            continue
        mapping.temporal[level, j] = float(candidate)
        fits = all(
            sum(tensor_tile_words(mapping, budget_level, t) for t in tensors) <= budget_words
            for budget_level, budget_words, tensors in constraints
        )
        if fits:
            best = candidate
        else:
            break
    mapping.temporal[level, j] = float(best)


def cosa_mapping(
    layer: LayerDims,
    config: HardwareConfig,
    scratchpad_partition: float = 0.5,
) -> Mapping:
    """Produce a performant valid mapping of ``layer`` onto ``config``.

    ``scratchpad_partition`` is the fraction of the scratchpad reserved for
    weights (the paper's CoSA setup partitions the scratchpad equally between
    inputs and weights).
    """
    if not (0.0 < scratchpad_partition < 1.0):
        raise ValueError("scratchpad_partition must lie strictly between 0 and 1")

    mapping = Mapping(layer=layer, orderings=(
        LoopOrdering.WEIGHT_STATIONARY,
        LoopOrdering.OUTPUT_STATIONARY,
        LoopOrdering.WEIGHT_STATIONARY,
        LoopOrdering.OUTPUT_STATIONARY,
    ))

    # 1. Spatial parallelism: largest C/K divisors that fit the PE array.
    spatial_c = _largest_divisor_at_most(layer.C, config.pe_dim)
    spatial_k = _largest_divisor_at_most(layer.K, config.pe_dim)
    mapping.set_spatial(LEVEL_ACCUMULATOR, "C", float(spatial_c))
    mapping.set_spatial(LEVEL_SCRATCHPAD, "K", float(spatial_k))

    # 2. Fill the accumulator with output-tile loops at the register level
    #    (these factors, together with the spatial K factor, define the output
    #    tile the accumulator must hold).  The scratchpad capacity is also
    #    enforced, since input tiles grow with the same P/Q factors.
    accumulator_budget = float(config.accumulator_words)
    scratchpad_budget = float(config.scratchpad_words)
    for dim in ("Q", "P", "N"):
        _grow_factor(mapping, LEVEL_REGISTERS, dim, [
            (LEVEL_ACCUMULATOR, accumulator_budget, ("O",)),
            (LEVEL_SCRATCHPAD, scratchpad_budget, ("W", "I")),
        ])

    # 3. Fill the scratchpad: weights first (R, S and the C remainder at the
    #    accumulator's temporal level), then inputs (more P/Q reuse).  Every
    #    step keeps the combined weight + input tile within the scratchpad.
    weight_budget = scratchpad_budget * scratchpad_partition
    for dim in ("R", "S", "C"):
        _grow_factor(mapping, LEVEL_ACCUMULATOR, dim, [
            (LEVEL_SCRATCHPAD, weight_budget, ("W",)),
            (LEVEL_SCRATCHPAD, scratchpad_budget, ("W", "I")),
        ])
    for dim in ("Q", "P"):
        _grow_factor(mapping, LEVEL_ACCUMULATOR, dim, [
            (LEVEL_SCRATCHPAD, scratchpad_budget, ("W", "I")),
        ])

    # 4. Everything left iterates at DRAM.
    mapping = mapping.with_dram_inferred()

    # The greedy growth only ever uses divisors, so the result is integral.
    return mapping
