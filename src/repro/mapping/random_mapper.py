"""Random valid-mapping generation.

Random mappings serve three roles in the reproduction, mirroring the paper:

* the correlation dataset of Figure 4 (random Gemmini configs x random
  mappings),
* the mapping side of the random-search and Bayesian-optimization baselines
  (Sections 6.1 and 6.3), including the "random-pruned" mapper used to
  evaluate the fixed baseline accelerators of Figure 8,
* the training dataset for the DNN latency-difference predictor (Section 6.5).
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import HardwareConfig
from repro.mapping.constraints import mapping_fits_hardware
from repro.mapping.mapping import (
    DIM_INDEX,
    LoopOrdering,
    Mapping,
    NUM_LEVELS,
    SPATIAL_DIMS,
)
from repro.utils.math_utils import prime_factorization
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.layer import DIMENSIONS, LayerDims


def _random_split(
    value: int, num_positions: int, rng: np.random.Generator
) -> list[int]:
    """Split ``value`` into ``num_positions`` integer factors whose product is ``value``.

    Each prime factor of ``value`` is assigned to a uniformly random position,
    which makes every divisor-split reachable.
    """
    factors = [1] * num_positions
    for prime in prime_factorization(value):
        position = int(rng.integers(num_positions))
        factors[position] *= prime
    return factors


def random_mapping(
    layer: LayerDims,
    seed: SeedLike = None,
    max_spatial: int = 128,
    randomize_orderings: bool = True,
) -> Mapping:
    """Sample a structurally valid random mapping for ``layer``.

    Spatial factors (C at the accumulator level, K at the scratchpad level)
    are capped at ``max_spatial``; excess prime factors spill into the same
    level's temporal factor so the per-dimension product stays exact.
    """
    rng = make_rng(seed)
    mapping = Mapping(layer=layer)
    spatial_levels = {dim: level for level, dim in SPATIAL_DIMS}

    for dim in DIMENSIONS:
        j = DIM_INDEX[dim]
        # Positions: temporal at each level, plus one spatial slot if allowed.
        has_spatial = dim in spatial_levels
        num_positions = NUM_LEVELS + (1 if has_spatial else 0)
        split = _random_split(layer.dim(dim), num_positions, rng)
        for level in range(NUM_LEVELS):
            mapping.temporal[level, j] = float(split[level])
        if has_spatial:
            spatial_value = split[NUM_LEVELS]
            level = spatial_levels[dim]
            # Respect the PE-array cap by demoting excess factors to temporal.
            while spatial_value > max_spatial:
                for prime in prime_factorization(spatial_value):
                    if spatial_value // prime <= max_spatial or prime > 1:
                        spatial_value //= prime
                        mapping.temporal[level, j] *= prime
                        break
            mapping.spatial[level, j] = float(spatial_value)

    if randomize_orderings:
        orderings = tuple(
            LoopOrdering(rng.choice([o.value for o in LoopOrdering]))
            for _ in range(NUM_LEVELS)
        )
        mapping = mapping.with_orderings(orderings)
    return mapping


def random_mapping_for_hardware(
    layer: LayerDims,
    config: HardwareConfig,
    seed: SeedLike = None,
    max_attempts: int = 200,
    randomize_orderings: bool = True,
) -> Mapping | None:
    """Sample a random mapping that fits ``config``; None if none found.

    This is the inner-loop mapper of the two-loop baselines: mappings are
    rejection-sampled against the hardware's PE-array and SRAM capacities.
    """
    rng = make_rng(seed)
    for _ in range(max_attempts):
        candidate = random_mapping(
            layer,
            seed=rng,
            max_spatial=config.pe_dim,
            randomize_orderings=randomize_orderings,
        )
        if mapping_fits_hardware(candidate, config):
            return candidate
    return None
