"""Rounding of fractional tiling factors to the nearest valid mapping.

Gradient descent produces real-valued tiling factors; before a mapping can be
evaluated (or hardware derived from it), every factor must be an integer
divisor of its problem dimension and the per-dimension product must equal the
problem size exactly.  The procedure follows Section 5.3.2 of the paper:
factors are rounded to the nearest divisor, iterating from the innermost to
the outermost memory level, never letting the running product exceed the
problem size; the outermost (DRAM) temporal factor absorbs the remainder.
"""

from __future__ import annotations

from repro.arch.components import LEVEL_DRAM, MEMORY_LEVEL_INDICES
from repro.mapping.mapping import DIM_INDEX, Mapping, SPATIAL_DIMS
from repro.utils.math_utils import round_to_nearest_divisor
from repro.workloads.layer import DIMENSIONS


def _positions_for_dim(dim: str) -> list[tuple[str, int]]:
    """Factor positions for ``dim`` ordered innermost to outermost.

    Spatial positions are interleaved at the level the WS dataflow assigns
    them; the DRAM temporal factor is excluded (it is inferred last).
    """
    positions: list[tuple[str, int]] = []
    spatial_levels = {d: level for level, d in SPATIAL_DIMS}
    for level in MEMORY_LEVEL_INDICES:
        if level != LEVEL_DRAM:
            positions.append(("T", level))
        if spatial_levels.get(dim) == level:
            positions.append(("S", level))
    return positions


def round_factors_for_dimension(mapping: Mapping, dim: str, max_spatial: float | None = None) -> None:
    """Round all factors of one dimension in place (innermost to outermost).

    ``max_spatial`` caps the spatial factor of ``dim``; a fractional cap
    (e.g. a mesh bound computed as ``15.999999...``) is rounded to the
    nearest integer rather than truncated, so float noise cannot silently
    shrink the spatial tile.  Caps below 1 are rejected outright.
    """
    if max_spatial is not None and max_spatial < 1:
        raise ValueError(f"max_spatial must be >= 1, got {max_spatial}")
    total = mapping.layer.dim(dim)
    remaining = total
    j = DIM_INDEX[dim]
    for kind, level in _positions_for_dim(dim):
        raw = mapping.spatial[level, j] if kind == "S" else mapping.temporal[level, j]
        limit = remaining
        if kind == "S" and max_spatial is not None:
            limit = min(limit, int(round(max_spatial)))
        rounded = round_to_nearest_divisor(max(raw, 1.0), remaining, max_value=limit)
        if kind == "S":
            mapping.spatial[level, j] = float(rounded)
        else:
            mapping.temporal[level, j] = float(rounded)
        remaining //= rounded
    mapping.temporal[LEVEL_DRAM, j] = float(remaining)


def round_mapping(mapping: Mapping, max_spatial: float | None = None) -> Mapping:
    """Return a valid, integral copy of ``mapping``.

    ``max_spatial`` optionally caps the spatial factors (the paper caps the
    PE array at 128x128, and the Gemmini-RTL experiments fix it to 16x16).
    Fractional caps are rounded to the nearest integer; caps below 1 raise
    ``ValueError``.
    """
    if max_spatial is not None and max_spatial < 1:
        raise ValueError(f"max_spatial must be >= 1, got {max_spatial}")
    rounded = mapping.copy()
    # The WS dataflow only supports spatial factors at the C/K positions; any
    # other spatial entry is structural noise and is reset before rounding.
    allowed = set(SPATIAL_DIMS)
    for level in MEMORY_LEVEL_INDICES:
        for dim in DIMENSIONS:
            if (level, dim) not in allowed:
                rounded.spatial[level, DIM_INDEX[dim]] = 1.0
    for dim in DIMENSIONS:
        round_factors_for_dimension(rounded, dim, max_spatial=max_spatial)
    return rounded
