"""The :class:`Mapping` container: tiling factors and loop orderings.

A mapping for one layer on the four-level Gemmini hierarchy consists of

* **temporal tiling factors** ``f_T[i, d]`` — the loop bound of dimension
  ``d`` at memory level ``i``,
* **spatial tiling factors** ``f_S[i, d]`` — the parallel (unrolled) bound of
  dimension ``d`` at level ``i``.  Gemmini's weight-stationary dataflow only
  parallelizes the input-channel dimension C (indexed at the accumulator
  level) and the output-channel dimension K (indexed at the scratchpad level),
  matching Equation 1 of the paper,
* a **loop ordering** per level, which fixes the relative order of that
  level's temporal loops and therefore which tensors enjoy temporal reuse.

For every dimension the product of all spatial and temporal factors must equal
the layer's problem size; :mod:`repro.mapping.rounding` restores this
invariant after gradient-descent updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Iterable, Mapping as MappingType, Sequence

import numpy as np

from repro.arch.components import (
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.workloads.layer import DIMENSIONS, LayerDims, TENSOR_DIMS

NUM_LEVELS = len(MEMORY_LEVEL_INDICES)
NUM_DIMS = len(DIMENSIONS)
DIM_INDEX: dict[str, int] = {d: i for i, d in enumerate(DIMENSIONS)}

# Gemmini weight-stationary dataflow: C is parallelized along one side of the
# systolic array (indexed at the accumulator level) and K along the other
# (indexed at the scratchpad level).  All other spatial factors are fixed at 1.
SPATIAL_DIMS: tuple[tuple[int, str], ...] = (
    (LEVEL_ACCUMULATOR, "C"),
    (LEVEL_SCRATCHPAD, "K"),
)


class LoopOrdering(str, Enum):
    """Named loop orderings considered by DOSA (Section 5.2).

    Each ordering keeps one tensor "stationary" at a level by placing the
    loops of dimensions *irrelevant* to that tensor innermost, maximizing that
    tensor's temporal reuse at the level.
    """

    WEIGHT_STATIONARY = "WS"
    INPUT_STATIONARY = "IS"
    OUTPUT_STATIONARY = "OS"

    @property
    def tensor(self) -> str:
        return {"WS": "W", "IS": "I", "OS": "O"}[self.value]


def ordering_for_tensor(ordering: LoopOrdering) -> tuple[str, ...]:
    """Concrete dimension order (innermost first) realizing ``ordering``.

    Dimensions irrelevant to the stationary tensor come first (innermost),
    then the relevant dimensions; within each group the canonical dimension
    order is kept so orderings are deterministic.
    """
    relevant = TENSOR_DIMS[ordering.tensor]
    irrelevant_dims = tuple(d for d in DIMENSIONS if d not in relevant)
    relevant_dims = tuple(d for d in DIMENSIONS if d in relevant)
    return irrelevant_dims + relevant_dims


# Default per-level orderings: weight-stationary everywhere, matching the
# fixed Gemmini dataflow used before loop-ordering search is enabled.
DEFAULT_ORDERINGS: tuple[LoopOrdering, ...] = tuple(
    LoopOrdering.WEIGHT_STATIONARY for _ in MEMORY_LEVEL_INDICES
)


@dataclass
class Mapping:
    """Tiling factors and loop orderings of one layer's mapping."""

    layer: LayerDims
    temporal: np.ndarray = field(default=None)  # shape (levels, dims)
    spatial: np.ndarray = field(default=None)   # shape (levels, dims)
    orderings: tuple[LoopOrdering, ...] = DEFAULT_ORDERINGS

    def __post_init__(self) -> None:
        if self.temporal is None:
            self.temporal = np.ones((NUM_LEVELS, NUM_DIMS), dtype=np.float64)
        if self.spatial is None:
            self.spatial = np.ones((NUM_LEVELS, NUM_DIMS), dtype=np.float64)
        self.temporal = np.asarray(self.temporal, dtype=np.float64)
        self.spatial = np.asarray(self.spatial, dtype=np.float64)
        if self.temporal.shape != (NUM_LEVELS, NUM_DIMS):
            raise ValueError(
                f"temporal factors must have shape {(NUM_LEVELS, NUM_DIMS)}, "
                f"got {self.temporal.shape}"
            )
        if self.spatial.shape != (NUM_LEVELS, NUM_DIMS):
            raise ValueError(
                f"spatial factors must have shape {(NUM_LEVELS, NUM_DIMS)}, "
                f"got {self.spatial.shape}"
            )
        if len(self.orderings) != NUM_LEVELS:
            raise ValueError(f"expected {NUM_LEVELS} loop orderings, got {len(self.orderings)}")
        self.orderings = tuple(LoopOrdering(o) for o in self.orderings)

    # ------------------------------------------------------------------ #
    # Factor access
    # ------------------------------------------------------------------ #
    def temporal_factor(self, level: int, dim: str) -> float:
        return float(self.temporal[level, DIM_INDEX[dim]])

    def spatial_factor(self, level: int, dim: str) -> float:
        return float(self.spatial[level, DIM_INDEX[dim]])

    def set_temporal(self, level: int, dim: str, value: float) -> None:
        self.temporal[level, DIM_INDEX[dim]] = value

    def set_spatial(self, level: int, dim: str, value: float) -> None:
        self.spatial[level, DIM_INDEX[dim]] = value

    def factor_product(self, dim: str) -> float:
        """Product of all spatial and temporal factors of ``dim``."""
        j = DIM_INDEX[dim]
        return float(self.temporal[:, j].prod() * self.spatial[:, j].prod())

    def spatial_product(self) -> float:
        """Product of every spatial factor (the number of PEs utilized)."""
        return float(self.spatial.prod())

    def loop_order(self, level: int) -> tuple[str, ...]:
        """Dimension order of the temporal loops at ``level``, innermost first."""
        return ordering_for_tensor(self.orderings[level])

    # ------------------------------------------------------------------ #
    # Manipulation
    # ------------------------------------------------------------------ #
    def copy(self) -> "Mapping":
        return Mapping(
            layer=self.layer,
            temporal=self.temporal.copy(),
            spatial=self.spatial.copy(),
            orderings=self.orderings,
        )

    def with_orderings(self, orderings: Sequence[LoopOrdering]) -> "Mapping":
        """Copy of this mapping with different per-level loop orderings."""
        return Mapping(
            layer=self.layer,
            temporal=self.temporal.copy(),
            spatial=self.spatial.copy(),
            orderings=tuple(orderings),
        )

    def with_dram_inferred(self) -> "Mapping":
        """Copy whose DRAM temporal factors absorb the remaining problem size.

        DOSA does not optimize DRAM-level factors directly (Section 5.3.3);
        they are inferred so that factor products match the layer dimensions.
        The inferred factor is clamped below at 1.
        """
        updated = self.copy()
        for dim in DIMENSIONS:
            j = DIM_INDEX[dim]
            inner = 1.0
            for level in MEMORY_LEVEL_INDICES:
                inner *= updated.spatial[level, j]
                if level != LEVEL_DRAM:
                    inner *= updated.temporal[level, j]
            total = float(updated.layer.dim(dim))
            updated.temporal[LEVEL_DRAM, j] = max(total / max(inner, 1e-12), 1.0)
        return updated

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def is_integral(self, tolerance: float = 1e-9) -> bool:
        """True when every tiling factor is (numerically) an integer."""
        return bool(
            np.all(np.abs(self.temporal - np.round(self.temporal)) <= tolerance)
            and np.all(np.abs(self.spatial - np.round(self.spatial)) <= tolerance)
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly representation used by the experiment harnesses."""
        return {
            "layer": self.layer.dims() | {
                "stride_p": self.layer.stride_p,
                "stride_q": self.layer.stride_q,
                "name": self.layer.name,
                "repeats": self.layer.repeats,
            },
            "temporal": self.temporal.tolist(),
            "spatial": self.spatial.tolist(),
            "orderings": [o.value for o in self.orderings],
        }

    @staticmethod
    def from_dict(payload: MappingType[str, object]) -> "Mapping":
        layer_info = dict(payload["layer"])
        layer = LayerDims(
            R=int(layer_info["R"]), S=int(layer_info["S"]), P=int(layer_info["P"]),
            Q=int(layer_info["Q"]), C=int(layer_info["C"]), K=int(layer_info["K"]),
            N=int(layer_info["N"]), stride_p=int(layer_info.get("stride_p", 1)),
            stride_q=int(layer_info.get("stride_q", 1)),
            name=str(layer_info.get("name", "")),
            repeats=int(layer_info.get("repeats", 1)),
        )
        return Mapping(
            layer=layer,
            temporal=np.asarray(payload["temporal"], dtype=np.float64),
            spatial=np.asarray(payload["spatial"], dtype=np.float64),
            orderings=tuple(LoopOrdering(o) for o in payload["orderings"]),
        )

    def describe(self) -> str:
        """Loop-nest style pretty print (outermost level first)."""
        names = {0: "registers", 1: "accumulator", 2: "scratchpad", 3: "dram"}
        lines = [f"mapping of {self.layer}"]
        for level in reversed(MEMORY_LEVEL_INDICES):
            parts = []
            for dim in reversed(self.loop_order(level)):  # outermost first
                value = self.temporal_factor(level, dim)
                if value > 1.0 + 1e-9:
                    parts.append(f"for {dim.lower()} in [0:{value:g})")
            for spatial_level, dim in SPATIAL_DIMS:
                if spatial_level == level and self.spatial_factor(level, dim) > 1.0 + 1e-9:
                    parts.append(
                        f"spatial_for {dim.lower()} in [0:{self.spatial_factor(level, dim):g})"
                    )
            ordering = self.orderings[level].value
            body = "; ".join(parts) if parts else "(no loops)"
            lines.append(f"  {names[level]:<12} [{ordering}] {body}")
        return "\n".join(lines)


def identity_mapping(layer: LayerDims) -> Mapping:
    """A trivial valid mapping: everything tiled at DRAM, nothing parallel."""
    mapping = Mapping(layer=layer)
    for dim in DIMENSIONS:
        mapping.set_temporal(LEVEL_DRAM, dim, float(layer.dim(dim)))
    return mapping


def factors_from_per_level_dict(
    layer: LayerDims,
    temporal: MappingType[int, MappingType[str, float]],
    spatial: MappingType[int, MappingType[str, float]] | None = None,
    orderings: Sequence[LoopOrdering] = DEFAULT_ORDERINGS,
) -> Mapping:
    """Build a mapping from nested ``{level: {dim: factor}}`` dictionaries."""
    mapping = Mapping(layer=layer, orderings=tuple(orderings))
    for level, dims in temporal.items():
        for dim, value in dims.items():
            mapping.set_temporal(level, dim, float(value))
    if spatial:
        for level, dims in spatial.items():
            for dim, value in dims.items():
                mapping.set_spatial(level, dim, float(value))
    return mapping
