"""Mapping validity checks, capacity requirements and minimal-hardware derivation.

The capacity rule implemented here (and mirrored by the differentiable model)
follows Section 4.1 / Figure 3 of the paper:

* the tile of tensor ``t`` held at memory level ``i`` is the product of the
  *temporal* tiling factors at all levels inner to ``i`` and of **all spatial
  factors** (the systolic array sits below every SRAM, and shared SRAMs must
  hold the union of all spatial instances' data),
* input tiles are computed from the output/weight window sizes and the layer
  strides (Equation 3),
* the per-level requirement is the sum over the tensors the level stores
  (bypass matrix, Table 4), and the whole-network hardware configuration takes
  the parameter-wise max across layers (Figure 3).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.arch.components import (
    BYPASS_MATRIX,
    LEVEL_ACCUMULATOR,
    LEVEL_DRAM,
    LEVEL_REGISTERS,
    LEVEL_SCRATCHPAD,
    MEMORY_LEVEL_INDICES,
)
from repro.arch.config import (
    DEFAULT_BOUNDS,
    HardwareBounds,
    HardwareConfig,
    merge_hardware_configs,
    minimal_hardware_for_requirements,
)
from repro.mapping.mapping import DIM_INDEX, Mapping, SPATIAL_DIMS
from repro.workloads.layer import DIMENSIONS, TENSOR_DIMS


def inner_extent(mapping: Mapping, level: int, dim: str) -> float:
    """Extent of dimension ``dim`` inside the level-``i`` tile.

    This is ``Inner(i, d)`` of the paper: the product of temporal factors at
    levels inner to ``level`` and of every spatial factor of the dimension.
    """
    j = DIM_INDEX[dim]
    extent = float(mapping.spatial[:, j].prod())
    for inner_level in range(level):
        extent *= float(mapping.temporal[inner_level, j])
    return extent


def tensor_tile_words(mapping: Mapping, level: int, tensor: str) -> float:
    """Words of tensor ``tensor`` that level ``level`` must hold (Eq. 2-4)."""
    layer = mapping.layer
    if tensor == "W":
        words = 1.0
        for dim in ("R", "S", "C", "K"):
            words *= inner_extent(mapping, level, dim)
        return words
    if tensor == "O":
        words = 1.0
        for dim in ("P", "Q", "K", "N"):
            words *= inner_extent(mapping, level, dim)
        return words
    if tensor == "I":
        words = inner_extent(mapping, level, "C") * inner_extent(mapping, level, "N")
        height = layer.stride_p * (inner_extent(mapping, level, "P") - 1.0) + inner_extent(
            mapping, level, "R"
        )
        width = layer.stride_q * (inner_extent(mapping, level, "Q") - 1.0) + inner_extent(
            mapping, level, "S"
        )
        return words * height * width
    raise KeyError(f"unknown tensor {tensor!r}")


def capacity_requirements(mapping: Mapping) -> dict[int, float]:
    """Total words each memory level must hold for ``mapping`` (Eq. 5)."""
    requirements: dict[int, float] = {}
    for level in MEMORY_LEVEL_INDICES:
        total = 0.0
        for tensor in BYPASS_MATRIX[level]:
            total += tensor_tile_words(mapping, level, tensor)
        requirements[level] = total
    return requirements


def spatial_requirement(mapping: Mapping) -> float:
    """The PE-array side length required by the mapping (sqrt of Eq. 1)."""
    return max(
        mapping.spatial_factor(level, dim) for level, dim in SPATIAL_DIMS
    )


def minimal_hardware_for_mapping(
    mapping: Mapping, bounds: HardwareBounds = DEFAULT_BOUNDS
) -> HardwareConfig:
    """Smallest hardware configuration able to execute ``mapping`` (Fig. 3)."""
    return minimal_hardware_for_requirements(
        spatial_requirement=spatial_requirement(mapping),
        accumulator_word_requirement=tensor_tile_words(mapping, LEVEL_ACCUMULATOR, "O"),
        scratchpad_word_requirement=(
            tensor_tile_words(mapping, LEVEL_SCRATCHPAD, "W")
            + tensor_tile_words(mapping, LEVEL_SCRATCHPAD, "I")
        ),
        bounds=bounds,
    )


def minimal_hardware_for_mappings(
    mappings: Iterable[Mapping], bounds: HardwareBounds = DEFAULT_BOUNDS
) -> HardwareConfig:
    """Parameter-wise max of per-mapping minimal configs (Section 4.5)."""
    configs = [minimal_hardware_for_mapping(m, bounds) for m in mappings]
    return merge_hardware_configs(configs, bounds)


# --------------------------------------------------------------------------- #
# Validity
# --------------------------------------------------------------------------- #
def validate_mapping(mapping: Mapping, tolerance: float = 1e-6) -> list[str]:
    """Return a list of constraint violations (empty when the mapping is valid)."""
    problems: list[str] = []
    if np.any(mapping.temporal < 1.0 - tolerance):
        problems.append("temporal tiling factor smaller than 1")
    if np.any(mapping.spatial < 1.0 - tolerance):
        problems.append("spatial tiling factor smaller than 1")
    if not mapping.is_integral(tolerance):
        problems.append("non-integer tiling factor")
    # Spatial factors only allowed at the weight-stationary C/K positions.
    allowed = np.ones_like(mapping.spatial, dtype=bool)
    for level, dim in SPATIAL_DIMS:
        allowed[level, DIM_INDEX[dim]] = False
    if np.any(mapping.spatial[allowed] > 1.0 + tolerance):
        problems.append("spatial factor at a position unsupported by the WS dataflow")
    for dim in DIMENSIONS:
        product = mapping.factor_product(dim)
        expected = float(mapping.layer.dim(dim))
        if abs(product - expected) > tolerance * max(expected, 1.0):
            problems.append(
                f"factors of dimension {dim} multiply to {product:g}, expected {expected:g}"
            )
    return problems


def mapping_is_valid(mapping: Mapping, tolerance: float = 1e-6) -> bool:
    """True when the mapping satisfies every structural constraint."""
    return not validate_mapping(mapping, tolerance)


def mapping_fits_hardware(
    mapping: Mapping, config: HardwareConfig, tolerance: float = 1e-6
) -> bool:
    """True when ``mapping`` fits within ``config``'s PE array and SRAMs."""
    if spatial_requirement(mapping) > config.pe_dim + tolerance:
        return False
    requirements = capacity_requirements(mapping)
    if requirements[LEVEL_REGISTERS] > config.register_words + tolerance:
        return False
    if requirements[LEVEL_ACCUMULATOR] > config.accumulator_words + tolerance:
        return False
    if requirements[LEVEL_SCRATCHPAD] > config.scratchpad_words + tolerance:
        return False
    return True
