"""Vectorized integer-rounding walk over stacked ``(S, L)`` factor tensors.

The batched counterpart of :func:`repro.mapping.rounding.round_mapping`: the
Section-5.3.2 nearest-divisor walk (innermost to outermost, DRAM absorbs the
remainder) expressed as NumPy array ops over all S mapping sets x L layers at
once, instead of one Python walk per mapping.  The scalar walk stays untouched
as the parity oracle — :mod:`tests.test_rounding_parity` fuzzes this kernel
against it and asserts bit-identity per mapping.

The trick is that every quantity the walk touches lives on a *finite lattice*:
each dimension's running ``remaining`` value is always a divisor of the layer's
problem size, and so is every candidate factor.  :class:`RoundingTables`
therefore precomputes, per (layer, dimension), the ascending divisor list of
the problem size plus a divisibility mask and a quotient-index table over it.
The walk then never manipulates integers directly — it carries ``remaining``
as an ``(S, L)`` array of *indices* into the divisor rows, selects each
position's factor with a masked ``argmin`` over the gap to the raw fractional
value (first minimum = smallest divisor, matching the scalar strict-``<``
tie-break), and advances the remainder through the quotient table.  The
``max_spatial`` cap and the WS reset of unsupported spatial positions are
masks; the DRAM factor is written last from the final remainder.

Walk order is imported from the scalar module
(:func:`repro.mapping.rounding._positions_for_dim`), so the two
implementations cannot drift apart on which position is "innermost".
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.arch.components import LEVEL_DRAM
from repro.mapping.mapping import DIM_INDEX, Mapping, NUM_DIMS, NUM_LEVELS
from repro.mapping.rounding import _positions_for_dim
from repro.utils.math_utils import divisors
from repro.workloads.layer import DIMENSIONS, LayerDims

__all__ = [
    "RoundingTables",
    "round_factor_tensors",
    "round_mapping_batch",
]


class _DimTable:
    """Divisor lattice of one dimension across L layers.

    ``ints``/``floats``
        ``(L, m)`` ascending divisors of each layer's problem size, padded
        with zeros on the right (padding is never a candidate).
    ``divides``
        ``(L, m, m)`` mask: ``divides[l, r, k]`` is True when divisor ``k``
        divides divisor ``r`` (both real entries of layer ``l``).
    ``quotients``
        ``(L, m, m)`` index table: where ``divides[l, r, k]`` holds,
        ``quotients[l, r, k]`` is the row index of ``ints[l, r] // ints[l, k]``
        — how ``remaining`` advances after choosing factor ``k``.
    ``start_index``
        ``(L,)`` index of each layer's problem size itself (the walk's
        initial ``remaining``).
    """

    __slots__ = ("ints", "floats", "divides", "quotients", "start_index")

    def __init__(self, totals: tuple[int, ...]) -> None:
        div_lists = [divisors(total) for total in totals]
        count = len(totals)
        width = max(len(divs) for divs in div_lists)
        self.ints = np.zeros((count, width), dtype=np.int64)
        self.divides = np.zeros((count, width, width), dtype=bool)
        self.quotients = np.zeros((count, width, width), dtype=np.intp)
        self.start_index = np.empty(count, dtype=np.intp)
        for row, divs in enumerate(div_lists):
            self.ints[row, : len(divs)] = divs
            self.start_index[row] = len(divs) - 1
            index_of = {d: k for k, d in enumerate(divs)}
            for r, outer in enumerate(divs):
                for k, inner in enumerate(divs):
                    if outer % inner == 0:
                        self.divides[row, r, k] = True
                        self.quotients[row, r, k] = index_of[outer // inner]
        self.floats = self.ints.astype(np.float64)


@lru_cache(maxsize=128)
def _dim_table(totals: tuple[int, ...]) -> _DimTable:
    """One :class:`_DimTable` per distinct per-layer size tuple (shared
    across dimensions that happen to have the same sizes, e.g. R and S)."""
    return _DimTable(totals)


class RoundingTables:
    """Per-dimension divisor tables for a fixed layer stack.

    Problem dimensions are fixed for a whole search, so the tables are built
    once (and cached per layer tuple via :meth:`for_layers`) and reused at
    every rounding point.
    """

    __slots__ = ("num_layers", "dims")

    def __init__(self, layers: Sequence[LayerDims]) -> None:
        if not layers:
            raise ValueError("RoundingTables requires at least one layer")
        self.num_layers = len(layers)
        self.dims: dict[str, _DimTable] = {
            dim: _dim_table(tuple(layer.dim(dim) for layer in layers))
            for dim in DIMENSIONS
        }

    @staticmethod
    def for_layers(layers: Sequence[LayerDims]) -> "RoundingTables":
        """Cached tables for ``layers`` (hashable :class:`LayerDims`)."""
        return _tables_for_layers(tuple(layers))


@lru_cache(maxsize=32)
def _tables_for_layers(layers: tuple[LayerDims, ...]) -> RoundingTables:
    return RoundingTables(layers)


def _spatial_limit(remaining_values: np.ndarray, cap: int) -> np.ndarray:
    """Per-entry spatial limit: ``min(remaining, cap)``, like the scalar walk."""
    return np.minimum(remaining_values, cap)


def _advance_remaining(table: _DimTable, rows: np.ndarray, rem_index: np.ndarray,
                       choice: np.ndarray) -> np.ndarray:
    """Carry the remainder: index of ``remaining // chosen`` per entry."""
    return table.quotients[rows, rem_index, choice]


def round_factor_tensors(
    temporal: np.ndarray,
    spatial: np.ndarray,
    tables: RoundingTables,
    max_spatial: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Round stacked fractional factor tensors to valid integral factors.

    ``temporal``/``spatial`` hold S mapping sets in :class:`Mapping` layout,
    shape ``(S, L, NUM_LEVELS, NUM_DIMS)``; set ``s``, row ``l`` is the
    (possibly fractional) mapping of layer ``l`` of ``tables``.  Returns the
    rounded ``(temporal, spatial)`` pair of the same shape, entry-for-entry
    equal to running :func:`~repro.mapping.rounding.round_mapping` on each
    mapping: spatial factors outside the WS positions reset to 1, the DRAM
    temporal row inferred from the remainder (its input values are ignored,
    exactly as the scalar walk overwrites them), and fractional ``max_spatial``
    caps rounded to the nearest integer.  Caps below 1 raise ``ValueError``.
    """
    if max_spatial is not None and max_spatial < 1:
        raise ValueError(f"max_spatial must be >= 1, got {max_spatial}")
    temporal = np.asarray(temporal, dtype=np.float64)
    spatial = np.asarray(spatial, dtype=np.float64)
    expected = (tables.num_layers, NUM_LEVELS, NUM_DIMS)
    if (temporal.ndim != 4 or temporal.shape[1:] != expected
            or spatial.shape != temporal.shape):
        raise ValueError(
            f"expected temporal/spatial of shape (S, {tables.num_layers}, "
            f"{NUM_LEVELS}, {NUM_DIMS}), got {temporal.shape} / {spatial.shape}")
    num_sets = temporal.shape[0]
    cap = None if max_spatial is None else int(round(max_spatial))

    out_temporal = np.ones_like(temporal)
    # Spatial positions outside SPATIAL_DIMS stay 1 (the WS reset); only the
    # walked positions below are ever written.
    out_spatial = np.ones_like(spatial)
    rows = np.arange(tables.num_layers)

    for dim in DIMENSIONS:
        j = DIM_INDEX[dim]
        table = tables.dims[dim]
        rem_index = np.broadcast_to(
            table.start_index, (num_sets, tables.num_layers)).copy()
        for kind, level in _positions_for_dim(dim):
            raw = (spatial if kind == "S" else temporal)[:, :, level, j]
            value = np.maximum(raw, 1.0)
            # Candidates: divisors of the current remainder...
            candidates = table.divides[rows, rem_index]
            if kind == "S" and cap is not None:
                # ...further capped (per entry) at min(remaining, cap).
                limit = _spatial_limit(table.ints[rows, rem_index], cap)
                candidates = candidates & (table.ints[None, :, :] <= limit[:, :, None])
            gaps = np.abs(value[:, :, None] - table.floats[None, :, :])
            gaps[~candidates] = np.inf
            # First minimum over ascending divisors = smallest divisor on a
            # tie, matching the scalar strict-< scan.
            choice = np.argmin(gaps, axis=2)
            # The scalar walk falls back to a factor of 1 when the cap
            # excludes every divisor; index 0 is each row's divisor 1.
            # (Unreachable while cap >= 1, but kept for exact oracle parity.)
            choice[~candidates.any(axis=2)] = 0
            rounded = table.ints[rows, choice]
            (out_spatial if kind == "S" else out_temporal)[:, :, level, j] = rounded
            rem_index = _advance_remaining(table, rows, rem_index, choice)
        out_temporal[:, :, LEVEL_DRAM, j] = table.ints[rows, rem_index]
    return out_temporal, out_spatial


def round_mapping_batch(
    mapping_sets: Sequence[Sequence[Mapping]],
    max_spatial: float | None = None,
) -> list[list[Mapping]]:
    """Round many mapping sets over the same layer stack in one kernel pass.

    ``mapping_sets`` holds S sequences of L mappings; position ``l`` must map
    the same problem dimensions in every set (the divisor tables are per
    layer).  Returns the same S x L structure with every mapping rounded
    exactly like :func:`~repro.mapping.rounding.round_mapping` (layers and
    orderings preserved).
    """
    sets = [list(mappings) for mappings in mapping_sets]
    if not sets or not sets[0]:
        raise ValueError("round_mapping_batch requires at least one mapping")
    layers = [m.layer for m in sets[0]]
    for mappings in sets:
        if len(mappings) != len(layers):
            raise ValueError("all mapping sets must cover the same layers")
        for mapping, layer in zip(mappings, layers):
            if mapping.layer.dims() != layer.dims():
                raise ValueError(
                    f"layer mismatch across sets: {mapping.layer.dims()} "
                    f"vs {layer.dims()}")
    temporal = np.stack([[m.temporal for m in mappings] for mappings in sets])
    spatial = np.stack([[m.spatial for m in mappings] for mappings in sets])
    out_temporal, out_spatial = round_factor_tensors(
        temporal, spatial, RoundingTables.for_layers(layers),
        max_spatial=max_spatial)
    return [
        [Mapping(layer=mapping.layer,
                 temporal=out_temporal[s, l].copy(),
                 spatial=out_spatial[s, l].copy(),
                 orderings=mapping.orderings)
         for l, mapping in enumerate(mappings)]
        for s, mappings in enumerate(sets)
    ]
