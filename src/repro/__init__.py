"""Reproduction of "DOSA: Differentiable Model-Based One-Loop Search for DNN
Accelerators" (Hong et al., MICRO 2023).

The package is organized bottom-up:

* :mod:`repro.autodiff` — reverse-mode automatic differentiation (PyTorch substitute),
* :mod:`repro.workloads` — DNN layer and network definitions (Table 6),
* :mod:`repro.arch` — the Gemmini-style accelerator and Table-2 cost model,
* :mod:`repro.mapping` — mappings, rounding, random and CoSA-style mappers,
* :mod:`repro.timeloop` — the iterative reference analytical model (Timeloop stand-in),
* :mod:`repro.eval` — the fast evaluation engine over the reference model
  (exact-result caching, vectorized batching, optional ``n_workers`` process
  pool), used by every search strategy,
* :mod:`repro.core` — the differentiable model (Eq. 1-18) and the DOSA searcher,
* :mod:`repro.search` — the unified search API (protocol, registry, budget,
  callbacks) plus the random-search and Bayesian-optimization baselines,
* :mod:`repro.campaign` — sharded, resumable experiment campaigns (declarative
  workload x strategy x seed x budget grids, a persistent JSONL result store
  that doubles as a cross-process evaluation-cache spill, and deterministic
  aggregate reports),
* :mod:`repro.service` — search-as-a-service: a job daemon serving searches
  and campaigns to many concurrent HTTP clients (bounded queue, SSE progress
  streams, per-tenant stores over one shared cache spill, graceful drain),
* :mod:`repro.surrogate` — the synthetic Gemmini-RTL simulator and learned latency models,
* :mod:`repro.experiments` — one harness per paper table/figure.

Quick start — one entry point for every search strategy::

    import repro

    outcome = repro.optimize("resnet50", strategy="dosa",
                             budget=repro.SearchBudget(max_samples=5000), seed=0)
    print(outcome.best_hardware.describe(), outcome.best_edp)

    for strategy in repro.available_strategies():   # dosa, random, bayesian, ...
        print(strategy)

Every strategy returns the same :class:`repro.SearchOutcome` with a
sample-indexed best-so-far trace, so methods are directly comparable as in
the paper's Figures 7-9.  The same search is available from the shell::

    python -m repro.cli search resnet50 --strategy dosa --max-samples 5000 --json out.json
"""

from repro.arch import GemminiSpec, HardwareConfig
from repro.campaign import (
    CampaignReport,
    CampaignScheduler,
    CampaignSpec,
    ResultStore,
    StrategyVariant,
    run_campaign,
)
from repro.core.optimizer import DosaSearcher, DosaSettings, LoopOrderingStrategy
from repro.eval import EvaluationCache, EvaluationEngine
from repro.mapping import Mapping, cosa_mapping, random_mapping
from repro.search.api import (
    CandidateDesign,
    ProgressCallback,
    SearchBudget,
    SearchCallback,
    Searcher,
    SearchOutcome,
    SearchTrace,
    available_strategies,
    create_searcher,
    get_searcher,
    optimize,
    register_searcher,
)
from repro.service import Client as ServiceClient
from repro.service import SearchService, ServiceConfig
from repro.timeloop import evaluate_mapping, evaluate_network_mappings
from repro.workloads import LayerDims, conv2d_layer, get_network, matmul_layer

__version__ = "2.5.0"

__all__ = [
    "GemminiSpec",
    "HardwareConfig",
    "CampaignReport",
    "CampaignScheduler",
    "CampaignSpec",
    "ResultStore",
    "StrategyVariant",
    "run_campaign",
    "DosaSearcher",
    "DosaSettings",
    "LoopOrderingStrategy",
    "EvaluationCache",
    "EvaluationEngine",
    "Mapping",
    "cosa_mapping",
    "random_mapping",
    "CandidateDesign",
    "ProgressCallback",
    "SearchBudget",
    "SearchCallback",
    "Searcher",
    "SearchOutcome",
    "SearchTrace",
    "available_strategies",
    "create_searcher",
    "get_searcher",
    "optimize",
    "register_searcher",
    "SearchService",
    "ServiceClient",
    "ServiceConfig",
    "evaluate_mapping",
    "evaluate_network_mappings",
    "LayerDims",
    "conv2d_layer",
    "matmul_layer",
    "get_network",
    "__version__",
]
