"""Reproduction of "DOSA: Differentiable Model-Based One-Loop Search for DNN
Accelerators" (Hong et al., MICRO 2023).

The package is organized bottom-up:

* :mod:`repro.autodiff` — reverse-mode automatic differentiation (PyTorch substitute),
* :mod:`repro.workloads` — DNN layer and network definitions (Table 6),
* :mod:`repro.arch` — the Gemmini-style accelerator and Table-2 cost model,
* :mod:`repro.mapping` — mappings, rounding, random and CoSA-style mappers,
* :mod:`repro.timeloop` — the iterative reference analytical model (Timeloop stand-in),
* :mod:`repro.core` — the differentiable model (Eq. 1-18) and the DOSA searcher,
* :mod:`repro.search` — random-search and Bayesian-optimization baselines,
* :mod:`repro.surrogate` — the synthetic Gemmini-RTL simulator and learned latency models,
* :mod:`repro.experiments` — one harness per paper table/figure.

Quick start::

    from repro import DosaSearcher, DosaSettings, get_network

    result = DosaSearcher(get_network("resnet50"), DosaSettings(seed=0)).search()
    print(result.best.hardware.describe(), result.best_edp)
"""

from repro.arch import GemminiSpec, HardwareConfig
from repro.core.optimizer import DosaSearcher, DosaSettings, LoopOrderingStrategy
from repro.mapping import Mapping, cosa_mapping, random_mapping
from repro.timeloop import evaluate_mapping, evaluate_network_mappings
from repro.workloads import LayerDims, conv2d_layer, get_network, matmul_layer

__version__ = "1.0.0"

__all__ = [
    "GemminiSpec",
    "HardwareConfig",
    "DosaSearcher",
    "DosaSettings",
    "LoopOrderingStrategy",
    "Mapping",
    "cosa_mapping",
    "random_mapping",
    "evaluate_mapping",
    "evaluate_network_mappings",
    "LayerDims",
    "conv2d_layer",
    "matmul_layer",
    "get_network",
    "__version__",
]
