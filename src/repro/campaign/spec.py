"""Declarative campaign specifications: an experiment grid as data.

A :class:`CampaignSpec` names the full cross product the paper's headline
numbers are built from — workloads x strategy variants x seeds x budgets —
as a plain, JSON-(de)serializable value.  Expanding the grid yields one
:class:`JobSpec` per cell with a stable, human-readable ``job_id``; every job
is independent (its searcher is constructed from the registry with its own
seeded settings), which is what lets the scheduler fan jobs out across
processes and resume a campaign by skipping ids already present in the
:class:`~repro.campaign.store.ResultStore`.

A *strategy variant* is a registry strategy plus fixed hyperparameter
overrides (and, for ``fixed_hw_random``, the pinned hardware).  Seeds are
deliberately *not* part of a variant: the grid's seed axis is injected into
each job's settings (``settings_type(seed=seed, **overrides)``), so one
variant row fans out over every seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.arch.config import HardwareConfig
from repro.search.api import SearchBudget, get_searcher
from repro.utils.atomic import write_atomic
from repro.utils.serialization import (
    budget_from_dict,
    budget_to_dict,
    hardware_from_dict,
    hardware_to_dict,
)
from repro.workloads.networks import NETWORK_BUILDERS

#: Bumped when the spec JSON layout changes incompatibly.
SPEC_VERSION = 1


@dataclass(frozen=True)
class StrategyVariant:
    """One strategy column of the campaign grid.

    ``name`` labels the column (unique within a campaign; defaults are fine
    for one-variant-per-strategy grids, while e.g. the Figure 8 baselines run
    the same ``fixed_hw_random`` strategy under four accelerator names).
    ``settings`` holds JSON-safe keyword overrides for the strategy's
    settings dataclass — everything *except* the seed, which comes from the
    grid's seed axis.  ``hardware`` pins the accelerator for mapping-only
    strategies.
    """

    name: str
    strategy: str = ""
    settings: Mapping[str, Any] = field(default_factory=dict)
    hardware: HardwareConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("strategy variant needs a non-empty name")
        if not self.strategy:
            object.__setattr__(self, "strategy", self.name)
        object.__setattr__(self, "settings", dict(self.settings))
        try:
            json.dumps(self.settings)
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"variant {self.name!r}: settings overrides must be JSON-safe "
                f"(got {self.settings!r}): {error}") from None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"name": self.name, "strategy": self.strategy}
        if self.settings:
            payload["settings"] = dict(self.settings)
        if self.hardware is not None:
            payload["hardware"] = hardware_to_dict(self.hardware)
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "StrategyVariant":
        hardware = payload.get("hardware")
        return StrategyVariant(
            name=str(payload["name"]),
            strategy=str(payload.get("strategy", "")),
            settings=dict(payload.get("settings", {})),
            hardware=None if hardware is None else hardware_from_dict(hardware),
        )


@dataclass(frozen=True)
class JobSpec:
    """One fully-determined cell of the campaign grid."""

    workload: str
    variant: StrategyVariant
    seed: Any
    budget: SearchBudget
    budget_index: int

    @property
    def job_id(self) -> str:
        """Stable id used for resume bookkeeping and result records."""
        return (f"{self.workload}/{self.variant.name}"
                f"/seed={self.seed}/budget={self.budget_index}")

    def describe_budget(self) -> str:
        parts = []
        if self.budget.max_samples is not None:
            parts.append(f"samples<={self.budget.max_samples}")
        if self.budget.max_seconds is not None:
            parts.append(f"seconds<={self.budget.max_seconds:g}")
        return ",".join(parts) if parts else "unlimited"


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative grid: workloads x strategy variants x seeds x budgets."""

    name: str
    workloads: tuple[str, ...]
    strategies: tuple[StrategyVariant, ...]
    seeds: tuple[Any, ...] = (0,)
    budgets: tuple[SearchBudget, ...] = (SearchBudget(),)

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "strategies", tuple(self.strategies))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "budgets", tuple(self.budgets))
        if not self.name:
            raise ValueError("campaign needs a non-empty name")
        if not (self.workloads and self.strategies and self.seeds and self.budgets):
            raise ValueError("campaign grid needs at least one workload, "
                             "strategy, seed and budget")
        unknown = [w for w in self.workloads if w not in NETWORK_BUILDERS]
        if unknown:
            raise ValueError(f"unknown workloads {unknown}; "
                             f"options: {sorted(NETWORK_BUILDERS)}")
        names = [variant.name for variant in self.strategies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate strategy variant names in {names}")
        try:
            json.dumps(self.seeds)
        except (TypeError, ValueError):
            raise ValueError(
                f"seeds must be JSON-safe values (ints), got {self.seeds!r}: "
                "campaign grids are serialized and fanned out across "
                "processes, so pass explicit integer seeds rather than RNG "
                "objects") from None
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds}")
        for variant in self.strategies:
            get_searcher(variant.strategy)  # raises KeyError on unknown names
            if variant.strategy == "fixed_hw_random" and variant.hardware is None:
                raise ValueError(f"variant {variant.name!r}: strategy "
                                 "'fixed_hw_random' requires hardware")

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    def jobs(self) -> list[JobSpec]:
        """All grid cells, in deterministic workload-major order."""
        return [
            JobSpec(workload=workload, variant=variant, seed=seed,
                    budget=budget, budget_index=budget_index)
            for workload in self.workloads
            for variant in self.strategies
            for seed in self.seeds
            for budget_index, budget in enumerate(self.budgets)
        ]

    @property
    def grid_size(self) -> int:
        return (len(self.workloads) * len(self.strategies)
                * len(self.seeds) * len(self.budgets))

    def job_named(self, job_id: str) -> JobSpec:
        for job in self.jobs():
            if job.job_id == job_id:
                return job
        raise KeyError(f"no job {job_id!r} in campaign {self.name!r}")

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "workloads": list(self.workloads),
            "strategies": [variant.to_dict() for variant in self.strategies],
            "seeds": list(self.seeds),
            "budgets": [budget_to_dict(budget) for budget in self.budgets],
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "CampaignSpec":
        version = int(payload.get("version", SPEC_VERSION))
        if version > SPEC_VERSION:
            raise ValueError(f"campaign spec version {version} is newer than "
                             f"supported version {SPEC_VERSION}")
        return CampaignSpec(
            name=str(payload["name"]),
            workloads=tuple(payload["workloads"]),
            strategies=tuple(StrategyVariant.from_dict(entry)
                             for entry in payload["strategies"]),
            seeds=tuple(payload.get("seeds", (0,))),
            budgets=tuple(budget_from_dict(entry)
                          for entry in payload.get("budgets", ({},))),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @staticmethod
    def load(path: str | Path) -> "CampaignSpec":
        return CampaignSpec.from_dict(json.loads(Path(path).read_text()))
