"""Aggregation of a campaign's persisted results into deterministic reports.

The report is computed purely from the *deterministic* fields of each
completed job's outcome — best EDP, sample count, grid coordinates — never
from wall-clock times, so a campaign that was interrupted and resumed
produces a byte-identical report to the same campaign run in one go (the
crash-safe-resume acceptance test and the CI smoke both diff the two).

Three sections:

* a per-job table in grid order,
* a per-workload strategy comparison (best EDP over the seed/budget axes,
  with the ratio against the spec's first strategy variant as reference),
* geometric-mean ratios across workloads, the shape of the paper's
  Section 6.3 headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.utils.atomic import write_atomic
from repro.utils.formatting import format_table
from repro.utils.math_utils import geometric_mean


@dataclass
class JobResult:
    """Deterministic summary of one completed grid cell."""

    workload: str
    strategy: str
    seed: Any
    budget: str
    best_edp: float
    samples: int


@dataclass
class CampaignReport:
    """Aggregated view over every *completed* job of one campaign."""

    spec: CampaignSpec
    results: list[JobResult]
    pending: list[str]

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_store(store: ResultStore) -> "CampaignReport":
        """Build the report from a store's latest completed records."""
        spec = store.spec
        outcomes = store.latest_outcomes()
        results: list[JobResult] = []
        pending: list[str] = []
        for job in spec.jobs():
            payload = outcomes.get(job.job_id)
            if payload is None or payload.get("interrupted", False):
                pending.append(job.job_id)
                continue
            trace = payload.get("trace", {})
            samples = max((int(s) for s in trace.get("samples", ())), default=0)
            results.append(JobResult(
                workload=job.workload,
                strategy=job.variant.name,
                seed=job.seed,
                budget=job.describe_budget(),
                best_edp=float(payload["best"]["edp"]),
                samples=samples,
            ))
        return CampaignReport(spec=spec, results=results, pending=pending)

    # ------------------------------------------------------------------ #
    def best_edp(self, workload: str, strategy: str) -> float | None:
        """Best EDP of one workload/strategy pair over seeds and budgets."""
        edps = [r.best_edp for r in self.results
                if r.workload == workload and r.strategy == strategy]
        return min(edps) if edps else None

    def strategy_summary(self) -> list[tuple[str, str, float, float | None]]:
        """Rows of (workload, strategy, best EDP, ratio vs reference).

        The reference is the spec's first strategy variant; the ratio is
        ``strategy_edp / reference_edp`` (>1 means worse than the reference).
        """
        reference = self.spec.strategies[0].name
        rows = []
        for workload in self.spec.workloads:
            reference_edp = self.best_edp(workload, reference)
            for variant in self.spec.strategies:
                edp = self.best_edp(workload, variant.name)
                if edp is None:
                    continue
                ratio = (edp / reference_edp
                         if reference_edp is not None else None)
                rows.append((workload, variant.name, edp, ratio))
        return rows

    def geomean_ratios(self) -> dict[str, float]:
        """Per-strategy geomean of the vs-reference ratio across workloads.

        Only workloads where both the strategy and the reference completed
        participate; strategies with no such workload are omitted.
        """
        reference = self.spec.strategies[0].name
        ratios: dict[str, list[float]] = {}
        for workload in self.spec.workloads:
            reference_edp = self.best_edp(workload, reference)
            if reference_edp is None:
                continue
            for variant in self.spec.strategies:
                edp = self.best_edp(workload, variant.name)
                if edp is not None:
                    ratios.setdefault(variant.name, []).append(edp / reference_edp)
        return {name: geometric_mean(values)
                for name, values in ratios.items() if values}

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """The full deterministic text report (identical across resumes)."""
        lines = [f"== campaign {self.spec.name} ==",
                 f"completed {len(self.results)}/{self.spec.grid_size} jobs"]
        if self.pending:
            lines.append(f"pending: {len(self.pending)} "
                         "(report covers completed jobs only)")
        lines.append("")
        lines.append(format_table(
            ["workload", "strategy", "seed", "budget", "best EDP", "samples"],
            [[r.workload, r.strategy, r.seed, r.budget,
              f"{r.best_edp:.6e}", r.samples] for r in self.results],
        ))
        summary = self.strategy_summary()
        if summary:
            reference = self.spec.strategies[0].name
            lines.append("")
            lines.append(f"-- best EDP per workload (ratio vs {reference}) --")
            lines.append(format_table(
                ["workload", "strategy", "best EDP", f"vs {reference}"],
                [[workload, strategy, f"{edp:.6e}",
                  "-" if ratio is None else f"{ratio:.3f}"]
                 for workload, strategy, edp, ratio in summary],
            ))
        geomeans = self.geomean_ratios()
        if geomeans:
            reference = self.spec.strategies[0].name
            lines.append("")
            lines.append(f"-- geomean EDP ratio vs {reference} across workloads --")
            lines.append(format_table(
                ["strategy", f"geomean vs {reference}"],
                [[name, f"{value:.3f}"] for name, value in sorted(geomeans.items())],
            ))
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_atomic(path, self.to_text())
        return path


def report_from_directory(directory: str | Path) -> CampaignReport:
    """Load a campaign directory's store and build its report."""
    return CampaignReport.from_store(ResultStore(directory))
