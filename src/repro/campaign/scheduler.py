"""The campaign scheduler: shard independent jobs across workers, resumably.

Every grid cell of a :class:`~repro.campaign.spec.CampaignSpec` is an
independent seeded search, so scheduling is embarrassingly parallel.  The
scheduler:

* skips jobs whose ids are already completed in the
  :class:`~repro.campaign.store.ResultStore` (crash-safe resume: seeded
  determinism means an interrupt + resume reproduces the uninterrupted
  campaign exactly),
* optionally takes a deterministic ``shard_index``/``shard_count`` slice of
  the grid (for spreading one campaign over several machines or CI jobs) and
  an at-most-``max_jobs`` cap per invocation,
* runs jobs inline (default — live :class:`SearchOutcome` objects, shared
  in-memory evaluation cache) or fans them out over a ``fork`` process pool
  (``n_workers``), in which case each worker preloads the store's cache
  spill and the parent remains the store's single writer,
* persists each finished job atomically, including interrupted best-so-far
  outcomes (flagged, so resume re-runs them), and spills each job's new
  reference-model cache entries back to the store.

Searchers inside campaign jobs always run with ``n_workers=None`` — the
campaign shards at job granularity, so nesting another evaluation pool in
each job would only oversubscribe the machine.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import ResultStore, segment_name_for
from repro.eval.cache import EvaluationCache
from repro.search.api import SearchCallback, SearchOutcome, get_searcher
from repro.utils.log import get_logger
from repro.utils.serialization import outcome_from_dict, outcome_to_dict
from repro.workloads.networks import get_network

log = get_logger("campaign.scheduler")

#: Called after each persisted job: (job, outcome).  May raise
#: KeyboardInterrupt to stop the campaign gracefully (the CLI uses it for
#: progress lines; tests use it to simulate mid-campaign interrupts).
JobCallback = Callable[[JobSpec, SearchOutcome], None]


def execute_job(job: JobSpec, cache: EvaluationCache | None = None,
                callbacks=None) -> SearchOutcome:
    """Run one grid cell: construct the seeded searcher and search.

    The job's seed is injected into the variant's settings overrides via the
    strategy's ``settings_type``, so identical jobs are bit-reproducible no
    matter which process (or machine) runs them.
    """
    cls = get_searcher(job.variant.strategy)
    settings_type = getattr(cls, "settings_type", None)
    if settings_type is None:
        raise TypeError(f"strategy {job.variant.strategy!r} exposes no "
                        "settings_type; campaign jobs need seeded settings")
    settings = settings_type(seed=job.seed, **dict(job.variant.settings))
    kwargs: dict[str, Any] = {}
    if job.variant.hardware is not None:
        kwargs["hardware"] = job.variant.hardware
    searcher = cls(get_network(job.workload), settings=settings,
                   cache=cache, **kwargs)
    return searcher.search(budget=job.budget, callbacks=callbacks)


#: Per-worker-process spill state, keyed by *cache directory*: the shared
#: in-memory cache and the spill segment names already folded into it.  Pool
#: workers are long-lived (one process runs many jobs), so each segment is
#: parsed once per worker instead of once per job — and stores pointed at one
#: shared ``cache_dir`` (the search service's tenants) share one in-worker
#: cache.
_WORKER_SPILL: dict[str, tuple[EvaluationCache, set[str]]] = {}

#: ``(progress_queue, stop_event)`` installed into pool workers by
#: :func:`install_worker_channel` (via the executor's ``initializer``).
#: ``None`` in plain campaign runs: progress streaming and cooperative stops
#: are service features, workers without a channel behave exactly as before.
_WORKER_CHANNEL: tuple | None = None

#: Fault-injection hook armed in pool workers by :func:`install_worker_channel`
#: when the service passes a fault plan.  ``None`` (the default) keeps the
#: worker fault sites zero-cost; the campaign layer never imports the service
#: package at module scope, so plain campaign runs stay service-free.
_WORKER_FAULT: Callable[[str, str], None] | None = None


def install_worker_channel(queue, stop_event, fault_plan=None,
                           fault_ledger=None) -> None:
    """Executor initializer: give this worker a progress/stop channel.

    ``queue`` is a ``multiprocessing`` queue the worker pushes
    ``(event, tag, payload)`` tuples into; ``stop_event`` is a shared event
    that, once set, makes every in-flight search raise ``KeyboardInterrupt``
    at its next step — which the searchers' ``absorb_interrupt`` turns into a
    graceful best-so-far outcome (the SIGTERM drain path of the service
    daemon, without ever signalling worker processes).

    ``fault_plan`` (a serialized ``repro.service.faults.FaultPlan`` dict) plus
    ``fault_ledger`` (its shared on-disk fire ledger) arm deterministic fault
    injection inside this worker — the import happens here, post-fork, so the
    campaign layer has no module-level dependency on the service package.
    """
    global _WORKER_CHANNEL, _WORKER_FAULT
    _WORKER_CHANNEL = (queue, stop_event)
    if fault_plan is not None and fault_ledger is not None:
        from repro.service import faults

        faults.arm(faults.FaultPlan.from_dict(fault_plan), fault_ledger)
        _WORKER_FAULT = faults.fire


@dataclass(frozen=True)
class PoolProgress:
    """How a pool job should stream progress (picklable, service-provided).

    ``tag`` identifies the submitting service job in the event stream;
    ``step_period`` rate-limits ``on_step`` events (every N samples; the
    first sample and every ``on_best`` always stream).  ``heartbeat_seconds``
    paces liveness heartbeats for the daemon's hung-worker watchdog, and
    ``cancel_path`` names a sentinel file whose appearance makes the search
    raise ``KeyboardInterrupt`` at its next step — per-job cooperative
    cancellation through the same best-so-far drain path the stop event uses
    (a file, not a new multiprocessing primitive, so it can be created long
    after the pool forked).
    """

    tag: str
    step_period: int = 25
    heartbeat_seconds: float = 2.0
    cancel_path: str | None = None


#: How often (seconds) a worker re-checks the cancellation sentinel file.
_CANCEL_POLL_SECONDS = 0.1


class _ChannelProgressCallback(SearchCallback):
    """Streams search progress over the worker channel; honors the stop event."""

    def __init__(self, progress: PoolProgress, queue, stop_event,
                 cell: str = "") -> None:
        self.progress = progress
        self.queue = queue
        self.stop_event = stop_event
        #: Campaign cell id — the deterministic key for worker fault sites.
        self.cell = cell
        self._cancel_path = (Path(progress.cancel_path)
                             if progress.cancel_path else None)
        now = time.monotonic()
        self._next_beat = now + progress.heartbeat_seconds
        self._next_cancel_check = now

    def _put(self, event: str, payload: dict) -> None:
        try:
            self.queue.put((event, self.progress.tag, payload))
        except (OSError, ValueError):  # pragma: no cover - parent went away
            pass

    def on_step(self, samples: int) -> None:
        if self.stop_event is not None and self.stop_event.is_set():
            raise KeyboardInterrupt("service drain requested")
        now = time.monotonic()
        if self._cancel_path is not None and now >= self._next_cancel_check:
            self._next_cancel_check = now + _CANCEL_POLL_SECONDS
            if self._cancel_path.exists():
                raise KeyboardInterrupt("job cancellation requested")
        if _WORKER_FAULT is not None:
            _WORKER_FAULT("worker.step", f"{self.cell}@{samples}")
        if now >= self._next_beat:
            self._next_beat = now + max(0.1, self.progress.heartbeat_seconds)
            self._put("hb", {"pid": os.getpid(), "samples": samples})
        if samples == 1 or samples % max(1, self.progress.step_period) == 0:
            self._put("step", {"samples": samples})

    def on_best(self, candidate, samples: int) -> None:
        self._put("best", {"samples": samples, "edp": candidate.edp,
                           "hardware": candidate.hardware.describe()})


def _worker_spill_state(store: ResultStore) -> tuple[EvaluationCache, set[str]]:
    state = _WORKER_SPILL.get(str(store.cache_dir))
    if state is None:
        state = (EvaluationCache(), set())
        _WORKER_SPILL[str(store.cache_dir)] = state
    cache, seen = state
    seen.update(store.load_cache_segments(cache, skip=seen))
    return cache, seen


def _pool_run_job(spec_payload: dict, job_id: str, store_dir: str,
                  persist_cache: bool, cache_dir: str | None = None,
                  progress: PoolProgress | None = None) -> dict[str, Any]:
    """Worker entry point: run one job against the store's cache spill.

    Workers never touch ``results.jsonl`` (the parent is the single writer —
    ``writer=False`` also skips the crash-tail repair, which would race the
    parent's appends); they only read the spill and write their own atomic
    cache segment.  With a worker channel installed and a ``progress`` spec,
    the search additionally streams step/best events and obeys the
    cooperative stop event (see :func:`install_worker_channel`).
    """
    spec = CampaignSpec.from_dict(spec_payload)
    job = spec.job_named(job_id)
    store = ResultStore(store_dir, writer=False, cache_dir=cache_dir)
    if persist_cache:
        cache, seen = _worker_spill_state(store)
    else:
        cache, seen = EvaluationCache(), set()
    callbacks = None
    channel = _WORKER_CHANNEL if progress is not None else None
    if channel is not None:
        queue, stop_event = channel
        queue.put(("job", progress.tag,
                   {"campaign_job": job_id, "pid": os.getpid()}))
        callbacks = _ChannelProgressCallback(progress, queue, stop_event,
                                             cell=job_id)
    if _WORKER_FAULT is not None:
        _WORKER_FAULT("worker.cell", job_id)
    preloaded = len(cache)
    hits, misses = cache.stats.hits, cache.stats.misses
    try:
        outcome = execute_job(job, cache=cache, callbacks=callbacks)
    finally:
        if persist_cache:
            segment = segment_name_for(job_id)
            store.append_cache_segment(segment, cache.items(start=preloaded))
            seen.add(segment)  # our own entries are already in memory
        if channel is not None:
            queue.put(("stats", progress.tag,
                       {"campaign_job": job_id, "pid": os.getpid(),
                        "hits": cache.stats.hits - hits,
                        "misses": cache.stats.misses - misses}))
    return {"job_id": job_id, "outcome": outcome_to_dict(outcome)}


@dataclass
class CampaignRun:
    """What one scheduler invocation did (and what remains)."""

    campaign: str
    ran: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    interrupted: list[str] = field(default_factory=list)
    pending_after: list[str] = field(default_factory=list)
    #: True when this invocation stopped early on a KeyboardInterrupt (its
    #: own or one re-raised out of a best-less job).
    stopped: bool = False
    #: ``(job_id, error)`` pairs for pool jobs that raised instead of
    #: returning an outcome (e.g. a deterministic "no feasible design").
    #: Failed jobs stay pending; other jobs' results are persisted anyway.
    failed: list = field(default_factory=list)
    #: Outcomes of the jobs this invocation ran.  Inline runs hold the live
    #: objects (including unserialized ``extras``); pool runs hold outcomes
    #: round-tripped through JSON.
    outcomes: dict[str, SearchOutcome] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether the whole campaign grid is now complete."""
        return not self.pending_after and not self.stopped

    @property
    def was_interrupted(self) -> bool:
        return self.stopped or bool(self.interrupted)

    def complete_outcomes(self) -> dict[str, SearchOutcome]:
        """Every grid job's outcome, or a clean error for partial runs.

        Re-raises ``KeyboardInterrupt`` when the run stopped on one (so
        callers like the figure harnesses propagate the interrupt instead of
        tripping over missing jobs) and ``RuntimeError`` when jobs remain for
        another reason (``max_jobs`` / a shard slice).
        """
        if self.was_interrupted:
            raise KeyboardInterrupt(
                f"campaign {self.campaign!r} was interrupted with "
                f"{len(self.pending_after)} jobs pending")
        if self.failed:
            job_id, error = self.failed[0]
            raise RuntimeError(
                f"campaign {self.campaign!r}: {len(self.failed)} jobs "
                f"failed (first: {job_id}: {error})")
        if self.pending_after:
            raise RuntimeError(
                f"campaign {self.campaign!r} is incomplete: "
                f"{len(self.pending_after)} jobs pending (ran with max_jobs "
                "or a shard slice?)")
        return self.outcomes


@dataclass
class CampaignStatus:
    """Completed / interrupted / pending id partition of one campaign grid."""

    campaign: str
    completed: list[str]
    interrupted: list[str]
    pending: list[str]

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.pending)


class CampaignScheduler:
    """Drives one campaign's grid against one result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        n_workers: int | None = None,
        persist_cache: bool = True,
        cache: EvaluationCache | None = None,
        executor: ProcessPoolExecutor | None = None,
        progress: PoolProgress | None = None,
        fault_hook: Callable[[str, str], None] | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1 or None, got {n_workers}")
        self.spec = spec
        self.store = store
        self.n_workers = n_workers
        self.persist_cache = persist_cache
        #: Optional caller-owned evaluation cache used by *inline* runs (the
        #: fig9 harness shares it with its dependent post-campaign searches).
        #: Worker-pool jobs keep their own per-process caches instead.
        self.cache = cache
        #: Optional externally-owned fork pool.  The search service shares
        #: one pool across many concurrent schedulers (one per service job);
        #: when set, jobs always run through it — even a single-job grid —
        #: and the scheduler never shuts it down.
        self.executor = executor
        #: Optional progress-streaming spec forwarded to pool workers (only
        #: effective when the pool was created with ``install_worker_channel``
        #: as its initializer).
        self.progress = progress
        #: Optional parent-side fault-injection hook, ``(site, key) -> None``
        #: (the service passes ``repro.service.faults.fire``).  Covers the
        #: ``store.append`` site; worker-side sites arm through the executor
        #: initializer instead.
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------ #
    def status(self) -> CampaignStatus:
        completed = self.store.completed_job_ids()
        interrupted = self.store.interrupted_job_ids()
        jobs = self.spec.jobs()
        return CampaignStatus(
            campaign=self.spec.name,
            completed=[j.job_id for j in jobs if j.job_id in completed],
            interrupted=[j.job_id for j in jobs if j.job_id in interrupted],
            pending=[j.job_id for j in jobs if j.job_id not in completed],
        )

    def _select_jobs(self, max_jobs: int | None, shard_index: int | None,
                     shard_count: int | None) -> tuple[list[JobSpec], list[str]]:
        if (shard_index is None) != (shard_count is None):
            raise ValueError("pass shard_index and shard_count together")
        if shard_count is not None:
            if shard_count < 1 or not 0 <= shard_index < shard_count:
                raise ValueError(f"invalid shard {shard_index}/{shard_count}")
        if max_jobs is not None and max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1 or None, got {max_jobs}")
        jobs = self.spec.jobs()
        if shard_count is not None:
            # Sharding slices the *full grid* (not the pending set), so each
            # shard owns a stable subset across resumes.
            jobs = [job for index, job in enumerate(jobs)
                    if index % shard_count == shard_index]
        completed = self.store.completed_job_ids()
        skipped = [job.job_id for job in jobs if job.job_id in completed]
        pending = [job for job in jobs if job.job_id not in completed]
        if max_jobs is not None:
            pending = pending[:max_jobs]
        return pending, skipped

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_jobs: int | None = None,
        shard_index: int | None = None,
        shard_count: int | None = None,
        on_job_done: JobCallback | None = None,
    ) -> CampaignRun:
        """Run (up to ``max_jobs``) pending jobs of this shard and persist them."""
        selected, skipped = self._select_jobs(max_jobs, shard_index, shard_count)
        run = CampaignRun(campaign=self.spec.name, skipped=skipped)
        log.debug("campaign %s: running %d jobs (%d already complete)",
                  self.spec.name, len(selected), len(skipped))
        if selected:
            if self.executor is not None or (
                    self.n_workers is not None and self.n_workers > 1):
                self._run_pool(selected, run, on_job_done)
            else:
                self._run_inline(selected, run, on_job_done)
        completed = self.store.completed_job_ids()
        run.pending_after = [job.job_id for job in self.spec.jobs()
                             if job.job_id not in completed]
        if skipped:
            # Backfill previously-completed jobs from the store so resumed
            # runs expose the full grid through run.outcomes /
            # complete_outcomes() (reloaded outcomes carry no extras).
            payloads = self.store.latest_outcomes()
            for job_id in skipped:
                payload = payloads.get(job_id)
                if job_id not in run.outcomes and payload is not None \
                        and not payload.get("interrupted", False):
                    run.outcomes[job_id] = outcome_from_dict(payload)
        return run

    # ------------------------------------------------------------------ #
    def _persist(self, run: CampaignRun, job: JobSpec,
                 outcome: SearchOutcome,
                 payload: dict[str, Any] | None = None) -> None:
        # Pool runs hand back the worker's serialized payload; persist those
        # bytes as-is rather than re-serializing the JSON-round-tripped
        # outcome object, so byte-identity with inline runs never depends on
        # the round trip being lossless.
        if self.fault_hook is not None:
            self.fault_hook("store.append", job.job_id)
        self.store.append(job.job_id,
                          outcome_to_dict(outcome) if payload is None
                          else payload)
        run.outcomes[job.job_id] = outcome
        if outcome.interrupted:
            run.interrupted.append(job.job_id)
            run.stopped = True
            log.info("campaign %s: %s interrupted (best-so-far EDP %.4e "
                     "persisted; re-runs on resume)", self.spec.name,
                     job.job_id, outcome.best_edp)
        else:
            run.ran.append(job.job_id)
            log.info("campaign %s: %s done (best EDP %.4e after %d samples)",
                     self.spec.name, job.job_id, outcome.best_edp,
                     outcome.total_samples)

    def _run_inline(self, jobs: list[JobSpec], run: CampaignRun,
                    on_job_done: JobCallback | None) -> None:
        cache = self.cache if self.cache is not None else EvaluationCache()
        if self.persist_cache:
            self.store.load_cache(cache)
        for job in jobs:
            preloaded = len(cache)
            try:
                outcome = execute_job(job, cache=cache)
            except KeyboardInterrupt:
                # Interrupted before the job had any feasible design: there
                # is nothing worth persisting, the job simply re-runs later.
                run.stopped = True
                return
            finally:
                if self.persist_cache:
                    self.store.append_cache_segment(
                        segment_name_for(job.job_id),
                        cache.items(start=preloaded))
            self._persist(run, job, outcome)
            if on_job_done is not None:
                try:
                    on_job_done(job, outcome)
                except KeyboardInterrupt:
                    run.stopped = True
                    return
            if outcome.interrupted:
                return

    def _run_pool(self, jobs: list[JobSpec], run: CampaignRun,
                  on_job_done: JobCallback | None) -> None:
        spec_payload = self.spec.to_dict()
        store_dir = str(self.store.directory)
        cache_dir = str(self.store.cache_dir)
        executor = self.executor
        owns_executor = executor is None
        if owns_executor:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            executor = ProcessPoolExecutor(max_workers=self.n_workers,
                                           mp_context=context)
        try:
            futures = {
                executor.submit(_pool_run_job, spec_payload, job.job_id,
                                store_dir, self.persist_cache, cache_dir,
                                self.progress): job
                for job in jobs
            }
            outstanding = set(futures)
            unprocessed: set = set()  # done futures not yet persisted
            try:
                while outstanding or unprocessed:
                    if not unprocessed:
                        done, outstanding = wait(outstanding,
                                                 return_when=FIRST_COMPLETED)
                        unprocessed |= done
                    future = unprocessed.pop()
                    job = futures[future]
                    try:
                        payload = future.result()
                    except KeyboardInterrupt:
                        # The worker was interrupted before its job had any
                        # feasible design; nothing to persist, stop cleanly.
                        run.stopped = True
                        continue
                    except BrokenProcessPool:
                        # A worker died hard (SIGKILL, OOM) — this is
                        # executor-level infrastructure failure, not a job
                        # failure: the pool is permanently broken and every
                        # outstanding future is lost.  Propagate so the owner
                        # (the service daemon) can respawn the pool and retry;
                        # results persisted before the crash stay persisted,
                        # so the retry resumes bit-identically.
                        raise
                    except Exception as error:  # noqa: BLE001 - job failure
                        # A deterministic job failure must not discard the
                        # other workers' results: record it, keep draining.
                        run.failed.append((job.job_id, repr(error)))
                        log.warning("campaign %s: %s failed: %r",
                                    self.spec.name, job.job_id, error)
                        continue
                    outcome = outcome_from_dict(payload["outcome"])
                    self._persist(run, job, outcome, payload["outcome"])
                    if on_job_done is not None:
                        on_job_done(job, outcome)
            except KeyboardInterrupt:
                # A terminal Ctrl-C delivers SIGINT to the whole process
                # group, so workers absorb it and return interrupted
                # best-so-far outcomes; if only the parent was signalled,
                # running workers finish their jobs normally.  Either way the
                # executor shutdown waits for the running futures — persist
                # everything they hand back (including futures that finished
                # but were not yet processed) instead of discarding it.  A
                # second interrupt abandons the drain.
                run.stopped = True
                remaining = unprocessed | {future for future in outstanding
                                           if not future.cancel()}
                try:
                    while remaining:
                        done, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                        for future in done:
                            job = futures[future]
                            if job.job_id in run.outcomes:
                                continue  # persisted before the interrupt
                            try:
                                payload = future.result()
                            except BaseException:  # noqa: BLE001 - drain
                                continue
                            self._persist(run, job,
                                          outcome_from_dict(payload["outcome"]),
                                          payload["outcome"])
                except KeyboardInterrupt:
                    pass
        finally:
            if owns_executor:
                executor.shutdown(wait=True)


def run_campaign(
    spec: CampaignSpec,
    directory: str | Path | None = None,
    n_workers: int | None = None,
    persist_cache: bool = True,
    max_jobs: int | None = None,
    shard_index: int | None = None,
    shard_count: int | None = None,
    on_job_done: JobCallback | None = None,
    cache: EvaluationCache | None = None,
) -> CampaignRun:
    """One-call facade: open (or create) the store and run the campaign.

    ``directory=None`` runs the campaign through an ephemeral store in a
    temporary directory — the full campaign machinery (store, spill, resume
    bookkeeping) with nothing left on disk afterwards.  The experiment
    harnesses use that mode, so figure results flow through exactly the code
    path a persistent campaign exercises.  ``cache`` lets an inline caller
    share one evaluation cache with work it runs after the campaign (results
    are bit-identical with or without it).
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as temp:
            return run_campaign(spec, directory=temp, n_workers=n_workers,
                                persist_cache=persist_cache, max_jobs=max_jobs,
                                shard_index=shard_index, shard_count=shard_count,
                                on_job_done=on_job_done, cache=cache)
    store = ResultStore(directory, spec=spec)
    scheduler = CampaignScheduler(spec, store, n_workers=n_workers,
                                  persist_cache=persist_cache, cache=cache)
    return scheduler.run(max_jobs=max_jobs, shard_index=shard_index,
                         shard_count=shard_count, on_job_done=on_job_done)
