"""The campaign scheduler: shard independent jobs across workers, resumably.

Every grid cell of a :class:`~repro.campaign.spec.CampaignSpec` is an
independent seeded search, so scheduling is embarrassingly parallel.  The
scheduler:

* skips jobs whose ids are already completed in the
  :class:`~repro.campaign.store.ResultStore` (crash-safe resume: seeded
  determinism means an interrupt + resume reproduces the uninterrupted
  campaign exactly),
* optionally takes a deterministic ``shard_index``/``shard_count`` slice of
  the grid (for spreading one campaign over several machines or CI jobs) and
  an at-most-``max_jobs`` cap per invocation,
* runs jobs inline (default — live :class:`SearchOutcome` objects, shared
  in-memory evaluation cache) or fans them out over a ``fork`` process pool
  (``n_workers``), in which case each worker preloads the store's cache
  spill and the parent remains the store's single writer,
* persists each finished job atomically, including interrupted best-so-far
  outcomes (flagged, so resume re-runs them), and spills each job's new
  reference-model cache entries back to the store.

Searchers inside campaign jobs always run with ``n_workers=None`` — the
campaign shards at job granularity, so nesting another evaluation pool in
each job would only oversubscribe the machine.
"""

from __future__ import annotations

import multiprocessing
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import ResultStore, segment_name_for
from repro.eval.cache import EvaluationCache
from repro.search.api import SearchOutcome, get_searcher
from repro.utils.serialization import outcome_from_dict, outcome_to_dict
from repro.workloads.networks import get_network

#: Called after each persisted job: (job, outcome).  May raise
#: KeyboardInterrupt to stop the campaign gracefully (the CLI uses it for
#: progress lines; tests use it to simulate mid-campaign interrupts).
JobCallback = Callable[[JobSpec, SearchOutcome], None]


def execute_job(job: JobSpec, cache: EvaluationCache | None = None,
                callbacks=None) -> SearchOutcome:
    """Run one grid cell: construct the seeded searcher and search.

    The job's seed is injected into the variant's settings overrides via the
    strategy's ``settings_type``, so identical jobs are bit-reproducible no
    matter which process (or machine) runs them.
    """
    cls = get_searcher(job.variant.strategy)
    settings_type = getattr(cls, "settings_type", None)
    if settings_type is None:
        raise TypeError(f"strategy {job.variant.strategy!r} exposes no "
                        "settings_type; campaign jobs need seeded settings")
    settings = settings_type(seed=job.seed, **dict(job.variant.settings))
    kwargs: dict[str, Any] = {}
    if job.variant.hardware is not None:
        kwargs["hardware"] = job.variant.hardware
    searcher = cls(get_network(job.workload), settings=settings,
                   cache=cache, **kwargs)
    return searcher.search(budget=job.budget, callbacks=callbacks)


#: Per-worker-process spill state, keyed by store directory: the shared
#: in-memory cache and the spill segment names already folded into it.  Pool
#: workers are long-lived (one process runs many jobs), so each segment is
#: parsed once per worker instead of once per job.
_WORKER_SPILL: dict[str, tuple[EvaluationCache, set[str]]] = {}


def _worker_spill_state(store: ResultStore) -> tuple[EvaluationCache, set[str]]:
    state = _WORKER_SPILL.get(str(store.directory))
    if state is None:
        state = (EvaluationCache(), set())
        _WORKER_SPILL[str(store.directory)] = state
    cache, seen = state
    seen.update(store.load_cache_segments(cache, skip=seen))
    return cache, seen


def _pool_run_job(spec_payload: dict, job_id: str, store_dir: str,
                  persist_cache: bool) -> dict[str, Any]:
    """Worker entry point: run one job against the store's cache spill.

    Workers never touch ``results.jsonl`` (the parent is the single writer —
    ``writer=False`` also skips the crash-tail repair, which would race the
    parent's appends); they only read the spill and write their own atomic
    cache segment.
    """
    spec = CampaignSpec.from_dict(spec_payload)
    job = spec.job_named(job_id)
    store = ResultStore(store_dir, writer=False)
    if persist_cache:
        cache, seen = _worker_spill_state(store)
    else:
        cache, seen = EvaluationCache(), set()
    preloaded = len(cache)
    try:
        outcome = execute_job(job, cache=cache)
    finally:
        if persist_cache:
            segment = segment_name_for(job_id)
            store.append_cache_segment(segment, cache.items(start=preloaded))
            seen.add(segment)  # our own entries are already in memory
    return {"job_id": job_id, "outcome": outcome_to_dict(outcome)}


@dataclass
class CampaignRun:
    """What one scheduler invocation did (and what remains)."""

    campaign: str
    ran: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    interrupted: list[str] = field(default_factory=list)
    pending_after: list[str] = field(default_factory=list)
    #: True when this invocation stopped early on a KeyboardInterrupt (its
    #: own or one re-raised out of a best-less job).
    stopped: bool = False
    #: ``(job_id, error)`` pairs for pool jobs that raised instead of
    #: returning an outcome (e.g. a deterministic "no feasible design").
    #: Failed jobs stay pending; other jobs' results are persisted anyway.
    failed: list = field(default_factory=list)
    #: Outcomes of the jobs this invocation ran.  Inline runs hold the live
    #: objects (including unserialized ``extras``); pool runs hold outcomes
    #: round-tripped through JSON.
    outcomes: dict[str, SearchOutcome] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether the whole campaign grid is now complete."""
        return not self.pending_after and not self.stopped

    @property
    def was_interrupted(self) -> bool:
        return self.stopped or bool(self.interrupted)

    def complete_outcomes(self) -> dict[str, SearchOutcome]:
        """Every grid job's outcome, or a clean error for partial runs.

        Re-raises ``KeyboardInterrupt`` when the run stopped on one (so
        callers like the figure harnesses propagate the interrupt instead of
        tripping over missing jobs) and ``RuntimeError`` when jobs remain for
        another reason (``max_jobs`` / a shard slice).
        """
        if self.was_interrupted:
            raise KeyboardInterrupt(
                f"campaign {self.campaign!r} was interrupted with "
                f"{len(self.pending_after)} jobs pending")
        if self.failed:
            job_id, error = self.failed[0]
            raise RuntimeError(
                f"campaign {self.campaign!r}: {len(self.failed)} jobs "
                f"failed (first: {job_id}: {error})")
        if self.pending_after:
            raise RuntimeError(
                f"campaign {self.campaign!r} is incomplete: "
                f"{len(self.pending_after)} jobs pending (ran with max_jobs "
                "or a shard slice?)")
        return self.outcomes


@dataclass
class CampaignStatus:
    """Completed / interrupted / pending id partition of one campaign grid."""

    campaign: str
    completed: list[str]
    interrupted: list[str]
    pending: list[str]

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.pending)


class CampaignScheduler:
    """Drives one campaign's grid against one result store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        n_workers: int | None = None,
        persist_cache: bool = True,
        cache: EvaluationCache | None = None,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1 or None, got {n_workers}")
        self.spec = spec
        self.store = store
        self.n_workers = n_workers
        self.persist_cache = persist_cache
        #: Optional caller-owned evaluation cache used by *inline* runs (the
        #: fig9 harness shares it with its dependent post-campaign searches).
        #: Worker-pool jobs keep their own per-process caches instead.
        self.cache = cache

    # ------------------------------------------------------------------ #
    def status(self) -> CampaignStatus:
        completed = self.store.completed_job_ids()
        interrupted = self.store.interrupted_job_ids()
        jobs = self.spec.jobs()
        return CampaignStatus(
            campaign=self.spec.name,
            completed=[j.job_id for j in jobs if j.job_id in completed],
            interrupted=[j.job_id for j in jobs if j.job_id in interrupted],
            pending=[j.job_id for j in jobs if j.job_id not in completed],
        )

    def _select_jobs(self, max_jobs: int | None, shard_index: int | None,
                     shard_count: int | None) -> tuple[list[JobSpec], list[str]]:
        if (shard_index is None) != (shard_count is None):
            raise ValueError("pass shard_index and shard_count together")
        if shard_count is not None:
            if shard_count < 1 or not 0 <= shard_index < shard_count:
                raise ValueError(f"invalid shard {shard_index}/{shard_count}")
        if max_jobs is not None and max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1 or None, got {max_jobs}")
        jobs = self.spec.jobs()
        if shard_count is not None:
            # Sharding slices the *full grid* (not the pending set), so each
            # shard owns a stable subset across resumes.
            jobs = [job for index, job in enumerate(jobs)
                    if index % shard_count == shard_index]
        completed = self.store.completed_job_ids()
        skipped = [job.job_id for job in jobs if job.job_id in completed]
        pending = [job for job in jobs if job.job_id not in completed]
        if max_jobs is not None:
            pending = pending[:max_jobs]
        return pending, skipped

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_jobs: int | None = None,
        shard_index: int | None = None,
        shard_count: int | None = None,
        on_job_done: JobCallback | None = None,
    ) -> CampaignRun:
        """Run (up to ``max_jobs``) pending jobs of this shard and persist them."""
        selected, skipped = self._select_jobs(max_jobs, shard_index, shard_count)
        run = CampaignRun(campaign=self.spec.name, skipped=skipped)
        if selected:
            if self.n_workers is not None and self.n_workers > 1:
                self._run_pool(selected, run, on_job_done)
            else:
                self._run_inline(selected, run, on_job_done)
        completed = self.store.completed_job_ids()
        run.pending_after = [job.job_id for job in self.spec.jobs()
                             if job.job_id not in completed]
        if skipped:
            # Backfill previously-completed jobs from the store so resumed
            # runs expose the full grid through run.outcomes /
            # complete_outcomes() (reloaded outcomes carry no extras).
            payloads = self.store.latest_outcomes()
            for job_id in skipped:
                payload = payloads.get(job_id)
                if job_id not in run.outcomes and payload is not None \
                        and not payload.get("interrupted", False):
                    run.outcomes[job_id] = outcome_from_dict(payload)
        return run

    # ------------------------------------------------------------------ #
    def _persist(self, run: CampaignRun, job: JobSpec,
                 outcome: SearchOutcome) -> None:
        self.store.append(job.job_id, outcome_to_dict(outcome))
        run.outcomes[job.job_id] = outcome
        if outcome.interrupted:
            run.interrupted.append(job.job_id)
            run.stopped = True
        else:
            run.ran.append(job.job_id)

    def _run_inline(self, jobs: list[JobSpec], run: CampaignRun,
                    on_job_done: JobCallback | None) -> None:
        cache = self.cache if self.cache is not None else EvaluationCache()
        if self.persist_cache:
            self.store.load_cache(cache)
        for job in jobs:
            preloaded = len(cache)
            try:
                outcome = execute_job(job, cache=cache)
            except KeyboardInterrupt:
                # Interrupted before the job had any feasible design: there
                # is nothing worth persisting, the job simply re-runs later.
                run.stopped = True
                return
            finally:
                if self.persist_cache:
                    self.store.append_cache_segment(
                        segment_name_for(job.job_id),
                        cache.items(start=preloaded))
            self._persist(run, job, outcome)
            if on_job_done is not None:
                try:
                    on_job_done(job, outcome)
                except KeyboardInterrupt:
                    run.stopped = True
                    return
            if outcome.interrupted:
                return

    def _run_pool(self, jobs: list[JobSpec], run: CampaignRun,
                  on_job_done: JobCallback | None) -> None:
        spec_payload = self.spec.to_dict()
        store_dir = str(self.store.directory)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=self.n_workers,
                                 mp_context=context) as executor:
            futures = {
                executor.submit(_pool_run_job, spec_payload, job.job_id,
                                store_dir, self.persist_cache): job
                for job in jobs
            }
            outstanding = set(futures)
            unprocessed: set = set()  # done futures not yet persisted
            try:
                while outstanding or unprocessed:
                    if not unprocessed:
                        done, outstanding = wait(outstanding,
                                                 return_when=FIRST_COMPLETED)
                        unprocessed |= done
                    future = unprocessed.pop()
                    job = futures[future]
                    try:
                        payload = future.result()
                    except KeyboardInterrupt:
                        # The worker was interrupted before its job had any
                        # feasible design; nothing to persist, stop cleanly.
                        run.stopped = True
                        continue
                    except Exception as error:  # noqa: BLE001 - job failure
                        # A deterministic job failure must not discard the
                        # other workers' results: record it, keep draining.
                        run.failed.append((job.job_id, repr(error)))
                        continue
                    outcome = outcome_from_dict(payload["outcome"])
                    self._persist(run, job, outcome)
                    if on_job_done is not None:
                        on_job_done(job, outcome)
            except KeyboardInterrupt:
                # A terminal Ctrl-C delivers SIGINT to the whole process
                # group, so workers absorb it and return interrupted
                # best-so-far outcomes; if only the parent was signalled,
                # running workers finish their jobs normally.  Either way the
                # executor shutdown waits for the running futures — persist
                # everything they hand back (including futures that finished
                # but were not yet processed) instead of discarding it.  A
                # second interrupt abandons the drain.
                run.stopped = True
                remaining = unprocessed | {future for future in outstanding
                                           if not future.cancel()}
                try:
                    while remaining:
                        done, remaining = wait(remaining,
                                               return_when=FIRST_COMPLETED)
                        for future in done:
                            job = futures[future]
                            if job.job_id in run.outcomes:
                                continue  # persisted before the interrupt
                            try:
                                payload = future.result()
                            except BaseException:  # noqa: BLE001 - drain
                                continue
                            self._persist(run, job,
                                          outcome_from_dict(payload["outcome"]))
                except KeyboardInterrupt:
                    pass


def run_campaign(
    spec: CampaignSpec,
    directory: str | Path | None = None,
    n_workers: int | None = None,
    persist_cache: bool = True,
    max_jobs: int | None = None,
    shard_index: int | None = None,
    shard_count: int | None = None,
    on_job_done: JobCallback | None = None,
    cache: EvaluationCache | None = None,
) -> CampaignRun:
    """One-call facade: open (or create) the store and run the campaign.

    ``directory=None`` runs the campaign through an ephemeral store in a
    temporary directory — the full campaign machinery (store, spill, resume
    bookkeeping) with nothing left on disk afterwards.  The experiment
    harnesses use that mode, so figure results flow through exactly the code
    path a persistent campaign exercises.  ``cache`` lets an inline caller
    share one evaluation cache with work it runs after the campaign (results
    are bit-identical with or without it).
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="repro-campaign-") as temp:
            return run_campaign(spec, directory=temp, n_workers=n_workers,
                                persist_cache=persist_cache, max_jobs=max_jobs,
                                shard_index=shard_index, shard_count=shard_count,
                                on_job_done=on_job_done, cache=cache)
    store = ResultStore(directory, spec=spec)
    scheduler = CampaignScheduler(spec, store, n_workers=n_workers,
                                  persist_cache=persist_cache, cache=cache)
    return scheduler.run(max_jobs=max_jobs, shard_index=shard_index,
                         shard_count=shard_count, on_job_done=on_job_done)
