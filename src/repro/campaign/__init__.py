"""Sharded, resumable experiment campaigns with a persistent result store.

The campaign layer turns the paper's result grids — workloads x strategies x
seeds x budgets — into data instead of per-harness glue:

* :class:`~repro.campaign.spec.CampaignSpec` declares the grid (JSON in/out),
* :class:`~repro.campaign.store.ResultStore` persists per-job outcomes
  append-only and doubles as a cross-process evaluation-cache spill,
* :class:`~repro.campaign.scheduler.CampaignScheduler` fans independent jobs
  out across worker processes and resumes crash-safely,
* :class:`~repro.campaign.report.CampaignReport` aggregates completed jobs
  into deterministic tables (byte-identical across interrupt + resume).

One-call entry point::

    from repro.campaign import CampaignSpec, StrategyVariant, run_campaign

    spec = CampaignSpec(
        name="demo",
        workloads=("bert", "resnet50"),
        strategies=(StrategyVariant("dosa", settings={"gd_steps": 100,
                                                      "rounding_period": 50}),
                    StrategyVariant("random")),
        seeds=(0, 1),
    )
    result = run_campaign(spec, directory="campaigns/demo")

or from the shell: ``python -m repro.cli campaign run spec.json --dir DIR``.
The Figure 7/8/9 harnesses drive their grids through this layer.
"""

from repro.campaign.report import CampaignReport, report_from_directory
from repro.campaign.scheduler import (
    CampaignRun,
    CampaignScheduler,
    CampaignStatus,
    execute_job,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, JobSpec, StrategyVariant
from repro.campaign.store import ResultStore, StoreCorruptionError

__all__ = [
    "CampaignReport",
    "CampaignRun",
    "CampaignScheduler",
    "CampaignSpec",
    "CampaignStatus",
    "JobSpec",
    "ResultStore",
    "StoreCorruptionError",
    "StrategyVariant",
    "execute_job",
    "report_from_directory",
    "run_campaign",
]
