"""The on-disk campaign result store: append-only JSONL + manifest + cache spill.

Layout of a campaign directory::

    <dir>/
      manifest.json    # {"version": 1, "spec": CampaignSpec.to_dict()}
      results.jsonl    # one record per finished job: {"job_id", "outcome"}
      cache/           # reference-model cache spill, one segment per job
        <segment>.jsonl

Write semantics are chosen for crash safety without locks:

* ``manifest.json`` and cache segments are written to a temporary file and
  atomically renamed into place, so they are either absent or complete.
* ``results.jsonl`` has a **single writer** (the scheduler parent process,
  even when jobs run in a worker pool) that appends one line per record and
  flushes+fsyncs it.  A crash can therefore leave at most a truncated *final*
  line; :meth:`ResultStore.records` detects that tail, drops it, and the
  interrupted job simply re-runs on resume.  An undecodable line anywhere
  *else* means real corruption and raises instead of silently skipping data.
* interrupted jobs are persisted too (their best-so-far outcome has
  ``interrupted: true``); they are excluded from :meth:`completed_job_ids`,
  so resume re-runs them and the final aggregate report only ever contains
  completed, deterministic results.

The cache spill is what makes the store double as a persistent cross-process
:class:`~repro.eval.cache.EvaluationCache`: each job appends the exact-
fingerprint entries it added, and later jobs — in this process or any other —
preload them.  Entries are bit-identical reference-model results, so spilling
never changes outcomes, only wall-clock time.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.arch.config import HardwareConfig
from repro.campaign.spec import CampaignSpec
from repro.eval.cache import CacheKey, EvaluationCache
from repro.timeloop.model import PerformanceResult

STORE_VERSION = 1

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
CACHE_DIR_NAME = "cache"


class StoreCorruptionError(ValueError):
    """A non-tail record of ``results.jsonl`` could not be decoded."""


# --------------------------------------------------------------------------- #
# Cache entry (de)serialization
# --------------------------------------------------------------------------- #
def cache_entry_to_dict(key: CacheKey, result: PerformanceResult) -> dict[str, Any]:
    """JSON payload of one exact-fingerprint cache entry.

    The mapping fingerprint's factor bytes are hex-encoded verbatim, and all
    floats ride on JSON's ``repr`` round-trip, so a reloaded entry is
    bit-identical to the stored one.
    """
    fingerprint, config = key
    dims, orderings, temporal, spatial = fingerprint
    return {
        "k": {
            "dims": list(dims),
            "ord": list(orderings),
            "t": temporal.hex(),
            "s": spatial.hex(),
            "hw": [config.pe_dim, config.accumulator_kb, config.scratchpad_kb],
        },
        "r": {
            "latency_cycles": result.latency_cycles,
            "energy": result.energy,
            "compute_latency": result.compute_latency,
            "memory_latency": {str(level): value
                               for level, value in result.memory_latency.items()},
            "accesses": {str(level): value
                         for level, value in result.accesses.items()},
            "macs": result.macs,
        },
    }


def cache_entry_from_dict(payload: Mapping[str, Any]) -> tuple[CacheKey, PerformanceResult]:
    key_payload = payload["k"]
    result_payload = payload["r"]
    pe_dim, accumulator_kb, scratchpad_kb = key_payload["hw"]
    key: CacheKey = (
        (
            tuple(int(value) for value in key_payload["dims"]),
            tuple(str(value) for value in key_payload["ord"]),
            bytes.fromhex(key_payload["t"]),
            bytes.fromhex(key_payload["s"]),
        ),
        HardwareConfig(pe_dim=int(pe_dim), accumulator_kb=int(accumulator_kb),
                       scratchpad_kb=int(scratchpad_kb)),
    )
    result = PerformanceResult(
        latency_cycles=float(result_payload["latency_cycles"]),
        energy=float(result_payload["energy"]),
        compute_latency=float(result_payload["compute_latency"]),
        memory_latency={int(level): float(value)
                        for level, value in result_payload["memory_latency"].items()},
        accesses={int(level): float(value)
                  for level, value in result_payload["accesses"].items()},
        macs=float(result_payload["macs"]),
    )
    return key, result


def segment_name_for(job_id: str) -> str:
    """Filesystem-safe cache segment name for one job's spill."""
    return f"job-{hashlib.sha256(job_id.encode()).hexdigest()[:16]}.jsonl"


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
class ResultStore:
    """One campaign's persistent results (append-only) and cache spill.

    Opening a directory that already holds a manifest loads its spec; passing
    ``spec`` as well verifies it matches (resuming a campaign with a
    *different* grid would silently mix results, so it is an error).  A fresh
    directory requires ``spec`` and writes the manifest atomically.

    ``writer=False`` opens the store as a non-writing reader of
    ``results.jsonl`` (campaign *worker* processes use this): the
    crash-tail repair is skipped — repairing would race the parent's
    concurrent appends — and :meth:`append` is forbidden.  Cache spill
    segments may still be written; each job owns its own segment file.
    """

    def __init__(self, directory: str | Path,
                 spec: CampaignSpec | None = None,
                 writer: bool = True) -> None:
        self.writer = writer
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            self.spec = CampaignSpec.from_dict(manifest["spec"])
            if spec is not None and spec.to_dict() != self.spec.to_dict():
                raise ValueError(
                    f"campaign store {self.directory} was created for spec "
                    f"{self.spec.name!r} with a different grid; refusing to mix "
                    "results (use a fresh directory for a changed spec)")
        else:
            if spec is None:
                raise ValueError(f"{self.directory} holds no campaign manifest; "
                                 "pass the CampaignSpec to create one")
            self.spec = spec
            payload = {"version": STORE_VERSION, "spec": spec.to_dict()}
            self._write_atomic(manifest_path, json.dumps(payload, indent=2) + "\n")
        #: True when a truncated tail record (crash mid-append) was detected
        #: and dropped, either while opening the store or while reading.
        self.dropped_truncated_tail = False
        if self.writer:
            self._repair_tail()

    # ------------------------------------------------------------------ #
    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_NAME

    @property
    def cache_dir(self) -> Path:
        return self.directory / CACHE_DIR_NAME

    def _write_atomic(self, path: Path, text: str) -> None:
        """Complete-or-absent file write: temp + fsync + rename + dir fsync."""
        temp = path.with_name(path.name + ".tmp")
        with open(temp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        directory_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    # ------------------------------------------------------------------ #
    # Result records
    # ------------------------------------------------------------------ #
    def _repair_tail(self) -> None:
        """Heal a crash-truncated final line before any further appends.

        A crash mid-append leaves ``results.jsonl`` ending in a partial line
        (no trailing newline).  Appending after it without repair would glue
        the next record onto the fragment, corrupting *both*; so on open, a
        complete-but-unterminated final record gets its newline restored and
        a half-written one is truncated away (the job re-runs on resume).
        """
        path = self.results_path
        if not path.exists():
            return
        data = path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        complete, _, tail = data.rpartition(b"\n")
        try:
            record = json.loads(tail)
            intact = (isinstance(record, dict)
                      and "job_id" in record and "outcome" in record)
        except ValueError:
            intact = False
        with open(path, "r+b") as handle:
            if intact:
                # The record made it to disk, only its newline did not.
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(len(complete) + 1 if complete else 0)
                self.dropped_truncated_tail = True
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, job_id: str, outcome_payload: Mapping[str, Any]) -> None:
        """Append one finished job's record (single-writer, flushed+fsynced)."""
        if not self.writer:
            raise RuntimeError("this store was opened writer=False (worker "
                               "mode); only the scheduler parent appends "
                               "result records")
        record = {"job_id": job_id, "outcome": dict(outcome_payload)}
        line = json.dumps(record, separators=(",", ":"))
        with open(self.results_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict[str, Any]]:
        """All decodable records, oldest first (duplicates *not* collapsed).

        A truncated final line — the signature of a crash mid-append — is
        dropped (and flagged on :attr:`dropped_truncated_tail`) so the
        half-written job re-runs on resume; an invalid line before the tail
        raises :class:`StoreCorruptionError`.  (Opening the store already
        repairs such a tail on disk; the tolerance here additionally covers
        reading a file another process is appending to.)
        """
        if not self.results_path.exists():
            return []
        lines = self.results_path.read_text().splitlines()
        records: list[dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "job_id" not in record \
                        or "outcome" not in record:
                    raise ValueError("record missing job_id/outcome")
            except ValueError:
                if number == len(lines):
                    self.dropped_truncated_tail = True
                    continue
                raise StoreCorruptionError(
                    f"{self.results_path}:{number}: undecodable result record "
                    "(not a truncated tail; the store is corrupt)") from None
            records.append(record)
        return records

    def latest_outcomes(self) -> dict[str, dict[str, Any]]:
        """Last persisted outcome payload per job id (later records win)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self.records():
            latest[str(record["job_id"])] = record["outcome"]
        return latest

    def completed_job_ids(self) -> set[str]:
        """Jobs whose latest record is a *completed* (non-interrupted) run."""
        return {job_id for job_id, outcome in self.latest_outcomes().items()
                if not outcome.get("interrupted", False)}

    def interrupted_job_ids(self) -> set[str]:
        """Jobs whose latest persisted record is an interrupted best-so-far."""
        return {job_id for job_id, outcome in self.latest_outcomes().items()
                if outcome.get("interrupted", False)}

    # ------------------------------------------------------------------ #
    # Evaluation-cache spill
    # ------------------------------------------------------------------ #
    def append_cache_segment(
        self, segment: str,
        entries: Iterable[tuple[CacheKey, PerformanceResult]],
    ) -> int:
        """Persist one job's new cache entries as an atomic segment file.

        Returns the number of entries written; an empty iterable writes
        nothing.  Segments are complete-or-absent (temp file + rename), so a
        crash mid-spill never leaves a partial segment behind — at worst the
        entries are re-evaluated later, which is only a wall-clock cost.
        """
        lines = [json.dumps(cache_entry_to_dict(key, result),
                            separators=(",", ":"))
                 for key, result in entries]
        if not lines:
            return 0
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.cache_dir / segment, "\n".join(lines) + "\n")
        return len(lines)

    def load_cache(self, cache: EvaluationCache | None = None) -> EvaluationCache:
        """Preload every spilled entry into ``cache`` (a new one by default).

        Undecodable spill lines are skipped — the spill is purely an
        accelerator, so dropping a damaged entry is always safe.
        """
        cache = cache if cache is not None else EvaluationCache()
        self.load_cache_segments(cache, skip=frozenset())
        return cache

    def load_cache_segments(self, cache: EvaluationCache,
                            skip: "frozenset[str] | set[str]") -> set[str]:
        """Load spill segments whose names are not in ``skip`` into ``cache``.

        Returns the names actually loaded, so long-lived processes (pool
        workers running many jobs) can load each segment once and only pick
        up segments other jobs added since.  Entries are append-only and
        bit-identical, so incremental loading can never go stale.
        """
        if not self.cache_dir.is_dir():
            return set()
        loaded: set[str] = set()
        for segment in sorted(self.cache_dir.glob("*.jsonl")):
            if segment.name in skip:
                continue
            loaded.add(segment.name)
            for line in segment.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    key, result = cache_entry_from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue
                cache.store(key, result)
        return loaded

    def spilled_entry_count(self) -> int:
        """Total entries across all spill segments (for status displays)."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(len(segment.read_text().splitlines())
                   for segment in sorted(self.cache_dir.glob("*.jsonl")))
