"""The on-disk campaign result store: append-only JSONL + manifest + cache spill.

Layout of a campaign directory::

    <dir>/
      manifest.json    # {"version": 1, "spec": CampaignSpec.to_dict()}
      results.jsonl    # one record per finished job: {"job_id", "outcome"}
      cache/           # reference-model cache spill, one segment per job
        <segment>.jsonl

Write semantics are chosen for crash safety without locks:

* ``manifest.json`` and cache segments are written to a temporary file and
  atomically renamed into place, so they are either absent or complete.
* ``results.jsonl`` has a **single writer** (the scheduler parent process,
  even when jobs run in a worker pool) that appends one line per record and
  flushes+fsyncs it.  A crash can therefore leave at most a truncated *final*
  line; :meth:`ResultStore.records` detects that tail, drops it, and the
  interrupted job simply re-runs on resume.  An undecodable line anywhere
  *else* means real corruption and raises instead of silently skipping data.
* interrupted jobs are persisted too (their best-so-far outcome has
  ``interrupted: true``); they are excluded from :meth:`completed_job_ids`,
  so resume re-runs them and the final aggregate report only ever contains
  completed, deterministic results.

The cache spill is what makes the store double as a persistent cross-process
:class:`~repro.eval.cache.EvaluationCache`: each job appends the exact-
fingerprint entries it added, and later jobs — in this process or any other —
preload them.  Entries are bit-identical reference-model results, so spilling
never changes outcomes, only wall-clock time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.arch.config import HardwareConfig
from repro.campaign.spec import CampaignSpec
from repro.eval.cache import CacheKey, EvaluationCache
from repro.timeloop.model import PerformanceResult
from repro.utils.atomic import write_atomic
from repro.utils.log import get_logger

STORE_VERSION = 1

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
CACHE_DIR_NAME = "cache"

#: The single segment a spill compaction folds every other segment into.
COMPACTED_SEGMENT = "segment-compacted.jsonl"

log = get_logger("campaign.store")


class StoreCorruptionError(ValueError):
    """A non-tail record of ``results.jsonl`` could not be decoded."""


# --------------------------------------------------------------------------- #
# Cache entry (de)serialization
# --------------------------------------------------------------------------- #
def cache_entry_to_dict(key: CacheKey, result: PerformanceResult) -> dict[str, Any]:
    """JSON payload of one exact-fingerprint cache entry.

    The mapping fingerprint's factor bytes are hex-encoded verbatim, and all
    floats ride on JSON's ``repr`` round-trip, so a reloaded entry is
    bit-identical to the stored one.
    """
    fingerprint, config = key
    dims, orderings, temporal, spatial = fingerprint
    return {
        "k": {
            "dims": list(dims),
            "ord": list(orderings),
            "t": temporal.hex(),
            "s": spatial.hex(),
            "hw": [config.pe_dim, config.accumulator_kb, config.scratchpad_kb],
        },
        "r": {
            "latency_cycles": result.latency_cycles,
            "energy": result.energy,
            "compute_latency": result.compute_latency,
            "memory_latency": {str(level): value
                               for level, value in result.memory_latency.items()},
            "accesses": {str(level): value
                         for level, value in result.accesses.items()},
            "macs": result.macs,
        },
    }


def cache_entry_from_dict(payload: Mapping[str, Any]) -> tuple[CacheKey, PerformanceResult]:
    key_payload = payload["k"]
    result_payload = payload["r"]
    pe_dim, accumulator_kb, scratchpad_kb = key_payload["hw"]
    key: CacheKey = (
        (
            tuple(int(value) for value in key_payload["dims"]),
            tuple(str(value) for value in key_payload["ord"]),
            bytes.fromhex(key_payload["t"]),
            bytes.fromhex(key_payload["s"]),
        ),
        HardwareConfig(pe_dim=int(pe_dim), accumulator_kb=int(accumulator_kb),
                       scratchpad_kb=int(scratchpad_kb)),
    )
    result = PerformanceResult(
        latency_cycles=float(result_payload["latency_cycles"]),
        energy=float(result_payload["energy"]),
        compute_latency=float(result_payload["compute_latency"]),
        memory_latency={int(level): float(value)
                        for level, value in result_payload["memory_latency"].items()},
        accesses={int(level): float(value)
                  for level, value in result_payload["accesses"].items()},
        macs=float(result_payload["macs"]),
    )
    return key, result


def segment_name_for(job_id: str) -> str:
    """Filesystem-safe cache segment name for one job's spill."""
    return f"job-{hashlib.sha256(job_id.encode()).hexdigest()[:16]}.jsonl"


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #
class ResultStore:
    """One campaign's persistent results (append-only) and cache spill.

    Opening a directory that already holds a manifest loads its spec; passing
    ``spec`` as well verifies it matches (resuming a campaign with a
    *different* grid would silently mix results, so it is an error).  A fresh
    directory requires ``spec`` and writes the manifest atomically.

    ``writer=False`` opens the store as a non-writing reader of
    ``results.jsonl`` (campaign *worker* processes use this): the
    crash-tail repair is skipped — repairing would race the parent's
    concurrent appends — and :meth:`append` is forbidden.  Cache spill
    segments may still be written; each job owns its own segment file.

    ``create=False`` opens an *existing* store only: a missing directory or
    manifest raises a clean :class:`ValueError` instead of creating the
    directory as a side effect (the CLI's read-only ``status``/``report``
    paths use this).

    ``cache_dir`` relocates the evaluation-cache spill.  By default each
    store spills under its own ``<dir>/cache/``; the search service points
    every tenant store at one shared directory so all jobs — across tenants
    and daemon restarts — warm each other's caches.  Entries are exact
    bit-identical reference-model results, so sharing never changes
    outcomes.
    """

    def __init__(self, directory: str | Path,
                 spec: CampaignSpec | None = None,
                 writer: bool = True,
                 cache_dir: str | Path | None = None,
                 create: bool = True) -> None:
        self.writer = writer
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not create and not manifest_path.exists():
            raise ValueError(f"no campaign store at {self.directory} "
                             f"(missing {MANIFEST_NAME})")
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Where this store spills (and preloads) evaluation-cache segments.
        self.cache_dir = (Path(cache_dir) if cache_dir is not None
                          else self.directory / CACHE_DIR_NAME)
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            self.spec = CampaignSpec.from_dict(manifest["spec"])
            if spec is not None and spec.to_dict() != self.spec.to_dict():
                raise ValueError(
                    f"campaign store {self.directory} was created for spec "
                    f"{self.spec.name!r} with a different grid; refusing to mix "
                    "results (use a fresh directory for a changed spec)")
        else:
            if spec is None:
                raise ValueError(f"{self.directory} holds no campaign manifest; "
                                 "pass the CampaignSpec to create one")
            self.spec = spec
            payload = {"version": STORE_VERSION, "spec": spec.to_dict()}
            self._write_atomic(manifest_path, json.dumps(payload, indent=2) + "\n")
        #: True when a truncated tail record (crash mid-append) was detected
        #: and dropped, either while opening the store or while reading.
        self.dropped_truncated_tail = False
        if self.writer:
            self._repair_tail()

    # ------------------------------------------------------------------ #
    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_NAME

    def _write_atomic(self, path: Path, text: str) -> None:
        """Complete-or-absent file write: temp + fsync + rename + dir fsync."""
        write_atomic(path, text)

    # ------------------------------------------------------------------ #
    # Result records
    # ------------------------------------------------------------------ #
    def _repair_tail(self) -> None:
        """Heal a crash-truncated final line before any further appends.

        A crash mid-append leaves ``results.jsonl`` ending in a partial line
        (no trailing newline).  Appending after it without repair would glue
        the next record onto the fragment, corrupting *both*; so on open, a
        complete-but-unterminated final record gets its newline restored and
        a half-written one is truncated away (the job re-runs on resume).
        """
        path = self.results_path
        if not path.exists():
            return
        data = path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        complete, _, tail = data.rpartition(b"\n")
        try:
            record = json.loads(tail)
            intact = (isinstance(record, dict)
                      and "job_id" in record and "outcome" in record)
        except ValueError:
            intact = False
        with open(path, "r+b") as handle:
            if intact:
                # The record made it to disk, only its newline did not.
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(len(complete) + 1 if complete else 0)
                self.dropped_truncated_tail = True
                log.warning("%s: dropped a crash-truncated tail record "
                            "(the interrupted job re-runs on resume)",
                            path)
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, job_id: str, outcome_payload: Mapping[str, Any]) -> None:
        """Append one finished job's record (single-writer, flushed+fsynced)."""
        if not self.writer:
            raise RuntimeError("this store was opened writer=False (worker "
                               "mode); only the scheduler parent appends "
                               "result records")
        record = {"job_id": job_id, "outcome": dict(outcome_payload)}
        line = json.dumps(record, separators=(",", ":"))
        with open(self.results_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict[str, Any]]:
        """All decodable records, oldest first (duplicates *not* collapsed).

        A truncated final line — the signature of a crash mid-append — is
        dropped (and flagged on :attr:`dropped_truncated_tail`) so the
        half-written job re-runs on resume; an invalid line before the tail
        raises :class:`StoreCorruptionError`.  (Opening the store already
        repairs such a tail on disk; the tolerance here additionally covers
        reading a file another process is appending to.)
        """
        if not self.results_path.exists():
            return []
        lines = self.results_path.read_text().splitlines()
        records: list[dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "job_id" not in record \
                        or "outcome" not in record:
                    raise ValueError("record missing job_id/outcome")
            except ValueError:
                if number == len(lines):
                    self.dropped_truncated_tail = True
                    continue
                raise StoreCorruptionError(
                    f"{self.results_path}:{number}: undecodable result record "
                    "(not a truncated tail; the store is corrupt)") from None
            records.append(record)
        return records

    def latest_outcomes(self) -> dict[str, dict[str, Any]]:
        """Last persisted outcome payload per job id (later records win)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self.records():
            latest[str(record["job_id"])] = record["outcome"]
        return latest

    def completed_job_ids(self) -> set[str]:
        """Jobs whose latest record is a *completed* (non-interrupted) run."""
        return {job_id for job_id, outcome in self.latest_outcomes().items()
                if not outcome.get("interrupted", False)}

    def interrupted_job_ids(self) -> set[str]:
        """Jobs whose latest persisted record is an interrupted best-so-far."""
        return {job_id for job_id, outcome in self.latest_outcomes().items()
                if outcome.get("interrupted", False)}

    # ------------------------------------------------------------------ #
    # Evaluation-cache spill
    # ------------------------------------------------------------------ #
    def append_cache_segment(
        self, segment: str,
        entries: Iterable[tuple[CacheKey, PerformanceResult]],
    ) -> int:
        """Persist one job's new cache entries as an atomic segment file.

        Returns the number of entries written; an empty iterable writes
        nothing.  Segments are complete-or-absent (temp file + rename), so a
        crash mid-spill never leaves a partial segment behind — at worst the
        entries are re-evaluated later, which is only a wall-clock cost.
        """
        lines = [json.dumps(cache_entry_to_dict(key, result),
                            separators=(",", ":"))
                 for key, result in entries]
        if not lines:
            return 0
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.cache_dir / segment, "\n".join(lines) + "\n")
        return len(lines)

    def load_cache(self, cache: EvaluationCache | None = None) -> EvaluationCache:
        """Preload every spilled entry into ``cache`` (a new one by default).

        Undecodable spill lines are skipped — the spill is purely an
        accelerator, so dropping a damaged entry is always safe.
        """
        cache = cache if cache is not None else EvaluationCache()
        self.load_cache_segments(cache, skip=frozenset())
        return cache

    def load_cache_segments(self, cache: EvaluationCache,
                            skip: "frozenset[str] | set[str]") -> set[str]:
        """Load spill segments whose names are not in ``skip`` into ``cache``.

        Returns the names actually loaded, so long-lived processes (pool
        workers running many jobs) can load each segment once and only pick
        up segments other jobs added since.  Entries are append-only and
        bit-identical, so incremental loading can never go stale.
        """
        if not self.cache_dir.is_dir():
            return set()
        loaded: set[str] = set()
        for segment in sorted(self.cache_dir.glob("*.jsonl")):
            if segment.name in skip:
                continue
            loaded.add(segment.name)
            for line in segment.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    key, result = cache_entry_from_dict(json.loads(line))
                except (ValueError, KeyError, TypeError):
                    continue
                cache.store(key, result)
        return loaded

    def spilled_entry_count(self) -> int:
        """Total entries across all spill segments (for status displays)."""
        if not self.cache_dir.is_dir():
            return 0
        return sum(len(segment.read_text().splitlines())
                   for segment in sorted(self.cache_dir.glob("*.jsonl")))

    def compact_spill(self) -> "CompactionStats":
        """Fold this store's spill segments into one (see :func:`compact_cache_dir`)."""
        return compact_cache_dir(self.cache_dir)

    # ------------------------------------------------------------------ #
    # Shard merging
    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, destination: str | Path,
              sources: Sequence[str | Path]) -> tuple["ResultStore", "MergeStats"]:
        """Merge independent shard stores of *one* campaign into ``destination``.

        Every source must carry the same spec (shards of one grid); a spec
        mismatch raises.  Duplicate job ids — jobs run by more than one shard
        (or already present in the destination) — are resolved
        deterministically and independently of the order sources are listed:

        1. completed outcomes beat interrupted best-so-far outcomes,
        2. ties break on the lexicographically-smallest canonical JSON
           serialization of the outcome payload.

        Seeded campaign jobs are bit-reproducible, so duplicate *completed*
        payloads differ at most in ``wall_time_seconds``; whichever wins, the
        deterministic report fields are identical.  Records are appended in
        spec grid order, so merging shards of a deterministic campaign yields
        the same report byte-for-byte as one uninterrupted run.

        Cache spill segments are unioned line-by-line (sources in sorted
        path order); entries are bit-identical accelerator data, so the union
        only affects future wall-clock time, never results.
        """
        if not sources:
            raise ValueError("merge needs at least one source store")
        opened = [cls(path, writer=False, create=False) for path in sources]
        spec = opened[0].spec
        for source in opened[1:]:
            if source.spec.to_dict() != spec.to_dict():
                raise ValueError(
                    f"cannot merge {source.directory}: its campaign spec "
                    f"({source.spec.name!r}) differs from {opened[0].directory} "
                    f"({spec.name!r}); shards of one campaign share one spec")
        store = cls(destination, spec=spec)

        def canonical(payload: Mapping[str, Any]) -> str:
            return json.dumps(payload, sort_keys=True, separators=(",", ":"))

        def rank(payload: Mapping[str, Any]) -> tuple:
            # Completed (False) sorts before interrupted (True).
            return (bool(payload.get("interrupted", False)), canonical(payload))

        candidates: dict[str, list[dict[str, Any]]] = {}
        for source in opened:
            for job_id, payload in source.latest_outcomes().items():
                candidates.setdefault(job_id, []).append(payload)
        duplicate_ids = sum(1 for payloads in candidates.values()
                            if len(payloads) > 1)
        existing = store.latest_outcomes()
        jobs_written = 0
        for job in spec.jobs():
            payloads = list(candidates.get(job.job_id, ()))
            current = existing.get(job.job_id)
            if current is not None:
                payloads.append(current)
            if not payloads:
                continue
            winner = min(payloads, key=rank)
            if current is not None and canonical(current) == canonical(winner):
                continue  # destination already holds the winning record
            store.append(job.job_id, winner)
            jobs_written += 1

        segments_merged = lines_merged = 0
        for source in sorted(opened, key=lambda s: str(s.directory.resolve())):
            if not source.cache_dir.is_dir() \
                    or source.cache_dir == store.cache_dir:
                continue
            for segment in sorted(source.cache_dir.glob("*.jsonl")):
                incoming = [line for line in segment.read_text().splitlines()
                            if line.strip()]
                if not incoming:
                    continue
                target = store.cache_dir / segment.name
                if target.exists():
                    kept = [line for line in target.read_text().splitlines()
                            if line.strip()]
                    merged = list(dict.fromkeys([*kept, *incoming]))
                    if merged == kept:
                        continue
                    added = len(merged) - len(kept)
                else:
                    store.cache_dir.mkdir(parents=True, exist_ok=True)
                    merged = list(dict.fromkeys(incoming))
                    added = len(merged)
                write_atomic(target, "\n".join(merged) + "\n")
                segments_merged += 1
                lines_merged += added
        stats = MergeStats(sources=len(opened), jobs_written=jobs_written,
                           duplicate_ids=duplicate_ids,
                           segments_merged=segments_merged,
                           cache_lines_merged=lines_merged)
        log.info("merged %d shard stores into %s: %s",
                 len(opened), store.directory, stats)
        return store, stats


@dataclass
class MergeStats:
    """What one :meth:`ResultStore.merge` call did."""

    sources: int
    jobs_written: int
    duplicate_ids: int
    segments_merged: int
    cache_lines_merged: int

    def __str__(self) -> str:
        return (f"{self.jobs_written} records written "
                f"({self.duplicate_ids} duplicate job ids resolved), "
                f"{self.segments_merged} cache segments merged "
                f"(+{self.cache_lines_merged} entries)")


@dataclass
class CompactionStats:
    """What one spill compaction did."""

    segments_before: int
    lines_before: int
    entries_after: int

    @property
    def removed_lines(self) -> int:
        return self.lines_before - self.entries_after

    def __str__(self) -> str:
        return (f"{self.segments_before} segments / {self.lines_before} lines "
                f"-> 1 segment / {self.entries_after} entries")


def compact_cache_dir(cache_dir: str | Path) -> CompactionStats:
    """Fold every spill segment in ``cache_dir`` into one deduplicated segment.

    Long-lived spills (multi-day servers, many-job campaigns) accumulate one
    segment per job, many holding entries later segments repeat.  Compaction
    rewrites the union as a single :data:`COMPACTED_SEGMENT` keeping the
    *first* line stored for each exact cache key — entry lines for the same
    key are bit-identical by construction, so a reload of the compacted spill
    is bit-identical to a reload of the original segments.

    Crash-safe and concurrent-writer-safe: the compacted segment is written
    atomically *before* the snapshot of old segments is deleted (a crash in
    between merely leaves redundant entries), and segments appearing after
    the snapshot (e.g. a live worker's spill) are left untouched.
    Undecodable lines are dropped — the spill is purely an accelerator.
    """
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return CompactionStats(0, 0, 0)
    snapshot = sorted(cache_dir.glob("*.jsonl"))
    lines_before = 0
    winners: dict[CacheKey, str] = {}
    for segment in snapshot:
        for line in segment.read_text().splitlines():
            if not line.strip():
                continue
            lines_before += 1
            try:
                key, _ = cache_entry_from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError):
                continue
            winners.setdefault(key, line)
    stats = CompactionStats(segments_before=len(snapshot),
                            lines_before=lines_before,
                            entries_after=len(winners))
    if not snapshot:
        return stats
    if winners:
        write_atomic(cache_dir / COMPACTED_SEGMENT,
                     "\n".join(winners.values()) + "\n")
    for segment in snapshot:
        if segment.name == COMPACTED_SEGMENT and winners:
            continue
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent compaction
            pass
    log.info("compacted spill %s: %s", cache_dir, stats)
    return stats
