"""Synthetic Gemmini-RTL latency simulator (FireSim substitute).

Real RTL latency deviates from an analytical model through effects that the
closed-form model does not capture.  The simulator below layers the main such
effects, documented in the Gemmini and FireSim literature, on top of the
reference analytical latency:

* **systolic-array fill/drain** — each weight tile loaded into the array costs
  extra cycles proportional to the array side,
* **DRAM burst inefficiency** — DRAM traffic is served in bursts, and small or
  poorly-shaped tiles waste part of each burst, inflating memory latency,
* **utilization-dependent stalls** — mappings that keep the array poorly
  utilized suffer additional control/dependency stalls,
* **fixed per-layer overhead** — configuration and instruction dispatch,
* **configuration-dependent jitter** — a small deterministic pseudo-random
  perturbation keyed on the mapping and hardware, standing in for the many
  micro-architectural details a learned model can absorb but a closed-form
  model cannot.

All effects are deterministic functions of the mapping and hardware so that a
DNN trained on (features -> RTL/analytical gap) can genuinely learn them,
which is what the paper's Sections 4.7 and 6.5 rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.arch.components import LEVEL_DRAM, LEVEL_REGISTERS, LEVEL_SCRATCHPAD
from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.timeloop.loopnest import analyze_traffic, reload_factor, tile_words
from repro.timeloop.model import PerformanceResult, evaluate_mapping


@dataclass(frozen=True)
class RtlSimSettings:
    """Strengths of the individual RTL effects (dimensionless multipliers)."""

    fill_drain_cycles_per_tile: float = 2.0   # x array side, per weight-tile load
    dram_burst_words: int = 64
    dram_inefficiency_weight: float = 0.35
    stall_weight: float = 0.6
    fixed_overhead_cycles: float = 2000.0
    jitter_amplitude: float = 0.08            # +/- 8% deterministic jitter

    def __post_init__(self) -> None:
        if self.dram_burst_words < 1:
            raise ValueError("dram_burst_words must be at least 1")
        if not (0.0 <= self.jitter_amplitude < 1.0):
            raise ValueError("jitter_amplitude must lie in [0, 1)")


class RtlSimulator:
    """Cycle-level latency of a mapping on "real" Gemmini hardware."""

    def __init__(self, settings: RtlSimSettings | None = None) -> None:
        self.settings = settings or RtlSimSettings()

    # ------------------------------------------------------------------ #
    def latency(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        """Simulated RTL latency in cycles for ``mapping`` on ``hardware``."""
        spec = GemminiSpec(hardware)
        analytical = evaluate_mapping(mapping, spec, check_validity=False)
        return self._distort(mapping, hardware, analytical)

    def latency_ratio(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        """RTL latency divided by analytical latency (the quantity the DNN learns)."""
        spec = GemminiSpec(hardware)
        analytical = evaluate_mapping(mapping, spec, check_validity=False)
        return self._distort(mapping, hardware, analytical) / analytical.latency_cycles

    # ------------------------------------------------------------------ #
    def _distort(self, mapping: Mapping, hardware: HardwareConfig,
                 analytical: PerformanceResult) -> float:
        settings = self.settings
        traffic = analyze_traffic(mapping)

        # Systolic-array fill/drain: every reload of the stationary weights
        # into the array pays a pipeline fill proportional to the array side.
        weight_tile_loads = (traffic.writes[LEVEL_REGISTERS]["W"]
                             / max(tile_words(mapping, LEVEL_REGISTERS, "W"), 1))
        fill_drain = (settings.fill_drain_cycles_per_tile * hardware.pe_dim
                      * weight_tile_loads)

        # DRAM burst inefficiency: short per-tensor transfers waste bursts.
        dram_words = traffic.accesses(LEVEL_DRAM)
        scratchpad_tile = max(tile_words(mapping, LEVEL_SCRATCHPAD, "I"), 1.0)
        burst_utilization = min(1.0, scratchpad_tile / settings.dram_burst_words)
        dram_penalty = (settings.dram_inefficiency_weight
                        * (1.0 - burst_utilization)
                        * dram_words / 8.0)

        # Utilization-dependent stalls: poorly utilized arrays stall more.
        utilization = min(1.0, mapping.spatial_product() / hardware.num_pes)
        stall_penalty = settings.stall_weight * (1.0 - utilization) * analytical.compute_latency

        jitter = 1.0 + settings.jitter_amplitude * self._jitter(mapping, hardware)
        latency = (analytical.latency_cycles + fill_drain + dram_penalty
                   + stall_penalty + settings.fixed_overhead_cycles)
        return latency * jitter

    @staticmethod
    def _jitter(mapping: Mapping, hardware: HardwareConfig) -> float:
        """Deterministic pseudo-random value in [-1, 1] keyed on the design."""
        payload = (
            tuple(np.round(mapping.temporal, 6).ravel())
            + tuple(np.round(mapping.spatial, 6).ravel())
            + (hardware.pe_dim, hardware.accumulator_kb, hardware.scratchpad_kb)
            + mapping.layer.dims_key()
        )
        digest = hashlib.sha256(repr(payload).encode()).digest()
        value = int.from_bytes(digest[:8], "little") / 2**64
        return 2.0 * value - 1.0
