"""Dataset generation for the learned latency predictors (Section 6.5.1).

The paper collects 1,567 random mappings roughly evenly distributed over the
training workloads of Table 6, measures their Gemmini-RTL latency with
FireSim, and trains the predictors on that data.  Here the measurements come
from the synthetic RTL simulator; everything else (random mappings of the
training networks, per-sample analytical latency, train/test split) follows
the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.mapping.random_mapper import random_mapping
from repro.surrogate.features import encode_features
from repro.surrogate.rtl_sim import RtlSimulator
from repro.timeloop.model import evaluate_mapping
from repro.utils.rng import SeedLike, make_rng
from repro.workloads.networks import Network


@dataclass
class LatencySample:
    """One training example: a mapping with analytical and RTL latencies."""

    mapping: Mapping
    hardware: HardwareConfig
    features: np.ndarray
    analytical_latency: float
    rtl_latency: float

    @property
    def log_ratio(self) -> float:
        """Log of RTL / analytical latency — the difference the DNN predicts."""
        return float(np.log(self.rtl_latency / self.analytical_latency))


def generate_dataset(
    networks: list[Network],
    hardware: HardwareConfig,
    samples_per_layer: int = 4,
    simulator: RtlSimulator | None = None,
    seed: SeedLike = None,
) -> list[LatencySample]:
    """Random-mapping latency dataset over the unique layers of ``networks``."""
    if samples_per_layer < 1:
        raise ValueError("samples_per_layer must be positive")
    simulator = simulator or RtlSimulator()
    rng = make_rng(seed)
    spec = GemminiSpec(hardware)
    samples: list[LatencySample] = []
    for network in networks:
        for layer in network.layers:
            for _ in range(samples_per_layer):
                mapping = random_mapping(layer, seed=rng, max_spatial=hardware.pe_dim)
                analytical = evaluate_mapping(mapping, spec).latency_cycles
                rtl = simulator.latency(mapping, hardware)
                samples.append(LatencySample(
                    mapping=mapping,
                    hardware=hardware,
                    features=encode_features(mapping, hardware),
                    analytical_latency=analytical,
                    rtl_latency=rtl,
                ))
    return samples


def train_test_split(
    samples: list[LatencySample],
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> tuple[list[LatencySample], list[LatencySample]]:
    """Shuffle and split samples into train and held-out test sets."""
    if not (0.0 < test_fraction < 1.0):
        raise ValueError("test_fraction must lie strictly between 0 and 1")
    if len(samples) < 2:
        raise ValueError("need at least two samples to split")
    rng = make_rng(seed)
    order = rng.permutation(len(samples))
    cut = max(1, int(round(len(samples) * test_fraction)))
    test_idx = set(order[:cut].tolist())
    train = [s for i, s in enumerate(samples) if i not in test_idx]
    test = [s for i, s in enumerate(samples) if i in test_idx]
    return train, test
