"""Real-hardware latency modelling (paper Sections 4.7 and 6.5).

The paper measures Gemmini-RTL latency with FireSim and trains a small DNN to
predict the gap between the analytical model and the measurement.  FireSim and
the Gemmini RTL are not available offline, so this package substitutes a
synthetic "RTL" latency simulator that applies structured, deterministic
distortions to the analytical latency (systolic-array fill/drain, DRAM burst
inefficiency, utilization-dependent stalls, fixed per-layer overheads).  The
rest of the pipeline is faithful to the paper: dataset generation from random
mappings of the training workloads, a Mind-Mappings-style MLP difference
predictor, a DNN-only predictor, the combined analytical+DNN latency model,
and Spearman-rank-correlation evaluation.
"""

from repro.surrogate.rtl_sim import RtlSimulator, RtlSimSettings
from repro.surrogate.features import encode_features, FEATURE_SIZE
from repro.surrogate.dataset import LatencySample, generate_dataset, train_test_split
from repro.surrogate.dnn_model import LatencyPredictorDNN, TrainingSettings
from repro.surrogate.combined import (
    AnalyticalLatencyModel,
    CombinedLatencyModel,
    DnnOnlyLatencyModel,
    LatencyModel,
)

__all__ = [
    "RtlSimulator",
    "RtlSimSettings",
    "encode_features",
    "FEATURE_SIZE",
    "LatencySample",
    "generate_dataset",
    "train_test_split",
    "LatencyPredictorDNN",
    "TrainingSettings",
    "AnalyticalLatencyModel",
    "CombinedLatencyModel",
    "DnnOnlyLatencyModel",
    "LatencyModel",
]
