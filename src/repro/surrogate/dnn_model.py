"""The Mind-Mappings-style DNN latency predictor (Section 4.7).

The paper's model has "7 hidden fully-connected layers and a total of 5737
parameters".  With our 40-dimensional feature encoding, seven hidden layers of
width 16 plus the output head land in the same parameter-count ballpark.  Two
variants are trained for the Section 6.5 study:

* **difference mode** (the paper's main proposal) — the DNN predicts the log
  ratio between RTL latency and the analytical model's latency, and the final
  prediction multiplies the analytical latency by the exponentiated output,
* **direct mode** (the "DNN-only" baseline) — the DNN predicts log RTL latency
  outright.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autodiff import Adam, Tensor, nn
from repro.surrogate.dataset import LatencySample
from repro.utils.rng import SeedLike, make_rng


DEFAULT_HIDDEN_SIZES: tuple[int, ...] = (16, 16, 16, 16, 16, 16, 16)


@dataclass
class TrainingSettings:
    """Hyperparameters for training the latency predictor."""

    epochs: int = 600
    learning_rate: float = 3e-3
    batch_size: int = 64
    weight_decay: float = 1e-5
    seed: SeedLike = 0


class LatencyPredictorDNN:
    """MLP predicting RTL latency, either directly or as a correction factor."""

    def __init__(
        self,
        mode: str = "difference",
        hidden_sizes: tuple[int, ...] = DEFAULT_HIDDEN_SIZES,
        seed: SeedLike = 0,
    ) -> None:
        if mode not in ("difference", "direct"):
            raise ValueError(f"mode must be 'difference' or 'direct', got {mode!r}")
        from repro.surrogate.features import FEATURE_SIZE

        self.mode = mode
        self.scaler = nn.StandardScaler()
        self.network = nn.MLP(FEATURE_SIZE, list(hidden_sizes), 1, activation="relu", seed=seed)
        self._trained = False

    # ------------------------------------------------------------------ #
    @property
    def num_parameters(self) -> int:
        return self.network.num_parameters()

    def _targets(self, samples: list[LatencySample]) -> np.ndarray:
        if self.mode == "difference":
            return np.array([s.log_ratio for s in samples])
        return np.array([np.log(s.rtl_latency) for s in samples])

    # ------------------------------------------------------------------ #
    def train(self, samples: list[LatencySample],
              settings: TrainingSettings | None = None) -> list[float]:
        """Train on ``samples``; returns the per-epoch loss curve."""
        if len(samples) < 2:
            raise ValueError("need at least two samples to train")
        settings = settings or TrainingSettings()
        if not isinstance(settings.seed, (int, np.integer, np.random.Generator)):
            raise TypeError(
                "TrainingSettings.seed must be an int or numpy Generator for "
                f"reproducible training, got {type(settings.seed).__name__}")
        rng = make_rng(settings.seed)
        features = np.stack([s.features for s in samples])
        targets = self._targets(samples)
        features = self.scaler.fit_transform(features)

        optimizer = Adam(self.network.parameters(), lr=settings.learning_rate,
                         weight_decay=settings.weight_decay)
        losses: list[float] = []
        count = len(samples)
        for _ in range(settings.epochs):
            order = rng.permutation(count)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, count, settings.batch_size):
                batch = order[start:start + settings.batch_size]
                optimizer.zero_grad()
                predictions = self.network(Tensor(features[batch])).reshape(-1)
                loss = nn.mse_loss(predictions, Tensor(targets[batch]))
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self._trained = True
        return losses

    # ------------------------------------------------------------------ #
    def predict_latency(self, features: np.ndarray,
                        analytical_latency: np.ndarray | float) -> np.ndarray:
        """Predicted RTL latency for encoded features.

        In difference mode the analytical latency is required and multiplied
        by the learned correction; in direct mode it is ignored.
        """
        if not self._trained:
            raise RuntimeError("predict_latency called before train()")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        scaled = self.scaler.transform(features)
        outputs = self.network(Tensor(scaled)).data.reshape(-1)
        if self.mode == "difference":
            analytical = np.broadcast_to(np.asarray(analytical_latency, dtype=float),
                                         outputs.shape)
            return analytical * np.exp(outputs)
        return np.exp(outputs)
