"""The three latency models compared in Section 6.5.

* :class:`AnalyticalLatencyModel` — the differentiable/analytical model alone,
* :class:`DnnOnlyLatencyModel` — an MLP trained to predict RTL latency directly,
* :class:`CombinedLatencyModel` — the analytical model corrected by an MLP
  trained on the analytical-vs-RTL difference (the paper's proposal).

All three expose the same interface (``latency(mapping, hardware)``) so they
can be swapped into the DOSA search and the accuracy studies of Figures 10-12.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.arch.config import HardwareConfig
from repro.arch.gemmini import GemminiSpec
from repro.mapping.mapping import Mapping
from repro.surrogate.dataset import LatencySample
from repro.surrogate.dnn_model import LatencyPredictorDNN, TrainingSettings
from repro.surrogate.features import encode_features
from repro.timeloop.model import evaluate_mapping
from repro.utils.math_utils import spearman_rank_correlation


class LatencyModel(Protocol):
    """Common interface of the latency models used in the RTL study."""

    name: str

    def latency(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        """Predicted latency (cycles) of ``mapping`` on ``hardware``."""
        ...


class AnalyticalLatencyModel:
    """Latency straight from the analytical model (Sections 4.1-4.5)."""

    name = "analytical"

    def latency(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        return evaluate_mapping(mapping, GemminiSpec(hardware),
                                check_validity=False).latency_cycles


class DnnOnlyLatencyModel:
    """Latency from an MLP trained directly on RTL measurements."""

    name = "dnn_only"

    def __init__(self, seed: int = 0) -> None:
        self.predictor = LatencyPredictorDNN(mode="direct", seed=seed)

    def train(self, samples: list[LatencySample],
              settings: TrainingSettings | None = None) -> list[float]:
        return self.predictor.train(samples, settings)

    def latency(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        features = encode_features(mapping, hardware)
        return float(self.predictor.predict_latency(features, analytical_latency=0.0)[0])


class CombinedLatencyModel:
    """Analytical latency corrected by a learned difference model (Section 4.7)."""

    name = "analytical_dnn"

    def __init__(self, seed: int = 0) -> None:
        self.predictor = LatencyPredictorDNN(mode="difference", seed=seed)
        self._analytical = AnalyticalLatencyModel()

    def train(self, samples: list[LatencySample],
              settings: TrainingSettings | None = None) -> list[float]:
        return self.predictor.train(samples, settings)

    def latency(self, mapping: Mapping, hardware: HardwareConfig) -> float:
        analytical = self._analytical.latency(mapping, hardware)
        features = encode_features(mapping, hardware)
        return float(self.predictor.predict_latency(features, analytical)[0])


def evaluate_model_accuracy(model: LatencyModel, samples: list[LatencySample]) -> float:
    """Spearman rank correlation of the model's predictions vs RTL latency.

    This is the accuracy metric of Figures 10 and 11.
    """
    predictions = [model.latency(s.mapping, s.hardware) for s in samples]
    measurements = [s.rtl_latency for s in samples]
    return spearman_rank_correlation(predictions, measurements)


def mean_absolute_percentage_error(model: LatencyModel, samples: list[LatencySample]) -> float:
    """Secondary accuracy metric: MAPE of predicted vs RTL latency."""
    errors = []
    for sample in samples:
        predicted = model.latency(sample.mapping, sample.hardware)
        errors.append(abs(predicted - sample.rtl_latency) / sample.rtl_latency)
    return float(np.mean(errors))
