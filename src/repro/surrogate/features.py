"""Feature encoding for the learned latency predictors.

Following Section 4.7, the model's inputs are "the layer's dimensions, a
mapping (represented as in Section 3.1.2), and a hardware configuration".  All
counts are log2-scaled because layer sizes and tiling factors span many orders
of magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import HardwareConfig
from repro.mapping.mapping import DIM_INDEX, Mapping, NUM_DIMS, NUM_LEVELS, SPATIAL_DIMS
from repro.workloads.layer import DIMENSIONS

# Layer dims (7) + strides (2) + hardware (3) + temporal factors (4x7) + spatial (2).
FEATURE_SIZE = 7 + 2 + 3 + NUM_LEVELS * NUM_DIMS + len(SPATIAL_DIMS)


def encode_features(mapping: Mapping, hardware: HardwareConfig) -> np.ndarray:
    """Encode a (layer, mapping, hardware) triple as a flat feature vector."""
    layer = mapping.layer
    layer_features = [np.log2(layer.dim(d)) for d in DIMENSIONS]
    stride_features = [float(layer.stride_p), float(layer.stride_q)]
    hardware_features = [
        np.log2(hardware.pe_dim),
        np.log2(hardware.accumulator_kb),
        np.log2(hardware.scratchpad_kb),
    ]
    temporal_features = list(np.log2(np.maximum(mapping.temporal, 1.0)).ravel())
    spatial_features = [
        np.log2(max(mapping.spatial_factor(level, dim), 1.0)) for level, dim in SPATIAL_DIMS
    ]
    features = np.array(
        layer_features + stride_features + hardware_features
        + temporal_features + spatial_features,
        dtype=np.float64,
    )
    if features.shape[0] != FEATURE_SIZE:
        raise AssertionError(
            f"feature encoding produced {features.shape[0]} values, expected {FEATURE_SIZE}"
        )
    return features
