"""Command-line entry point for the reproduction experiments and searches.

Experiment harnesses (one per paper figure)::

    python -m repro.cli list
    python -m repro.cli fig4 --scale small
    python -m repro.cli fig7 --scale paper
    python -m repro.cli all  --scale small

``--scale small`` runs each harness with the reduced budgets used by the
benchmark suite (minutes); ``--scale paper`` uses the Section 6.1 budgets
(hours).  Outputs are written to ``output_dir/`` (override with the
``REPRO_OUTPUT_DIR`` environment variable).

Unified search (any registered strategy, one outcome format)::

    python -m repro.cli search resnet50 --strategy dosa --max-samples 5000
    python -m repro.cli search bert --strategy random --max-samples 2000 \\
        --seed 7 --json outcome.json
    python -m repro.cli search unet --strategy bayesian --max-seconds 120

``search`` resolves the strategy through the registry
(:func:`repro.search.api.get_searcher`), enforces the ``--max-samples`` /
``--max-seconds`` budget uniformly, prints best-so-far progress via the
callback hooks, and can persist the full outcome (best design, trace,
settings snapshot) as JSON with ``--json`` for later reloading through
:func:`repro.utils.serialization.load_outcome`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    fig4_correlation,
    fig6_loop_ordering,
    fig7_cosearch,
    fig8_baselines,
    fig9_separation,
    fig10_11_surrogate,
    fig12_rtl,
)

# Reduced-budget keyword arguments per experiment (same spirit as benchmarks/).
_SMALL_SCALE: dict[str, dict] = {
    "fig4": {"num_configs": 10, "mappings_per_config": 20},
    "fig6": {"workloads": ("bert",), "num_start_points": 2, "gd_steps": 120,
             "rounding_period": 60},
    "fig7": {"workloads": ("resnet50", "bert"), "num_start_points": 2, "gd_steps": 150,
             "rounding_period": 75, "random_hardware_designs": 4,
             "random_mappings_per_layer": 60, "bo_training_hardware": 6,
             "bo_mappings_per_layer": 20, "bo_candidates": 30},
    "fig8": {"workloads": ("resnet50",), "mappings_per_layer": 100,
             "num_start_points": 2, "gd_steps": 150, "rounding_period": 75},
    "fig9": {"workloads": ("resnet50", "bert"), "runs_per_workload": 1,
             "gd_steps": 200, "rounding_period": 100, "random_mappings_per_layer": 50},
    "fig10": {"samples_per_layer": 8, "training_epochs": 300,
              "dosa_workloads": ("bert",), "dosa_gd_steps": 100,
              "dosa_rounding_period": 50},
    "fig12": {"workloads": ("resnet50", "bert"), "samples_per_layer": 4,
              "training_epochs": 150, "num_start_points": 1, "gd_steps": 150,
              "rounding_period": 75},
}

_EXPERIMENTS: dict[str, Callable[..., object]] = {
    "fig4": fig4_correlation.main,
    "fig6": fig6_loop_ordering.main,
    "fig7": fig7_cosearch.main,
    "fig8": fig8_baselines.main,
    "fig9": fig9_separation.main,
    "fig10": fig10_11_surrogate.main,
    "fig12": fig12_rtl.main,
}

_DESCRIPTIONS: dict[str, str] = {
    "fig4": "differentiable model correlation against the reference model",
    "fig6": "loop-ordering strategy comparison (baseline / iterate / softmax)",
    "fig7": "DOSA vs random search vs Bayesian optimization",
    "fig8": "DOSA-optimized Gemmini vs expert baseline accelerators",
    "fig9": "attribution of hardware vs mapping improvements",
    "fig10": "latency-model accuracy (Figures 10 and 11)",
    "fig12": "Gemmini-RTL optimization with learned latency models (+ Table 7)",
}


def _run_one(name: str, scale: str) -> None:
    kwargs = _SMALL_SCALE[name] if scale == "small" else {}
    print(f"[repro] running {name} ({_DESCRIPTIONS[name]}) at {scale} scale...")
    output = _EXPERIMENTS[name](**kwargs)
    print(output.to_text())
    print()


def _run_search(args: argparse.Namespace) -> int:
    from repro.arch.config import HardwareConfig
    from repro.search.api import ProgressCallback, SearchBudget, optimize
    from repro.utils.serialization import save_outcome

    try:
        budget = SearchBudget(max_samples=args.max_samples, max_seconds=args.max_seconds)
    except ValueError as error:
        print(f"repro.cli search: error: {error}", file=sys.stderr)
        return 2
    if args.strategy == "fixed_hw_random" and not args.fixed_hardware:
        print("repro.cli search: error: --strategy fixed_hw_random requires "
              "--fixed-hardware PE_DIM ACC_KB SP_KB", file=sys.stderr)
        return 2
    if args.fixed_hardware and args.strategy != "fixed_hw_random":
        print("repro.cli search: error: --fixed-hardware only applies to "
              "--strategy fixed_hw_random", file=sys.stderr)
        return 2
    searcher_kwargs = {}
    if args.fixed_hardware:
        pe_dim, accumulator_kb, scratchpad_kb = args.fixed_hardware
        try:
            searcher_kwargs["hardware"] = HardwareConfig(
                pe_dim=pe_dim, accumulator_kb=accumulator_kb, scratchpad_kb=scratchpad_kb)
        except ValueError as error:
            print(f"repro.cli search: error: --fixed-hardware: {error}", file=sys.stderr)
            return 2

    if args.n_workers is not None and args.n_workers < 1:
        print("repro.cli search: error: --n-workers must be >= 1", file=sys.stderr)
        return 2

    print(f"[repro] searching {args.network} with strategy {args.strategy!r} "
          f"(max_samples={args.max_samples}, max_seconds={args.max_seconds}, "
          f"seed={args.seed}, n_workers={args.n_workers})")
    outcome = optimize(args.network, strategy=args.strategy, budget=budget,
                       seed=args.seed, callbacks=ProgressCallback(prefix="[repro]"),
                       n_workers=args.n_workers, **searcher_kwargs)

    print(f"[repro] {outcome.method} finished: best EDP {outcome.best_edp:.4e} "
          f"after {outcome.total_samples} samples "
          f"in {outcome.wall_time_seconds:.1f}s")
    print(f"[repro]   hardware: {outcome.best_hardware.describe()}")
    if args.json:
        path = save_outcome(args.json, outcome)
        print(f"[repro]   outcome written to {path}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    from repro.search.api import available_strategies
    from repro.workloads.networks import NETWORK_BUILDERS

    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True,
                                       metavar="{search,list,all," +
                                               ",".join(sorted(_EXPERIMENTS)) + "}")

    # Experiment subcommands keep the original calling convention:
    # `python -m repro.cli fig7 --scale small`.
    for name in [*sorted(_EXPERIMENTS), "all", "list"]:
        help_text = _DESCRIPTIONS.get(name, f"run {name}")
        sub = subparsers.add_parser(name, help=help_text)
        if name != "list":
            sub.add_argument("--scale", choices=["small", "paper"], default="small",
                             help="reduced budgets (minutes) or paper budgets (hours)")

    search = subparsers.add_parser(
        "search", help="run one co-search strategy through the unified API")
    search.add_argument("network", choices=sorted(NETWORK_BUILDERS),
                        help="target workload (workload registry name)")
    search.add_argument("--strategy", choices=available_strategies(), default="dosa",
                        help="search strategy (strategy registry name)")
    search.add_argument("--max-samples", type=int, default=None,
                        help="budget: max model evaluations (paper sample accounting)")
    search.add_argument("--max-seconds", type=float, default=None,
                        help="budget: max wall-clock seconds")
    search.add_argument("--seed", type=int, default=0, help="search seed")
    search.add_argument("--n-workers", type=int, default=None,
                        help="process-pool size for reference-model evaluation "
                             "(default: in-process; results are identical)")
    search.add_argument("--json", metavar="PATH", default=None,
                        help="write the full SearchOutcome to PATH as JSON")
    search.add_argument("--fixed-hardware", nargs=3, type=int, default=None,
                        metavar=("PE_DIM", "ACC_KB", "SP_KB"),
                        help="hardware for the fixed_hw_random strategy")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "search":
        return _run_search(args)
    if args.command == "list":
        for name in sorted(_EXPERIMENTS):
            print(f"{name:<6} {_DESCRIPTIONS[name]}")
        return 0
    if args.command == "all":
        for name in sorted(_EXPERIMENTS):
            _run_one(name, args.scale)
        return 0
    _run_one(args.command, args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
