"""Command-line entry point for running the reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4 --scale small
    python -m repro.cli fig7 --scale paper
    python -m repro.cli all  --scale small

``--scale small`` runs each harness with the reduced budgets used by the
benchmark suite (minutes); ``--scale paper`` uses the Section 6.1 budgets
(hours).  Outputs are written to ``output_dir/`` (override with the
``REPRO_OUTPUT_DIR`` environment variable).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    fig4_correlation,
    fig6_loop_ordering,
    fig7_cosearch,
    fig8_baselines,
    fig9_separation,
    fig10_11_surrogate,
    fig12_rtl,
)

# Reduced-budget keyword arguments per experiment (same spirit as benchmarks/).
_SMALL_SCALE: dict[str, dict] = {
    "fig4": {"num_configs": 10, "mappings_per_config": 20},
    "fig6": {"workloads": ("bert",), "num_start_points": 2, "gd_steps": 120,
             "rounding_period": 60},
    "fig7": {"workloads": ("resnet50", "bert"), "num_start_points": 2, "gd_steps": 150,
             "rounding_period": 75, "random_hardware_designs": 4,
             "random_mappings_per_layer": 60, "bo_training_hardware": 6,
             "bo_mappings_per_layer": 20, "bo_candidates": 30},
    "fig8": {"workloads": ("resnet50",), "mappings_per_layer": 100,
             "num_start_points": 2, "gd_steps": 150, "rounding_period": 75},
    "fig9": {"workloads": ("resnet50", "bert"), "runs_per_workload": 1,
             "gd_steps": 200, "rounding_period": 100, "random_mappings_per_layer": 50},
    "fig10": {"samples_per_layer": 8, "training_epochs": 300,
              "dosa_workloads": ("bert",), "dosa_gd_steps": 100,
              "dosa_rounding_period": 50},
    "fig12": {"workloads": ("resnet50", "bert"), "samples_per_layer": 4,
              "training_epochs": 150, "num_start_points": 1, "gd_steps": 150,
              "rounding_period": 75},
}

_EXPERIMENTS: dict[str, Callable[..., object]] = {
    "fig4": fig4_correlation.main,
    "fig6": fig6_loop_ordering.main,
    "fig7": fig7_cosearch.main,
    "fig8": fig8_baselines.main,
    "fig9": fig9_separation.main,
    "fig10": fig10_11_surrogate.main,
    "fig12": fig12_rtl.main,
}

_DESCRIPTIONS: dict[str, str] = {
    "fig4": "differentiable model correlation against the reference model",
    "fig6": "loop-ordering strategy comparison (baseline / iterate / softmax)",
    "fig7": "DOSA vs random search vs Bayesian optimization",
    "fig8": "DOSA-optimized Gemmini vs expert baseline accelerators",
    "fig9": "attribution of hardware vs mapping improvements",
    "fig10": "latency-model accuracy (Figures 10 and 11)",
    "fig12": "Gemmini-RTL optimization with learned latency models (+ Table 7)",
}


def _run_one(name: str, scale: str) -> None:
    kwargs = _SMALL_SCALE[name] if scale == "small" else {}
    print(f"[repro] running {name} ({_DESCRIPTIONS[name]}) at {scale} scale...")
    output = _EXPERIMENTS[name](**kwargs)
    print(output.to_text())
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment", choices=[*sorted(_EXPERIMENTS), "all", "list"],
                        help="which experiment to run (or 'list' / 'all')")
    parser.add_argument("--scale", choices=["small", "paper"], default="small",
                        help="reduced budgets (minutes) or paper budgets (hours)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(f"{name:<6} {_DESCRIPTIONS[name]}")
        return 0
    if args.experiment == "all":
        for name in sorted(_EXPERIMENTS):
            _run_one(name, args.scale)
        return 0
    _run_one(args.experiment, args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
