"""Command-line entry point for the reproduction experiments and searches.

Experiment harnesses (one per paper figure)::

    python -m repro.cli list
    python -m repro.cli fig4 --scale small
    python -m repro.cli fig7 --scale paper
    python -m repro.cli all  --scale small

``--scale small`` runs each harness with the reduced budgets used by the
benchmark suite (minutes); ``--scale paper`` uses the Section 6.1 budgets
(hours).  Outputs are written to ``output_dir/`` (override with the
``REPRO_OUTPUT_DIR`` environment variable).

Unified search (any registered strategy, one outcome format)::

    python -m repro.cli search resnet50 --strategy dosa --max-samples 5000
    python -m repro.cli search bert --strategy random --max-samples 2000 \\
        --seed 7 --json outcome.json
    python -m repro.cli search unet --strategy bayesian --max-seconds 120

``search`` resolves the strategy through the registry
(:func:`repro.search.api.get_searcher`), enforces the ``--max-samples`` /
``--max-seconds`` budget uniformly, prints best-so-far progress via the
callback hooks, and can persist the full outcome (best design, trace,
settings snapshot) as JSON with ``--json`` for later reloading through
:func:`repro.utils.serialization.load_outcome`.  Ctrl-C ends a search
gracefully: the best-so-far outcome is reported (and written with
``--json``) instead of a traceback.

Experiment campaigns (grids of searches with a persistent store)::

    python -m repro.cli campaign run spec.json --dir campaigns/my-sweep
    python -m repro.cli campaign status --dir campaigns/my-sweep
    python -m repro.cli campaign report --dir campaigns/my-sweep

``campaign run`` executes the grid declared in the spec JSON (see
``docs/campaign.md``), skipping jobs already completed in ``--dir`` —
interrupt it at any point and re-run the same command to resume.
``--n-workers`` shards jobs across processes; ``--shard I/N`` runs a
deterministic 1/N slice of the grid (for splitting one campaign across
machines); ``--max-jobs K`` stops after K jobs.  ``campaign merge`` folds
several shard stores of the same spec into one; ``campaign compact``
rewrites a store's cache spill as a single deduplicated segment.

Search-as-a-service (see ``docs/service.md``)::

    python -m repro.cli serve --root service/ --n-workers 4

runs the job daemon: clients submit searches and campaigns over HTTP/JSON,
stream progress as server-sent events, and fetch results that are
byte-identical to offline runs with the same seeds.  SIGTERM drains
gracefully (in-flight best-so-far results are persisted; a restarted daemon
resumes incomplete jobs).

``--log-level debug|info|warning|error`` (before or after the subcommand)
turns on structured stderr logging for any command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    fig4_correlation,
    fig6_loop_ordering,
    fig7_cosearch,
    fig8_baselines,
    fig9_separation,
    fig10_11_surrogate,
    fig12_rtl,
)

# Reduced-budget keyword arguments per experiment (same spirit as benchmarks/).
_SMALL_SCALE: dict[str, dict] = {
    "fig4": {"num_configs": 10, "mappings_per_config": 20},
    "fig6": {"workloads": ("bert",), "num_start_points": 2, "gd_steps": 120,
             "rounding_period": 60},
    "fig7": {"workloads": ("resnet50", "bert"), "num_start_points": 2, "gd_steps": 150,
             "rounding_period": 75, "random_hardware_designs": 4,
             "random_mappings_per_layer": 60, "bo_training_hardware": 6,
             "bo_mappings_per_layer": 20, "bo_candidates": 30},
    "fig8": {"workloads": ("resnet50",), "mappings_per_layer": 100,
             "num_start_points": 2, "gd_steps": 150, "rounding_period": 75},
    "fig9": {"workloads": ("resnet50", "bert"), "runs_per_workload": 1,
             "gd_steps": 200, "rounding_period": 100, "random_mappings_per_layer": 50},
    "fig10": {"samples_per_layer": 8, "training_epochs": 300,
              "dosa_workloads": ("bert",), "dosa_gd_steps": 100,
              "dosa_rounding_period": 50},
    "fig12": {"workloads": ("resnet50", "bert"), "samples_per_layer": 4,
              "training_epochs": 150, "num_start_points": 1, "gd_steps": 150,
              "rounding_period": 75},
}

_EXPERIMENTS: dict[str, Callable[..., object]] = {
    "fig4": fig4_correlation.main,
    "fig6": fig6_loop_ordering.main,
    "fig7": fig7_cosearch.main,
    "fig8": fig8_baselines.main,
    "fig9": fig9_separation.main,
    "fig10": fig10_11_surrogate.main,
    "fig12": fig12_rtl.main,
}

_DESCRIPTIONS: dict[str, str] = {
    "fig4": "differentiable model correlation against the reference model",
    "fig6": "loop-ordering strategy comparison (baseline / iterate / softmax)",
    "fig7": "DOSA vs random search vs Bayesian optimization",
    "fig8": "DOSA-optimized Gemmini vs expert baseline accelerators",
    "fig9": "attribution of hardware vs mapping improvements",
    "fig10": "latency-model accuracy (Figures 10 and 11)",
    "fig12": "Gemmini-RTL optimization with learned latency models (+ Table 7)",
}


def _run_one(name: str, scale: str) -> None:
    kwargs = _SMALL_SCALE[name] if scale == "small" else {}
    print(f"[repro] running {name} ({_DESCRIPTIONS[name]}) at {scale} scale...")
    output = _EXPERIMENTS[name](**kwargs)
    print(output.to_text())
    print()


def _run_search(args: argparse.Namespace) -> int:
    from repro.arch.config import HardwareConfig
    from repro.search.api import ProgressCallback, SearchBudget, optimize
    from repro.utils.serialization import save_outcome

    try:
        budget = SearchBudget(max_samples=args.max_samples, max_seconds=args.max_seconds)
    except ValueError as error:
        print(f"repro.cli search: error: {error}", file=sys.stderr)
        return 2
    if args.strategy == "fixed_hw_random" and not args.fixed_hardware:
        print("repro.cli search: error: --strategy fixed_hw_random requires "
              "--fixed-hardware PE_DIM ACC_KB SP_KB", file=sys.stderr)
        return 2
    if args.fixed_hardware and args.strategy != "fixed_hw_random":
        print("repro.cli search: error: --fixed-hardware only applies to "
              "--strategy fixed_hw_random", file=sys.stderr)
        return 2
    searcher_kwargs = {}
    if args.fixed_hardware:
        pe_dim, accumulator_kb, scratchpad_kb = args.fixed_hardware
        try:
            searcher_kwargs["hardware"] = HardwareConfig(
                pe_dim=pe_dim, accumulator_kb=accumulator_kb, scratchpad_kb=scratchpad_kb)
        except ValueError as error:
            print(f"repro.cli search: error: --fixed-hardware: {error}", file=sys.stderr)
            return 2

    if args.n_workers is not None and args.n_workers < 1:
        print("repro.cli search: error: --n-workers must be >= 1", file=sys.stderr)
        return 2

    print(f"[repro] searching {args.network} with strategy {args.strategy!r} "
          f"(max_samples={args.max_samples}, max_seconds={args.max_seconds}, "
          f"seed={args.seed}, n_workers={args.n_workers})")
    try:
        outcome = optimize(args.network, strategy=args.strategy, budget=budget,
                           seed=args.seed, callbacks=ProgressCallback(prefix="[repro]"),
                           n_workers=args.n_workers, **searcher_kwargs)
    except KeyboardInterrupt:
        # The searchers absorb Ctrl-C and return their best-so-far outcome;
        # reaching this handler means the interrupt landed before any
        # feasible design existed, so there is nothing to report or persist.
        print("\n[repro] interrupted before any feasible design was found",
              file=sys.stderr)
        return 130

    verb = "interrupted" if outcome.interrupted else "finished"
    print(f"[repro] {outcome.method} {verb}: best EDP {outcome.best_edp:.4e} "
          f"after {outcome.total_samples} samples "
          f"in {outcome.wall_time_seconds:.1f}s")
    print(f"[repro]   hardware: {outcome.best_hardware.describe()}")
    if args.json:
        path = save_outcome(args.json, outcome)
        print(f"[repro]   outcome written to {path}")
    if outcome.interrupted:
        print("[repro]   (best-so-far result of an interrupted search)")
        return 130
    return 0


def _run_campaign_command(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignReport,
        CampaignScheduler,
        CampaignSpec,
        ResultStore,
    )

    if args.campaign_command == "run":
        try:
            spec = CampaignSpec.load(args.spec)
        except (OSError, ValueError, KeyError) as error:
            print(f"repro.cli campaign: error: cannot load spec {args.spec}: "
                  f"{error}", file=sys.stderr)
            return 2
        shard_index = shard_count = None
        if args.shard:
            try:
                index_text, _, count_text = args.shard.partition("/")
                shard_index, shard_count = int(index_text), int(count_text)
            except ValueError:
                print("repro.cli campaign: error: --shard must be I/N "
                      "(e.g. 0/4)", file=sys.stderr)
                return 2
        try:
            store = ResultStore(args.dir, spec=spec)
            scheduler = CampaignScheduler(spec, store, n_workers=args.n_workers,
                                          persist_cache=not args.no_cache_spill)
            status = scheduler.status()
            print(f"[campaign] {spec.name}: {status.total} grid jobs, "
                  f"{len(status.completed)} already complete")

            def announce(job, outcome):
                state = "interrupted" if outcome.interrupted else "done"
                print(f"[campaign] {state}: {job.job_id} "
                      f"best EDP {outcome.best_edp:.4e} "
                      f"after {outcome.total_samples} samples")

            run = scheduler.run(max_jobs=args.max_jobs,
                                shard_index=shard_index,
                                shard_count=shard_count,
                                on_job_done=announce)
        except ValueError as error:
            print(f"repro.cli campaign: error: {error}", file=sys.stderr)
            return 2
        print(f"[campaign] ran {len(run.ran)} jobs, skipped "
              f"{len(run.skipped)} already-complete, "
              f"{len(run.pending_after)} still pending")
        for job_id, error in run.failed:
            print(f"[campaign] FAILED: {job_id}: {error}", file=sys.stderr)
        if run.was_interrupted:
            print("[campaign] interrupted — re-run the same command to resume")
            return 130
        return 1 if run.failed else 0

    if args.campaign_command == "merge":
        try:
            _, stats = ResultStore.merge(args.into, args.sources)
        except (OSError, ValueError) as error:
            print(f"repro.cli campaign: error: {error}", file=sys.stderr)
            return 2
        print(f"[campaign] {stats}")
        return 0

    # The inspection commands (status / report / compact) never create or
    # repair anything: a missing directory, a half-written store or a
    # corrupted results file must exit with a one-line error, not a
    # traceback and not a freshly-created empty store.
    try:
        store = ResultStore(args.dir, create=False)

        if args.campaign_command == "status":
            scheduler = CampaignScheduler(store.spec, store)
            status = scheduler.status()
            print(f"== campaign {status.campaign} ==")
            print(f"jobs: {status.total} total | {len(status.completed)} "
                  f"completed | {len(status.interrupted)} interrupted "
                  f"(re-run on resume) | {len(status.pending)} pending")
            print(f"cache spill: {store.spilled_entry_count()} entries")
            for job_id in status.pending:
                marker = ("interrupted" if job_id in status.interrupted
                          else "pending")
                print(f"  {marker:<11} {job_id}")
            return 0

        if args.campaign_command == "report":
            report = CampaignReport.from_store(store)
            text = report.to_text()
            if args.out:
                report.save(args.out)
                print(f"[campaign] report written to {args.out}")
            else:
                print(text, end="")
            return 0

        if args.campaign_command == "compact":
            stats = store.compact_spill()
            print(f"[campaign] {stats}")
            return 0
    except (OSError, ValueError) as error:
        print(f"repro.cli campaign: error: {error}", file=sys.stderr)
        return 2

    raise AssertionError(f"unhandled campaign command {args.campaign_command}")


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import FaultPlan, ServiceConfig, serve

    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"repro.cli serve: error: cannot load fault plan "
                  f"{args.fault_plan}: {error}", file=sys.stderr)
            return 2
    try:
        config = ServiceConfig(
            root=args.root,
            host=args.host,
            port=args.port,
            n_workers=args.n_workers,
            queue_limit=args.queue_limit,
            request_timeout=args.request_timeout,
            step_period=args.step_period,
            tenant_quota=args.tenant_quota,
            max_attempts=args.max_attempts,
            watchdog_seconds=args.watchdog_seconds or None,
            worker_heartbeat_seconds=args.worker_heartbeat_seconds,
            job_ttl_seconds=args.job_ttl_seconds,
            gc_interval_seconds=args.gc_interval_seconds,
            compact_interval_seconds=args.compact_interval_seconds,
            fault_plan=fault_plan,
        )
    except ValueError as error:
        print(f"repro.cli serve: error: {error}", file=sys.stderr)
        return 2
    return serve(config)


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis.baseline import save_baseline
    from repro.analysis.registry import get_checker, rule_catalog
    from repro.analysis.reporters import render_json, render_text
    from repro.analysis.runner import default_baseline_path, run_lint

    if args.explain is not None:
        try:
            checker = get_checker(args.explain)
        except KeyError:
            print(f"repro.cli lint: error: unknown rule {args.explain!r} "
                  "(see `repro.cli lint --rules` for the catalog)",
                  file=sys.stderr)
            return 2
        zones = (", ".join(checker.zones) if checker.zones
                 else "whole package")
        print(f"{checker.rule_id}  [zones: {zones}]\n")
        print(checker.explanation())
        return 0

    if args.rules is not None and not args.rules:
        # Bare --rules lists the catalog (docstring first lines).
        for rule_id, summary in rule_catalog():
            print(f"{rule_id:<22} {summary}")
        return 0

    rules = list(args.rules) if args.rules else None
    if args.update_baseline and rules is not None:
        print("repro.cli lint: error: --update-baseline captures a full "
              "run; it cannot be combined with a --rules subset",
              file=sys.stderr)
        return 2

    try:
        result = run_lint(
            package_dir=args.package_dir,
            rules=rules,
            baseline_path=args.baseline,
            use_baseline=not args.update_baseline,
        )
    except KeyError as error:
        print(f"repro.cli lint: error: {error.args[0]}", file=sys.stderr)
        return 2

    if args.update_baseline:
        from pathlib import Path

        from repro.analysis.runner import default_package_dir

        package_dir = (Path(args.package_dir) if args.package_dir
                       else default_package_dir())
        baseline_path = (Path(args.baseline) if args.baseline
                         else default_baseline_path(package_dir.resolve()))
        save_baseline(baseline_path, result.findings)
        print(f"baseline updated: {len(result.findings)} finding(s) "
              f"recorded in {baseline_path}")
        return 0

    counts = {"checked_files": result.checked_files,
              "suppressed": result.suppressed,
              "baselined": result.baselined}
    if args.json:
        sys.stdout.write(render_json(result.findings, **counts))
    else:
        print(render_text(result.findings, **counts))
    return 0 if result.clean else 1


def _build_parser() -> argparse.ArgumentParser:
    from repro.search.api import available_strategies
    from repro.utils.log import LOG_LEVELS
    from repro.workloads.networks import NETWORK_BUILDERS

    log_level_help = ("structured stderr logging threshold for all "
                      "repro components (default: warning)")

    def _add_log_level(target: argparse.ArgumentParser) -> None:
        # Re-declared on every leaf subparser (default SUPPRESS so it never
        # clobbers the top-level value) so the flag is accepted both before
        # and after the subcommand.
        target.add_argument("--log-level", choices=LOG_LEVELS,
                            default=argparse.SUPPRESS, help=log_level_help)

    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--log-level", choices=LOG_LEVELS, default="warning",
                        help=log_level_help)
    subparsers = parser.add_subparsers(dest="command", required=True,
                                       metavar="{search,campaign,serve,lint,list,all," +
                                               ",".join(sorted(_EXPERIMENTS)) + "}")

    # Experiment subcommands keep the original calling convention:
    # `python -m repro.cli fig7 --scale small`.
    for name in [*sorted(_EXPERIMENTS), "all", "list"]:
        help_text = _DESCRIPTIONS.get(name, f"run {name}")
        sub = subparsers.add_parser(name, help=help_text)
        if name != "list":
            sub.add_argument("--scale", choices=["small", "paper"], default="small",
                             help="reduced budgets (minutes) or paper budgets (hours)")
        _add_log_level(sub)

    search = subparsers.add_parser(
        "search", help="run one co-search strategy through the unified API")
    search.add_argument("network", choices=sorted(NETWORK_BUILDERS),
                        help="target workload (workload registry name)")
    search.add_argument("--strategy", choices=available_strategies(), default="dosa",
                        help="search strategy (strategy registry name)")
    search.add_argument("--max-samples", type=int, default=None,
                        help="budget: max model evaluations (paper sample accounting)")
    search.add_argument("--max-seconds", type=float, default=None,
                        help="budget: max wall-clock seconds")
    search.add_argument("--seed", type=int, default=0, help="search seed")
    search.add_argument("--n-workers", type=int, default=None,
                        help="process-pool size for reference-model evaluation "
                             "(default: in-process; results are identical)")
    search.add_argument("--json", metavar="PATH", default=None,
                        help="write the full SearchOutcome to PATH as JSON")
    search.add_argument("--fixed-hardware", nargs=3, type=int, default=None,
                        metavar=("PE_DIM", "ACC_KB", "SP_KB"),
                        help="hardware for the fixed_hw_random strategy")
    _add_log_level(search)

    campaign = subparsers.add_parser(
        "campaign", help="run/inspect sharded, resumable experiment campaigns")
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="run a campaign spec's grid (resumes a partial store)")
    campaign_run.add_argument("spec", help="campaign spec JSON (docs/campaign.md)")
    campaign_run.add_argument("--dir", required=True,
                              help="campaign store directory (created if missing)")
    campaign_run.add_argument("--n-workers", type=int, default=None,
                              help="process-shard jobs across N workers "
                                   "(default: run jobs inline, in order)")
    campaign_run.add_argument("--max-jobs", type=int, default=None,
                              help="stop after running K jobs this invocation")
    campaign_run.add_argument("--shard", metavar="I/N", default=None,
                              help="run only the I-th of N deterministic grid "
                                   "slices (multi-machine campaigns)")
    campaign_run.add_argument("--no-cache-spill", action="store_true",
                              help="disable the persistent evaluation-cache "
                                   "spill (results are identical, just slower)")

    campaign_status = campaign_sub.add_parser(
        "status", help="show completed/interrupted/pending jobs of a store")
    campaign_status.add_argument("--dir", required=True,
                                 help="campaign store directory")

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate a store's completed jobs into tables")
    campaign_report.add_argument("--dir", required=True,
                                 help="campaign store directory")
    campaign_report.add_argument("--out", default=None,
                                 help="write the report to a file instead of stdout")

    campaign_merge = campaign_sub.add_parser(
        "merge", help="merge shard stores of one spec into a single store")
    campaign_merge.add_argument("sources", nargs="+",
                                help="source store directories (same spec)")
    campaign_merge.add_argument("--into", required=True,
                                help="destination store directory "
                                     "(created if missing)")

    campaign_compact = campaign_sub.add_parser(
        "compact", help="rewrite a store's cache spill as one deduplicated "
                        "segment (reloads bit-identically)")
    campaign_compact.add_argument("--dir", required=True,
                                  help="campaign store directory")

    for sub in (campaign_run, campaign_status, campaign_report,
                campaign_merge, campaign_compact):
        _add_log_level(sub)

    serve = subparsers.add_parser(
        "serve", help="run the search-service job daemon (docs/service.md)")
    serve.add_argument("--root", required=True,
                       help="service state directory (tenant stores, shared "
                            "cache spill, endpoint file)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = ephemeral; see "
                            "<root>/service.json for the chosen port)")
    serve.add_argument("--n-workers", type=int, default=2,
                       help="fork-pool size: max concurrent evaluations "
                            "across all clients (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bounded queue depth; submits beyond it get "
                            "429 + Retry-After (default: 64)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request socket timeout in seconds "
                            "(default: 30)")
    serve.add_argument("--step-period", type=int, default=25,
                       help="stream a step event every N samples "
                            "(default: 25)")
    serve.add_argument("--tenant-quota", type=int, default=None,
                       help="max active (queued+running) jobs per tenant; "
                            "submits beyond it get 429 (default: unlimited)")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="dispatch attempts per job before it is failed "
                            "(worker crashes requeue; default: 3)")
    serve.add_argument("--watchdog-seconds", type=float, default=60.0,
                       help="kill a worker whose running cell goes silent "
                            "this long; 0 disables (default: 60)")
    serve.add_argument("--worker-heartbeat-seconds", type=float, default=2.0,
                       help="worker liveness heartbeat period (default: 2)")
    serve.add_argument("--job-ttl-seconds", type=float, default=None,
                       help="expire terminal jobs (record + result store) "
                            "after this long (default: keep forever)")
    serve.add_argument("--gc-interval-seconds", type=float, default=30.0,
                       help="TTL sweep period (default: 30)")
    serve.add_argument("--compact-interval-seconds", type=float, default=None,
                       help="compact the shared cache spill every N seconds "
                            "(default: never)")
    serve.add_argument("--fault-plan", default=None, metavar="PATH",
                       help="arm a deterministic fault-injection plan "
                            "(testing only; see docs/service.md)")
    _add_log_level(serve)

    lint = subparsers.add_parser(
        "lint", help="statically check the repo's own invariants "
                     "(docs/lint.md)")
    lint.add_argument("--rules", nargs="*", metavar="RULE", default=None,
                      help="with no arguments: list the rule catalog; with "
                           "rule ids: check only those rules")
    lint.add_argument("--explain", metavar="RULE", default=None,
                      help="print one rule's full documentation and exit")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable findings report")
    lint.add_argument("--update-baseline", action="store_true",
                      help="record the current full-run findings as the "
                           "grandfathered baseline and exit 0")
    lint.add_argument("--package-dir", metavar="DIR", default=None,
                      help="package directory to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="baseline file (default: lint-baseline.json at "
                           "the repo root)")
    _add_log_level(lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.utils.log import configure_logging
    configure_logging(args.log_level)

    try:
        if args.command == "search":
            return _run_search(args)
        if args.command == "campaign":
            return _run_campaign_command(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "lint":
            return _run_lint(args)
        if args.command == "list":
            for name in sorted(_EXPERIMENTS):
                print(f"{name:<6} {_DESCRIPTIONS[name]}")
            return 0
        if args.command == "all":
            for name in sorted(_EXPERIMENTS):
                _run_one(name, args.scale)
            return 0
        _run_one(args.command, args.scale)
        return 0
    except BrokenPipeError:
        # stdout went away (e.g. `... | head`); not an error worth a traceback.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
