"""Benchmark regenerating Figure 7 / Section 6.3: DOSA vs random vs BB-BO."""

from repro.experiments import fig7_cosearch


def test_fig7_cosearch_sample_efficiency(benchmark, record_results):
    results = benchmark.pedantic(
        fig7_cosearch.run,
        kwargs={
            "workloads": ("resnet50", "bert"),
            "num_start_points": 2, "gd_steps": 150, "rounding_period": 75,
            "random_hardware_designs": 4, "random_mappings_per_layer": 60,
            "bo_training_hardware": 6, "bo_mappings_per_layer": 20, "bo_candidates": 30,
            "seed": 0,
        },
        rounds=1, iterations=1,
    )
    summary = fig7_cosearch.summarize(results)
    record_results(
        benchmark,
        geomean_vs_random=summary["geomean_vs_random"],
        geomean_vs_bayesian=summary["geomean_vs_bayesian"],
        paper_geomean_vs_random=2.80,
        paper_geomean_vs_bayesian=12.59,
        per_workload={r.workload: {"dosa": r.dosa_edp, "random": r.random_edp,
                                   "bayesian": r.bayesian_edp} for r in results},
    )
    # Shape check: DOSA wins on geometric mean against both baselines.
    assert summary["geomean_vs_random"] > 1.0
    assert summary["geomean_vs_bayesian"] > 1.0
