"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the knobs of the DOSA search on a
small workload so that a downstream user can see what each one buys:

* rounding period — how often fractional factors are snapped to valid mappings,
* number of GD start points — breadth vs depth under a fixed sample budget,
* whole-model EDP objective (Eq. 14) vs optimizing each layer separately.
"""

from repro.arch import GemminiSpec
from repro.core.optimizer import DosaSearcher, DosaSettings
from repro.timeloop import evaluate_network_mappings
from repro.workloads import get_network
from repro.workloads.networks import Network


def _bert() -> Network:
    return get_network("bert")


def test_ablation_rounding_period(benchmark, record_results):
    """Frequent vs infrequent rounding under the same total step budget."""

    def run():
        results = {}
        for period in (30, 120):
            settings = DosaSettings(num_start_points=1, gd_steps=240,
                                    rounding_period=period, seed=0)
            results[period] = DosaSearcher(_bert(), settings).search().best_edp
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_results(benchmark, best_edp_by_rounding_period=results)
    assert all(edp > 0 for edp in results.values())


def test_ablation_start_points(benchmark, record_results):
    """One deep descent vs several shallower descents at a matched budget."""

    def run():
        results = {}
        for start_points, steps in ((1, 240), (3, 80)):
            settings = DosaSettings(num_start_points=start_points, gd_steps=steps,
                                    rounding_period=40, seed=0)
            results[f"{start_points}x{steps}"] = DosaSearcher(_bert(), settings).search().best_edp
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_results(benchmark, best_edp_by_start_points=results)
    assert all(edp > 0 for edp in results.values())


def test_ablation_whole_model_vs_per_layer_objective(benchmark, record_results):
    """Equation 14 (joint EDP) vs optimizing each layer in isolation.

    The per-layer variant runs an independent single-layer search per unique
    layer and merges the resulting hardware (parameter-wise max), which is the
    two-loop searchers' implicit objective; the joint variant is DOSA's.
    """

    def run():
        network = _bert()
        joint_settings = DosaSettings(num_start_points=1, gd_steps=120,
                                      rounding_period=60, seed=0)
        joint = DosaSearcher(network, joint_settings).search()

        per_layer_mappings = []
        per_layer_hardware = []
        for layer in network.layers:
            single = Network(name=layer.name or "layer", layers=[layer])
            settings = DosaSettings(num_start_points=1, gd_steps=120,
                                    rounding_period=60, seed=0)
            result = DosaSearcher(single, settings).search()
            per_layer_mappings.append(result.best.mappings[0])
            per_layer_hardware.append(result.best.hardware)
        from repro.arch import merge_hardware_configs

        merged = merge_hardware_configs(per_layer_hardware)
        per_layer_edp = evaluate_network_mappings(per_layer_mappings,
                                                  GemminiSpec(merged)).edp
        return {"joint": joint.best_edp, "per_layer": per_layer_edp}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_results(benchmark, objective_ablation=results,
                   note="joint Eq.14 objective vs independently optimized layers")
    assert results["joint"] > 0 and results["per_layer"] > 0
