"""Benchmark regenerating Figure 8: DOSA-optimized Gemmini vs expert baselines."""

from repro.experiments import fig8_baselines


def test_fig8_expert_baseline_comparison(benchmark, record_results):
    results = benchmark.pedantic(
        fig8_baselines.run,
        kwargs={"workloads": ("resnet50",), "mappings_per_layer": 100,
                "num_start_points": 2, "gd_steps": 150, "rounding_period": 75, "seed": 0},
        rounds=1, iterations=1,
    )
    per_accelerator = results["resnet50"]
    dosa = per_accelerator["Gemmini DOSA"]
    normalized = {name: edp / dosa for name, edp in per_accelerator.items()}
    record_results(benchmark, normalized_edp=normalized,
                   paper_note="every expert baseline >2x worse than DOSA (Fig. 8b)")
    # Shape check: DOSA-optimized Gemmini beats every fixed expert baseline.
    for name, edp in per_accelerator.items():
        if name != "Gemmini DOSA":
            assert edp > dosa
