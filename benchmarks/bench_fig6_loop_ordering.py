"""Benchmark regenerating Figure 6: loop-ordering strategy comparison."""

from repro.experiments import fig6_loop_ordering


def test_fig6_loop_ordering_strategies(benchmark, record_results):
    results = benchmark.pedantic(
        fig6_loop_ordering.run,
        kwargs={"workloads": ("bert",), "num_start_points": 2, "gd_steps": 120,
                "rounding_period": 60, "seed": 0},
        rounds=1, iterations=1,
    )
    bert = results["bert"]
    record_results(
        benchmark,
        baseline_edp=bert["baseline"],
        iterate_edp=bert["iterate"],
        softmax_edp=bert["softmax"],
        iterate_improvement=bert["baseline"] / bert["iterate"],
        softmax_improvement=bert["baseline"] / bert["softmax"],
        paper_iterate_improvement=1.70,
        paper_softmax_improvement=1.58,
    )
    assert all(edp > 0 for edp in bert.values())
    # Loop-ordering search should not hurt the searched design.
    assert bert["iterate"] <= bert["baseline"] * 1.05
