"""Micro-benchmarks of the performance models and the evaluation engine.

Not tied to a specific figure; these document the evaluation throughput that
makes the one-loop search practical (the differentiable model replaces
thousands of reference-model samples with gradient steps of comparable cost)
and the speedup of the cached + batched evaluation engine over the seed's
per-mapping path.

Besides the pytest-benchmark entries, the module runs standalone as the CI
smoke check for the evaluation path::

    PYTHONPATH=src python benchmarks/bench_model_throughput.py --quick

which times the scalar loop against :class:`repro.eval.EvaluationEngine` on a
randomized mapping corpus with realistic candidate repetition, verifies the
batch evaluator's per-level access counts are *bit-identical* to
:func:`repro.timeloop.loopnest.analyze_traffic`, prints the cache hit
statistics, and fails (non-zero exit) if the engine is less than 5x faster.
"""

import argparse
import sys
import time

import numpy as np

from repro.arch import GemminiSpec, HardwareConfig
from repro.autodiff import Adam
from repro.core.dmodel import (
    DifferentiableHardware,
    DifferentiableModel,
    LayerFactors,
    network_edp_loss,
    validity_penalty,
)
from repro.eval import EvaluationEngine, batch_analyze_traffic
from repro.mapping import cosa_mapping
from repro.mapping.random_mapper import random_mapping
from repro.timeloop import analyze_traffic, evaluate_mapping
from repro.workloads import get_network

CONFIG = HardwareConfig(16, 32, 128)

# Corpus shape for the standalone engine benchmark: each unique mapping
# appears `DUPLICATION`x, modelling the repeated candidates that rounding
# produces for the random/Bayesian baselines.
DUPLICATION = 4


def build_corpus(num_unique: int, seed: int = 0) -> list:
    """Random valid mappings over ResNet-50/BERT layers, with repetition."""
    rng = np.random.default_rng(seed)
    layers = get_network("resnet50").layers[:8] + get_network("bert").layers[:2]
    unique = [random_mapping(layers[i % len(layers)], seed=rng, max_spatial=32)
              for i in range(num_unique)]
    corpus = [mapping for mapping in unique for _ in range(DUPLICATION)]
    order = np.random.default_rng(seed + 1).permutation(len(corpus))
    return [corpus[i] for i in order]


# --------------------------------------------------------------------------- #
# pytest-benchmark entries
# --------------------------------------------------------------------------- #
def test_reference_model_evaluation(benchmark):
    mapping = cosa_mapping(get_network("resnet50").layers[5], CONFIG)
    spec = GemminiSpec(CONFIG)
    result = benchmark(evaluate_mapping, mapping, spec)
    assert result.edp > 0


def test_differentiable_model_evaluation(benchmark):
    mapping = cosa_mapping(get_network("resnet50").layers[5], CONFIG)
    factors = LayerFactors.from_mapping(mapping)
    hardware = DifferentiableHardware.from_config(CONFIG)
    performance = benchmark(DifferentiableModel.evaluate_layer, factors, hardware)
    assert float(performance.edp.data) > 0


def test_batched_engine_evaluation(benchmark):
    """One engine batch over a fresh-cache corpus (vectorized misses only)."""
    corpus = build_corpus(num_unique=64, seed=2)
    spec = GemminiSpec(CONFIG)

    def evaluate_batch():
        engine = EvaluationEngine()
        return engine.evaluate_many(corpus, spec)

    results = benchmark(evaluate_batch)
    assert len(results) == len(corpus) and results[0].edp > 0


def test_cached_engine_evaluation(benchmark):
    """Steady-state engine queries on a warm cache (pure hits)."""
    corpus = build_corpus(num_unique=32, seed=3)
    spec = GemminiSpec(CONFIG)
    engine = EvaluationEngine()
    engine.evaluate_many(corpus, spec)  # warm up

    results = benchmark(engine.evaluate_many, corpus, spec)
    assert len(results) == len(corpus)
    assert engine.stats.hit_rate > 0.7


def test_gradient_descent_step_bert(benchmark):
    network = get_network("bert")
    factors = [LayerFactors.from_mapping(cosa_mapping(layer, CONFIG))
               for layer in network.layers]
    repeats = [layer.repeats for layer in network.layers]
    optimizer = Adam([p for f in factors for p in f.parameters()], lr=0.05)

    def step():
        optimizer.zero_grad()
        hardware = DifferentiableModel.derive_hardware(factors)
        performances = DifferentiableModel.evaluate_network(factors, hardware)
        loss = network_edp_loss(performances, repeats) + 1e9 * validity_penalty(factors)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    loss_value = benchmark(step)
    assert loss_value > 0


# --------------------------------------------------------------------------- #
# Standalone smoke mode (CI): throughput ratio + bit-identical parity
# --------------------------------------------------------------------------- #
def check_parity(corpus: list) -> None:
    """Assert batch per-level access counts are bit-identical to the walk."""
    batch = batch_analyze_traffic(corpus)
    per_level = batch.per_level_accesses()
    for index, mapping in enumerate(corpus):
        reference = analyze_traffic(mapping)
        for position, level in enumerate(sorted(reference.per_level_accesses())):
            reference_accesses = reference.accesses(level)
            if per_level[index, position] != reference_accesses:
                raise AssertionError(
                    f"parity violation at mapping {index}, level {level}: "
                    f"batch={per_level[index, position]!r} "
                    f"reference={reference_accesses!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="evaluation-engine smoke benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus (CI smoke); default is ~4x larger")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="fail below this engine-vs-scalar throughput ratio")
    args = parser.parse_args(argv)

    num_unique = 150 if args.quick else 600
    corpus = build_corpus(num_unique=num_unique)
    spec = GemminiSpec(CONFIG)
    print(f"[bench] corpus: {len(corpus)} mappings "
          f"({num_unique} unique x {DUPLICATION})")

    check_parity(corpus[: min(len(corpus), 200)])
    print("[bench] parity: batch per-level access counts bit-identical "
          "to analyze_traffic")

    start = time.perf_counter()
    scalar_results = [evaluate_mapping(mapping, spec) for mapping in corpus]
    scalar_seconds = time.perf_counter() - start

    engine = EvaluationEngine()
    start = time.perf_counter()
    engine_results = engine.evaluate_many(corpus, spec)
    engine_seconds = time.perf_counter() - start

    for scalar, fast in zip(scalar_results, engine_results):
        assert scalar.edp == fast.edp, "engine result diverged from scalar path"

    scalar_throughput = len(corpus) / scalar_seconds
    engine_throughput = len(corpus) / engine_seconds
    speedup = engine_throughput / scalar_throughput
    print(f"[bench] scalar path:  {scalar_seconds:.3f}s "
          f"({scalar_throughput:,.0f} mappings/s)")
    print(f"[bench] eval engine:  {engine_seconds:.3f}s "
          f"({engine_throughput:,.0f} mappings/s)")
    print(f"[bench] speedup:      {speedup:.1f}x (required: >= {args.min_speedup:.1f}x)")
    print(f"[bench] cache stats:  {engine.stats.describe()}")

    if speedup < args.min_speedup:
        print(f"[bench] FAIL: speedup {speedup:.1f}x below the "
              f"{args.min_speedup:.1f}x bar", file=sys.stderr)
        return 1
    print("[bench] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
