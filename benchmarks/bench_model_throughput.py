"""Micro-benchmarks of the two performance models and one GD step.

Not tied to a specific figure; these document the evaluation throughput that
makes the one-loop search practical (the differentiable model replaces
thousands of reference-model samples with gradient steps of comparable cost).
"""

from repro.arch import GemminiSpec, HardwareConfig
from repro.autodiff import Adam
from repro.core.dmodel import (
    DifferentiableHardware,
    DifferentiableModel,
    LayerFactors,
    network_edp_loss,
    validity_penalty,
)
from repro.mapping import cosa_mapping
from repro.timeloop import evaluate_mapping
from repro.workloads import get_network

CONFIG = HardwareConfig(16, 32, 128)


def test_reference_model_evaluation(benchmark):
    mapping = cosa_mapping(get_network("resnet50").layers[5], CONFIG)
    spec = GemminiSpec(CONFIG)
    result = benchmark(evaluate_mapping, mapping, spec)
    assert result.edp > 0


def test_differentiable_model_evaluation(benchmark):
    mapping = cosa_mapping(get_network("resnet50").layers[5], CONFIG)
    factors = LayerFactors.from_mapping(mapping)
    hardware = DifferentiableHardware.from_config(CONFIG)
    performance = benchmark(DifferentiableModel.evaluate_layer, factors, hardware)
    assert float(performance.edp.data) > 0


def test_gradient_descent_step_bert(benchmark):
    network = get_network("bert")
    factors = [LayerFactors.from_mapping(cosa_mapping(layer, CONFIG))
               for layer in network.layers]
    repeats = [layer.repeats for layer in network.layers]
    optimizer = Adam([p for f in factors for p in f.parameters()], lr=0.05)

    def step():
        optimizer.zero_grad()
        hardware = DifferentiableModel.derive_hardware(factors)
        performances = DifferentiableModel.evaluate_network(factors, hardware)
        loss = network_edp_loss(performances, repeats) + 1e9 * validity_penalty(factors)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    loss_value = benchmark(step)
    assert loss_value > 0
