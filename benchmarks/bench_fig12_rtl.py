"""Benchmark regenerating Figure 12 and Table 7: Gemmini-RTL optimization."""

from repro.experiments import fig12_rtl


def test_fig12_rtl_optimization_and_table7(benchmark, record_results):
    results = benchmark.pedantic(
        fig12_rtl.run,
        kwargs={"workloads": ("resnet50", "bert"), "samples_per_layer": 4,
                "training_epochs": 150, "num_start_points": 1, "gd_steps": 150,
                "rounding_period": 75, "seed": 0},
        rounds=1, iterations=1,
    )
    summary = fig12_rtl.summarize(results)
    table7 = fig12_rtl.table7_rows(results)
    record_results(
        benchmark,
        improvement_over_default=summary,
        table7_buffer_sizes_kb=table7,
        paper_improvements={"analytical": 1.48, "dnn_only": 1.66, "analytical_dnn": 1.82},
        paper_table7_note="DOSA sizes both buffers above the 32/128 KB defaults",
    )
    # Shape checks: searching buffer sizes and mappings improves on the
    # hand-tuned default for every latency model.
    assert all(value > 1.0 for value in summary.values())
    # Table 7 shape: the combined-model designs never shrink the accumulator
    # below the default.
    default_accumulator = table7[0][1]
    assert all(row[1] >= default_accumulator for row in table7[1:])
