"""Shared pytest-benchmark configuration for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a reduced
but shape-preserving scale (full paper-scale runs take hours; see
EXPERIMENTS.md for the paper-scale entry points).  The benchmark value is the
wall-clock time of the harness; the scientific outputs are attached to
``benchmark.extra_info`` so they appear in the saved benchmark JSON.
"""

import pytest


@pytest.fixture
def record_results():
    """Helper to stash experiment numbers in the benchmark's extra_info."""

    def _record(benchmark, **values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record
