"""Benchmark of the vectorized (S, L) integer-rounding walk.

PR 5 batched the reference-*evaluation* half of every DOSA rounding point
(`bench_rounding_eval.py`); this bench measures the other half: the
nearest-divisor rounding walk itself plus the ITERATE loop-ordering
re-selection, which used to run as S x L Python walks per rounding point and
now runs as two batched passes — one ``(S, L)`` integer-rounding kernel call
(`repro.mapping.rounding_walk`) and one restacked ``(3, S, L)``
`best_ordering_per_layer` pass.

Standalone CI smoke::

    PYTHONPATH=src python benchmarks/bench_rounding_walk.py --quick

builds the seeded multi-start resnet50 stack a DOSA search would round,
verifies the batched walk is *bit-identical* to the scalar
``round_mapping`` walk (and the batched re-selection decision-identical to
the per-start passes), and fails (non-zero exit) if the kernel is less than
1.5x faster than the per-start scalar walks.  ``--record PATH`` saves the
measurements as a JSON baseline (``benchmarks/BENCH_rounding_walk.json`` is
the checked-in one; see benchmarks/README.md for methodology).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.core.dmodel import MultiStartFactors, NetworkFactors, best_ordering_per_layer
from repro.core.optimizer.startpoints import generate_start_points, stack_start_points
from repro.workloads import get_network

WORKLOAD = "resnet50"
NUM_STARTS = 7
MAX_SPATIAL = 128  # the default search cap (HardwareBounds.max_pe_dim)
ROUNDS = 30  # repetitions per timed side
WALK_SPEEDUP_BAR = 1.5


def build_multistart(seed: int = 0) -> MultiStartFactors:
    """The seeded (S, L) factor stack a DOSA rounding point operates on."""
    network = get_network(WORKLOAD)
    points = generate_start_points(network, count=NUM_STARTS, seed=seed)
    return stack_start_points(points)


def walk_scalar(multi: MultiStartFactors) -> list:
    """The pre-change shape: one Python walk per start x layer."""
    return [multi.rounded_mappings_of(start, max_spatial=MAX_SPATIAL)
            for start in range(multi.num_starts)]


def walk_batched(multi: MultiStartFactors) -> list:
    """The current shape: every start through one (S, L) kernel pass."""
    return multi.rounded_mapping_sets(max_spatial=MAX_SPATIAL)


def reselect_per_start(rounded_sets: list) -> list:
    """The pre-change shape: one (3, L) ordering pass per start."""
    return [best_ordering_per_layer(NetworkFactors.from_mappings(rounded))
            for rounded in rounded_sets]


def reselect_batched(rounded_sets: list) -> list:
    """The current shape: one restacked (3, S, L) ordering pass."""
    return best_ordering_per_layer(
        MultiStartFactors.from_mapping_sets(rounded_sets))


def assert_bit_identical(multi: MultiStartFactors) -> None:
    reference_sets = walk_scalar(multi)
    batched_sets = walk_batched(multi)
    for reference, batched in zip(reference_sets, batched_sets):
        for expected, actual in zip(reference, batched):
            assert np.array_equal(expected.temporal, actual.temporal)
            assert np.array_equal(expected.spatial, actual.spatial)
            assert expected.orderings == actual.orderings
    assert reselect_per_start(reference_sets) == reselect_batched(batched_sets)


def time_side(fn, argument, rounds: int) -> float:
    fn(argument)  # warmup (pays one-time divisor-table construction)
    start = time.perf_counter()
    for _ in range(rounds):
        fn(argument)
    return (time.perf_counter() - start) / rounds


def run_quick(minimum_speedup: float = WALK_SPEEDUP_BAR,
              record: str | None = None) -> int:
    multi = build_multistart(seed=0)
    layer_count = len(multi.layers)
    print(f"[bench] rounding walk: {multi.num_starts} starts x "
          f"{layer_count} layers ({WORKLOAD}), max_spatial={MAX_SPATIAL}")

    assert_bit_identical(multi)
    print("[bench] batched walk bit-identical to the scalar round_mapping "
          "oracle (and re-selection decision-identical): OK")

    scalar_walk = time_side(walk_scalar, multi, ROUNDS)
    batched_walk = time_side(walk_batched, multi, ROUNDS)
    walk_speedup = scalar_walk / batched_walk

    rounded_sets = walk_batched(multi)
    scalar_reselect = time_side(reselect_per_start, rounded_sets, ROUNDS)
    batched_reselect = time_side(reselect_batched, rounded_sets, ROUNDS)
    reselect_speedup = scalar_reselect / batched_reselect

    print(f"[bench] scalar walks      : {scalar_walk * 1e3:8.2f} ms/rounding point")
    print(f"[bench] batched kernel    : {batched_walk * 1e3:8.2f} ms/rounding point")
    print(f"[bench] walk speedup      : {walk_speedup:.2f}x "
          f"(bar: >={minimum_speedup}x)")
    print(f"[bench] per-start reselect: {scalar_reselect * 1e3:8.2f} ms/rounding point")
    print(f"[bench] batched reselect  : {batched_reselect * 1e3:8.2f} ms/rounding point")
    print(f"[bench] reselect speedup  : {reselect_speedup:.2f}x (reported, no bar)")

    if walk_speedup < minimum_speedup:
        # A failing run must not clobber a checked-in --record baseline.
        print(f"[bench] FAIL: batched rounding walk below {minimum_speedup}x",
              file=sys.stderr)
        return 1

    if record:
        payload = {
            "benchmark": "rounding_walk",
            "workload": WORKLOAD,
            "num_start_points": multi.num_starts,
            "unique_layers": layer_count,
            "max_spatial": MAX_SPATIAL,
            "measured_rounds": ROUNDS,
            "scalar_walk_ms": round(scalar_walk * 1e3, 3),
            "batched_walk_ms": round(batched_walk * 1e3, 3),
            "walk_speedup": round(walk_speedup, 2),
            "per_start_reselect_ms": round(scalar_reselect * 1e3, 3),
            "batched_reselect_ms": round(batched_reselect * 1e3, 3),
            "reselect_speedup": round(reselect_speedup, 2),
            "speedup_bar": minimum_speedup,
            "command": ("PYTHONPATH=src python benchmarks/bench_rounding_walk.py "
                        "--quick --record benchmarks/BENCH_rounding_walk.json"),
        }
        with open(record, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"recorded baseline -> {record}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run the CI smoke (correctness + speedup bar)")
    parser.add_argument("--min-speedup", type=float, default=WALK_SPEEDUP_BAR)
    parser.add_argument("--record", metavar="PATH",
                        help="write the measured baseline JSON to PATH")
    args = parser.parse_args()
    if not args.quick:
        parser.error("this benchmark only has a --quick mode")
    return run_quick(minimum_speedup=args.min_speedup, record=args.record)


if __name__ == "__main__":
    raise SystemExit(main())
