"""Benchmark of the cross-start rounding-point reference evaluation.

The ROADMAP PR 4 follow-up identified the rounding / reference-evaluation
phase as the dominant cost of a (batched-descent) DOSA search.  This bench
measures exactly the change that addressed it: at every rounding point the
start-batched searcher now scores **all** active starts through one
``EvaluationEngine.evaluate_network_sets`` call — a single stacked traffic
analysis across S starts x L layers, even though each start derived its own
hardware — instead of one per-start ``evaluate_network`` batch.

Standalone CI smoke::

    PYTHONPATH=src python benchmarks/bench_rounding_eval.py --quick

builds realistic rounding-point batches (the actual rounded mapping sets a
seeded multi-start resnet50 descent produces), verifies the cross-start path
is *bit-identical* to scoring the sets one at a time, and fails (non-zero
exit) if it is less than 1.2x faster on cold caches (measured ~1.6x; the bar
sits well below that so it catches regressions, not machine noise).
"""

import argparse
import sys
import time

import numpy as np

from repro.core.optimizer import DosaSettings
from repro.core.optimizer.dosa import DosaSearcher
from repro.core.optimizer.startpoints import generate_start_points
from repro.eval import EvaluationEngine
from repro.mapping.constraints import minimal_hardware_for_mappings
from repro.workloads import get_network

WORKLOAD = "resnet50"
NUM_STARTS = 7
ROUNDS = 30  # cold-cache repetitions per timed side


def build_rounding_sets(seed: int = 0) -> list:
    """The (mappings, hardware) sets of one realistic rounding point.

    Generates the seeded start points a DOSA search would descend and rounds
    them exactly like `_round_and_evaluate_all` does (ITERATE ordering
    re-selection + minimal-hardware derivation), so the benchmark scores the
    same kind of batch the searcher scores.
    """
    network = get_network(WORKLOAD)
    searcher = DosaSearcher(network, DosaSettings(num_start_points=NUM_STARTS,
                                                  seed=seed))
    starts = generate_start_points(network, count=NUM_STARTS, seed=seed)
    sets = []
    for point in starts:
        rounded, hardware = searcher._prepare_rounded(
            [m.with_dram_inferred() for m in point.mappings],
            batched_ordering=True)
        assert hardware == minimal_hardware_for_mappings(rounded)
        sets.append((rounded, hardware))
    return sets


def score_per_start(sets) -> list:
    """The pre-change shape: one engine batch per start (shared cold cache)."""
    with EvaluationEngine() as engine:
        return [engine.evaluate_network(mappings, hardware)
                for mappings, hardware in sets]


def score_cross_start(sets) -> list:
    """The current shape: every start in one cross-start batch (cold cache)."""
    with EvaluationEngine() as engine:
        return engine.evaluate_network_sets(sets)


def assert_bit_identical(sets) -> None:
    for expected, actual in zip(score_per_start(sets), score_cross_start(sets)):
        assert actual.total_latency == expected.total_latency
        assert actual.total_energy == expected.total_energy
        assert actual.per_layer == expected.per_layer


def time_side(fn, sets, rounds: int) -> float:
    fn(sets)  # warmup (pays one-time wrap/memoization costs)
    start = time.perf_counter()
    for _ in range(rounds):
        fn(sets)
    return (time.perf_counter() - start) / rounds


def run_quick(minimum_speedup: float = 1.2) -> int:
    sets = build_rounding_sets(seed=0)
    layer_count = len(sets[0][0])
    print(f"[bench] rounding-point batch: {len(sets)} starts x "
          f"{layer_count} layers ({WORKLOAD}), "
          f"{len({hw for _, hw in sets})} distinct derived hardware configs")

    assert_bit_identical(sets)
    print("[bench] cross-start batch bit-identical to per-start evaluation: OK")

    per_start = time_side(score_per_start, sets, ROUNDS)
    cross_start = time_side(score_cross_start, sets, ROUNDS)
    speedup = per_start / cross_start
    print(f"[bench] per-start batches : {per_start * 1e3:8.2f} ms/rounding point")
    print(f"[bench] cross-start batch : {cross_start * 1e3:8.2f} ms/rounding point")
    print(f"[bench] speedup           : {speedup:.2f}x (bar: >={minimum_speedup}x)")
    if speedup < minimum_speedup:
        print(f"[bench] FAIL: cross-start rounding evaluation below "
              f"{minimum_speedup}x", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run the CI smoke (correctness + speedup bar)")
    parser.add_argument("--min-speedup", type=float, default=1.2)
    args = parser.parse_args()
    if not args.quick:
        parser.error("this benchmark only has a --quick mode")
    np.random.seed(0)
    return run_quick(minimum_speedup=args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
