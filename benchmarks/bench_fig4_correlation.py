"""Benchmark regenerating Figure 4: differentiable-model correlation."""

from repro.experiments import fig4_correlation


def test_fig4_model_correlation(benchmark, record_results):
    stats = benchmark.pedantic(
        fig4_correlation.run,
        kwargs={"num_configs": 10, "mappings_per_config": 20, "seed": 0},
        rounds=1, iterations=1,
    )
    record_results(
        benchmark,
        latency_mae_pct=stats["latency"].mean_absolute_error_pct,
        energy_mae_pct=stats["energy"].mean_absolute_error_pct,
        edp_mae_pct=stats["edp"].mean_absolute_error_pct,
        edp_within_1pct=stats["edp"].within_one_pct,
        paper_latency_mae_pct=0.01,
        paper_energy_mae_pct=0.18,
    )
    # Reproduction check: the differentiable model tracks the reference model.
    assert stats["latency"].mean_absolute_error_pct < 1.0
    assert stats["edp"].within_one_pct > 0.9
