"""GD inner-loop throughput: per-layer vs layer-batched vs batched + tape.

The DOSA search spends essentially its whole budget in the gradient-descent
inner loop (``gd_steps x num_start_points`` steps of loss forward/backward +
Adam).  This module measures that loop in steps/second for the three
implementations of the differentiable model:

* **per-layer** — one scalar-node graph per layer, re-traced every step (the
  seed implementation, ``DosaSettings(batched_model=False)``),
* **batched** — the :class:`~repro.core.dmodel.factors.NetworkFactors`
  layer-batched model: one array-op graph per network, re-traced every step
  (``batched_model=True, use_tape=False``),
* **batched + tape** — the same graph compiled once into a
  :class:`~repro.autodiff.tape.Tape` and replayed
  (``batched_model=True, use_tape=True`` — the default).

Besides the pytest-benchmark entries, the module runs standalone as the CI
smoke check for the GD path::

    PYTHONPATH=src python benchmarks/bench_gd_throughput.py --quick

which verifies the three implementations produce bit-identical losses from
the same start point on a ResNet-style workload and fails (non-zero exit) if
the batched + tape loop is less than 3x the per-layer steps/second.
"""

import argparse
import sys
import time

from repro.arch import HardwareConfig
from repro.autodiff import Adam, Tape
from repro.core.dmodel import (
    DifferentiableModel,
    LayerFactors,
    NetworkFactors,
    network_edp_loss,
    validity_penalty,
)
from repro.mapping import cosa_mapping
from repro.workloads import get_network

CONFIG = HardwareConfig(16, 32, 128)
PENALTY_WEIGHT = 1e9
LEARNING_RATE = 0.05
SPEEDUP_BAR = 3.0


def _start_mappings(workload: str):
    network = get_network(workload)
    repeats = [layer.repeats for layer in network.layers]
    return [cosa_mapping(layer, CONFIG) for layer in network.layers], repeats


def make_per_layer_stepper(mappings, repeats):
    """The seed inner loop: per-layer graphs, re-traced every step."""
    factors = [LayerFactors.from_mapping(m) for m in mappings]
    optimizer = Adam([p for f in factors for p in f.parameters()], lr=LEARNING_RATE)

    def step() -> float:
        optimizer.zero_grad()
        hardware = DifferentiableModel.derive_hardware(factors)
        performances = DifferentiableModel.evaluate_network(factors, hardware)
        loss = (network_edp_loss(performances, repeats)
                + PENALTY_WEIGHT * validity_penalty(factors))
        loss.backward()
        optimizer.step()
        return float(loss.data)

    return step


def make_batched_stepper(mappings, repeats, use_tape: bool):
    """The layer-batched inner loop, optionally replaying a compiled tape."""
    factors = NetworkFactors.from_mappings(mappings)
    optimizer = Adam(factors.parameters(), lr=LEARNING_RATE, fused=True)

    def build_loss():
        grid = factors.factor_grid()
        hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
        performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                            grid=grid)
        return (network_edp_loss(performances, repeats)
                + PENALTY_WEIGHT * validity_penalty(factors, grid=grid))

    tape = Tape(build_loss) if use_tape else None

    def step() -> float:
        optimizer.zero_grad()
        if tape is not None:
            loss = tape.forward()
            tape.backward()
        else:
            loss = build_loss()
            loss.backward()
        optimizer.step()
        return float(loss.data)

    return step


def measure_steps_per_second(step, steps: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        step()
    start = time.perf_counter()
    for _ in range(steps):
        step()
    return steps / (time.perf_counter() - start)


# --------------------------------------------------------------------------- #
# pytest-benchmark entries
# --------------------------------------------------------------------------- #
def test_gd_step_per_layer(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_per_layer_stepper(mappings, repeats)
    assert benchmark(step) > 0


def test_gd_step_batched(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_batched_stepper(mappings, repeats, use_tape=False)
    assert benchmark(step) > 0


def test_gd_step_batched_tape(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_batched_stepper(mappings, repeats, use_tape=True)
    assert benchmark(step) > 0


# --------------------------------------------------------------------------- #
# Standalone quick benchmark (CI smoke)
# --------------------------------------------------------------------------- #
def run_quick(workload: str = "resnet50", per_layer_steps: int = 10,
              batched_steps: int = 60) -> int:
    mappings, repeats = _start_mappings(workload)
    layer_count = len(mappings)

    # Correctness smoke: the three loops produce bit-identical first losses.
    first_losses = {
        "per-layer": make_per_layer_stepper(mappings, repeats)(),
        "batched": make_batched_stepper(mappings, repeats, use_tape=False)(),
        "batched+tape": make_batched_stepper(mappings, repeats, use_tape=True)(),
    }
    if len(set(first_losses.values())) != 1:
        print(f"FAIL: first-step losses disagree: {first_losses}")
        return 1
    print(f"{workload}: {layer_count} unique layers, first GD loss "
          f"{first_losses['per-layer']:.6e} (bit-identical across all three loops)")

    per_layer = measure_steps_per_second(
        make_per_layer_stepper(mappings, repeats), per_layer_steps)
    batched = measure_steps_per_second(
        make_batched_stepper(mappings, repeats, use_tape=False), batched_steps)
    taped = measure_steps_per_second(
        make_batched_stepper(mappings, repeats, use_tape=True), batched_steps)

    print(f"per-layer     : {per_layer:8.1f} steps/s")
    print(f"batched       : {batched:8.1f} steps/s ({batched / per_layer:.1f}x)")
    print(f"batched + tape: {taped:8.1f} steps/s ({taped / per_layer:.1f}x)")

    if taped < SPEEDUP_BAR * per_layer:
        print(f"FAIL: batched+tape speedup {taped / per_layer:.2f}x is below "
              f"the {SPEEDUP_BAR:.0f}x bar")
        return 1
    print(f"OK: batched+tape is {taped / per_layer:.1f}x the per-layer inner "
          f"loop (bar: {SPEEDUP_BAR:.0f}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run the standalone smoke benchmark and enforce "
                             f"the {SPEEDUP_BAR:.0f}x speedup bar")
    parser.add_argument("--workload", default="resnet50",
                        help="workload for --quick (default: resnet50)")
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("run under pytest-benchmark, or pass --quick")
    return run_quick(workload=args.workload)


if __name__ == "__main__":
    sys.exit(main())
