"""GD inner-loop throughput: per-layer vs layer-batched vs batched + tape
vs start-batched (multi-start).

The DOSA search spends essentially its whole budget in the gradient-descent
inner loop (``gd_steps x num_start_points`` steps of loss forward/backward +
Adam).  This module measures that loop in steps/second for the four
implementations of the differentiable model:

* **per-layer** — one scalar-node graph per layer, re-traced every step (the
  seed implementation, ``DosaSettings(batched_model=False)``),
* **batched** — the :class:`~repro.core.dmodel.factors.NetworkFactors`
  layer-batched model: one array-op graph per network, re-traced every step
  (``batched_model=True, use_tape=False``),
* **batched + tape** — the same graph compiled once into a
  :class:`~repro.autodiff.tape.Tape` and replayed
  (``batched_model=True, use_tape=True``),
* **multi-start** — the :class:`~repro.core.dmodel.factors.MultiStartFactors`
  start-batched model: all S start points x L layers in one ``(S, L, ...)``
  graph, so a single replayed step advances every start point
  (``batched_starts=True`` — the default search configuration).

Besides the pytest-benchmark entries, the module runs standalone as the CI
smoke check for the GD path::

    PYTHONPATH=src python benchmarks/bench_gd_throughput.py --quick

which verifies the implementations produce bit-identical losses from the same
start points on a ResNet-style workload and fails (non-zero exit) if the
batched + tape loop is less than 3x the per-layer steps/second, or if a
seeded 7-start multi-start descent is less than 2x faster (wall-clock) than
descending the same 7 start points sequentially.  ``--record PATH`` saves the
multi-start measurements as a JSON baseline
(``benchmarks/BENCH_gd_multistart.json`` is the checked-in one; see
benchmarks/README.md for methodology).
"""

import argparse
import json
import sys
import time

from repro.arch import HardwareConfig
from repro.autodiff import Adam, Tape, ops
from repro.core.dmodel import (
    DifferentiableModel,
    LayerFactors,
    MultiStartFactors,
    NetworkFactors,
    network_edp_loss,
    validity_penalty,
)
from repro.core.optimizer import generate_start_points
from repro.mapping import cosa_mapping
from repro.workloads import get_network

CONFIG = HardwareConfig(16, 32, 128)
PENALTY_WEIGHT = 1e9
LEARNING_RATE = 0.05
SPEEDUP_BAR = 3.0
MULTISTART_SPEEDUP_BAR = 2.0
MULTISTART_POINTS = 7


def _start_mappings(workload: str):
    network = get_network(workload)
    repeats = [layer.repeats for layer in network.layers]
    return [cosa_mapping(layer, CONFIG) for layer in network.layers], repeats


def make_per_layer_stepper(mappings, repeats):
    """The seed inner loop: per-layer graphs, re-traced every step."""
    factors = [LayerFactors.from_mapping(m) for m in mappings]
    optimizer = Adam([p for f in factors for p in f.parameters()], lr=LEARNING_RATE)

    def step() -> float:
        optimizer.zero_grad()
        hardware = DifferentiableModel.derive_hardware(factors)
        performances = DifferentiableModel.evaluate_network(factors, hardware)
        loss = (network_edp_loss(performances, repeats)
                + PENALTY_WEIGHT * validity_penalty(factors))
        loss.backward()
        optimizer.step()
        return float(loss.data)

    return step


def make_batched_stepper(mappings, repeats, use_tape: bool):
    """The layer-batched inner loop, optionally replaying a compiled tape."""
    factors = NetworkFactors.from_mappings(mappings)
    optimizer = Adam(factors.parameters(), lr=LEARNING_RATE, fused=True)

    def build_loss():
        grid = factors.factor_grid()
        hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
        performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                            grid=grid)
        return (network_edp_loss(performances, repeats)
                + PENALTY_WEIGHT * validity_penalty(factors, grid=grid))

    tape = Tape(build_loss) if use_tape else None

    def step() -> float:
        optimizer.zero_grad()
        if tape is not None:
            loss = tape.forward()
            tape.backward()
        else:
            loss = build_loss()
            loss.backward()
        optimizer.step()
        return float(loss.data)

    return step


def make_multistart_stepper(mapping_sets, repeats, use_tape: bool = True):
    """The start-batched inner loop: one (S, L, ...) graph for all starts.

    ``step()`` returns the per-start loss vector, so callers can check each
    start's loss bitwise against its own single-start batched stepper.
    """
    factors = MultiStartFactors.from_mapping_sets(mapping_sets)
    optimizer = Adam(factors.parameters(), lr=LEARNING_RATE, fused=True)
    traced = {}

    def build_loss():
        grid = factors.factor_grid()
        hardware = DifferentiableModel.derive_hardware(factors, grid=grid)
        performances = DifferentiableModel.evaluate_network(factors, hardware,
                                                            grid=grid)
        per_start = (network_edp_loss(performances, repeats)
                     + PENALTY_WEIGHT * validity_penalty(factors, grid=grid))
        traced["per_start"] = per_start
        return ops.fold_sum(per_start)

    tape = Tape(build_loss) if use_tape else None

    def step():
        optimizer.zero_grad()
        if tape is not None:
            tape.forward()
            tape.backward()
        else:
            build_loss().backward()
        optimizer.step()
        return traced["per_start"].data.copy()

    return step


def _seeded_start_mapping_sets(workload: str, count: int = MULTISTART_POINTS):
    """Seeded DOSA start points for ``workload`` (one mapping list per start)."""
    network = get_network(workload)
    repeats = [layer.repeats for layer in network.layers]
    points = generate_start_points(network, count=count, seed=0)
    return [point.mappings for point in points], repeats


def measure_steps_per_second(step, steps: int, warmup: int = 1) -> float:
    for _ in range(warmup):
        step()
    start = time.perf_counter()
    for _ in range(steps):
        step()
    return steps / (time.perf_counter() - start)


# --------------------------------------------------------------------------- #
# pytest-benchmark entries
# --------------------------------------------------------------------------- #
def test_gd_step_per_layer(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_per_layer_stepper(mappings, repeats)
    assert benchmark(step) > 0


def test_gd_step_batched(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_batched_stepper(mappings, repeats, use_tape=False)
    assert benchmark(step) > 0


def test_gd_step_batched_tape(benchmark):
    mappings, repeats = _start_mappings("bert")
    step = make_batched_stepper(mappings, repeats, use_tape=True)
    assert benchmark(step) > 0


def test_gd_step_multistart(benchmark):
    """One step advancing all 7 seeded start points of a bert search."""
    mapping_sets, repeats = _seeded_start_mapping_sets("bert")
    step = make_multistart_stepper(mapping_sets, repeats, use_tape=True)
    assert benchmark(step).shape == (MULTISTART_POINTS,)


# --------------------------------------------------------------------------- #
# Standalone quick benchmark (CI smoke)
# --------------------------------------------------------------------------- #
def run_quick(workload: str = "resnet50", per_layer_steps: int = 10,
              batched_steps: int = 60) -> int:
    mappings, repeats = _start_mappings(workload)
    layer_count = len(mappings)

    # Correctness smoke: the three loops produce bit-identical first losses.
    first_losses = {
        "per-layer": make_per_layer_stepper(mappings, repeats)(),
        "batched": make_batched_stepper(mappings, repeats, use_tape=False)(),
        "batched+tape": make_batched_stepper(mappings, repeats, use_tape=True)(),
    }
    if len(set(first_losses.values())) != 1:
        print(f"FAIL: first-step losses disagree: {first_losses}")
        return 1
    print(f"{workload}: {layer_count} unique layers, first GD loss "
          f"{first_losses['per-layer']:.6e} (bit-identical across all three loops)")

    per_layer = measure_steps_per_second(
        make_per_layer_stepper(mappings, repeats), per_layer_steps)
    batched = measure_steps_per_second(
        make_batched_stepper(mappings, repeats, use_tape=False), batched_steps)
    taped = measure_steps_per_second(
        make_batched_stepper(mappings, repeats, use_tape=True), batched_steps)

    print(f"per-layer     : {per_layer:8.1f} steps/s")
    print(f"batched       : {batched:8.1f} steps/s ({batched / per_layer:.1f}x)")
    print(f"batched + tape: {taped:8.1f} steps/s ({taped / per_layer:.1f}x)")

    if taped < SPEEDUP_BAR * per_layer:
        print(f"FAIL: batched+tape speedup {taped / per_layer:.2f}x is below "
              f"the {SPEEDUP_BAR:.0f}x bar")
        return 1
    print(f"OK: batched+tape is {taped / per_layer:.1f}x the per-layer inner "
          f"loop (bar: {SPEEDUP_BAR:.0f}x)")
    return 0


def run_quick_multistart(workload: str = "resnet50", steps: int = 25,
                         record: str | None = None) -> int:
    """Multi-start smoke: per-start loss parity + the >=2x wall-clock bar.

    Descends the same seeded 7 start points (a) sequentially, one
    batched + tape stepper per start, and (b) in one start-batched graph, and
    compares the wall-clock for ``steps`` GD steps of every start.
    """
    mapping_sets, repeats = _seeded_start_mapping_sets(workload)
    starts = len(mapping_sets)
    layer_count = len(mapping_sets[0])

    # Correctness smoke: each start's first multi-start loss is bit-identical
    # to the first loss of its own single-start batched + tape stepper.
    multi_first = make_multistart_stepper(mapping_sets, repeats)()
    single_first = [make_batched_stepper(mappings, repeats, use_tape=True)()
                    for mappings in mapping_sets]
    mismatches = [s for s in range(starts) if multi_first[s] != single_first[s]]
    if mismatches:
        print(f"FAIL: multi-start losses diverge from per-start losses at "
              f"start indices {mismatches}")
        return 1
    print(f"{workload}: {starts} seeded start points x {layer_count} unique "
          f"layers, per-start first losses bit-identical to sequential descents")

    sequential_seconds = 0.0
    for mappings in mapping_sets:
        rate = measure_steps_per_second(
            make_batched_stepper(mappings, repeats, use_tape=True), steps)
        sequential_seconds += steps / rate
    multistart_rate = measure_steps_per_second(
        make_multistart_stepper(mapping_sets, repeats), steps)
    multistart_seconds = steps / multistart_rate
    speedup = sequential_seconds / multistart_seconds

    print(f"sequential starts: {sequential_seconds:8.3f}s for {steps} steps "
          f"of each of {starts} starts")
    print(f"multi-start      : {multistart_seconds:8.3f}s for {steps} steps "
          f"of all {starts} starts ({speedup:.1f}x)")

    if speedup < MULTISTART_SPEEDUP_BAR:
        # A failing run must not clobber a checked-in --record baseline.
        print(f"FAIL: multi-start speedup {speedup:.2f}x is below the "
              f"{MULTISTART_SPEEDUP_BAR:.0f}x bar")
        return 1
    print(f"OK: multi-start descent is {speedup:.1f}x sequential starts "
          f"(bar: {MULTISTART_SPEEDUP_BAR:.0f}x)")

    if record:
        payload = {
            "benchmark": "gd_multistart",
            "workload": workload,
            "num_start_points": starts,
            "unique_layers": layer_count,
            "measured_steps": steps,
            "sequential_seconds": round(sequential_seconds, 4),
            "multistart_seconds": round(multistart_seconds, 4),
            "wall_clock_speedup": round(speedup, 2),
            "speedup_bar": MULTISTART_SPEEDUP_BAR,
            "command": ("PYTHONPATH=src python benchmarks/bench_gd_throughput.py "
                        "--quick --record benchmarks/BENCH_gd_multistart.json"),
        }
        with open(record, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"recorded baseline -> {record}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="run the standalone smoke benchmark and enforce "
                             f"the {SPEEDUP_BAR:.0f}x batched and "
                             f"{MULTISTART_SPEEDUP_BAR:.0f}x multi-start bars")
    parser.add_argument("--workload", default="resnet50",
                        help="workload for --quick (default: resnet50)")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="write the multi-start measurements to PATH as a "
                             "JSON baseline")
    args = parser.parse_args(argv)
    if not args.quick:
        parser.error("run under pytest-benchmark, or pass --quick")
    status = run_quick(workload=args.workload)
    if status:
        return status
    return run_quick_multistart(workload=args.workload, record=args.record)


if __name__ == "__main__":
    sys.exit(main())
