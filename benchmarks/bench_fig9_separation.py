"""Benchmark regenerating Figure 9 / Section 6.4: hardware vs mapping attribution."""

from repro.experiments import fig9_separation


def test_fig9_hw_vs_mapping_separation(benchmark, record_results):
    results = benchmark.pedantic(
        fig9_separation.run,
        kwargs={"workloads": ("resnet50", "bert"), "runs_per_workload": 1,
                "num_start_points": 1, "gd_steps": 400, "rounding_period": 100,
                "random_mappings_per_layer": 50, "seed": 0},
        rounds=1, iterations=1,
    )
    summary = fig9_separation.summarize(results)
    record_results(
        benchmark,
        end_over_start=summary["end_over_start"],
        hw_only_constant_mapper=summary["hw_only_constant_mapper"],
        dosa_mapping_vs_cosa=summary["dosa_mapping_vs_cosa"],
        dosa_mapping_vs_random=summary["dosa_mapping_vs_random"],
        paper_end_over_start=5.75,
        paper_hw_only=3.21,
        paper_vs_cosa=1.79,
        paper_vs_random=2.78,
    )
    # Shape checks at reduced scale: the searched design improves on its start
    # point, and the hardware it selects already helps under a constant
    # mapper.  The mapping-quality factors (paper: 1.79x vs CoSA, 2.78x vs a
    # 1000-sample random mapper) need the paper-scale GD budget to materialize
    # and are therefore recorded in extra_info rather than asserted here; run
    # `python -m repro.experiments.fig9_separation` for the full comparison.
    assert summary["end_over_start"] > 1.0
    assert summary["hw_only_constant_mapper"] > 1.0
    assert summary["dosa_mapping_vs_random"] > 0.0
