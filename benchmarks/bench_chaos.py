"""Chaos test: the service under deterministic fault injection.

Runs the job daemon as a real subprocess under a supervisor, arms a seeded
:class:`~repro.service.faults.FaultPlan` that — at deterministic points —
SIGKILLs a worker mid-search, stalls another past the watchdog, fails a
store append, crashes the whole daemon process mid-dispatch, and drops SSE
connections mid-stream.  Concurrently, multiple tenants submit seeded
search jobs through resilient clients (retry/backoff, idempotent submits,
auto-reconnecting event streams, restart-tolerant waits).  The harness
then asserts the service's recovery invariants:

* **zero lost jobs** — every submitted job reaches a terminal state, the
  registry holds exactly the submitted jobs (no duplicates from retried
  submits or requeues), and every one of them is ``done``,
* **the plan actually fired** — the shared fault ledger shows at least one
  worker kill, one worker stall, one store I/O fault, one daemon crash
  (plus a supervisor restart), and one SSE drop,
* **fairness** — with round-robin dispatch, every tenant's first completion
  lands within the first ``n_workers + tenants + 1`` completions (no tenant
  starves behind another's backlog even while the daemon is being killed),
* **byte-identity** — every served result equals the canonical outcome
  JSON of the same seeded search run offline through :func:`repro.optimize`:
  crashes, kills and retries must never perturb a result, only delay it.

CI smoke::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick

A longer soak: ``--jobs-per-tenant 5 --budget 120``.
"""

import argparse
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.service import Client, FaultPlan, FaultRule
from repro.utils.serialization import canonical_outcome_json

NETWORK = "bert"
STRATEGY = "random"
TENANTS = ("acme", "zeno")
#: Plan seed chosen so the probability rules' seeded hash draws fire early:
#: daemon.dispatch at hits {2, 4, 8, 12}, sse.frame at hits {1, 11, 15, ...}.
PLAN_SEED = 10
MAX_RESTARTS = 5

#: What each plan rule proves, by rule index (= ledger marker prefix).
RULE_LABELS = (
    "worker SIGKILL mid-search",
    "worker stall mid-search",
    "store append I/O fault",
    "daemon crash mid-dispatch",
    "SSE connection drop",
)


def build_plan(watchdog_seconds: float) -> FaultPlan:
    """The chaos schedule; rule order must match :data:`RULE_LABELS`.

    The worker-side rules use exact ``at`` hits (step callbacks are
    sequential within a worker process); the daemon-side rules use seeded
    probabilities because their hit counters are shared across handler /
    dispatcher threads, where an exact-count match could be skipped by a
    racing increment.
    """
    return FaultPlan(seed=PLAN_SEED, rules=(
        FaultRule(site="worker.step", action="kill",
                  match="/seed=0/", at=10),
        # The stall outlives the watchdog; whichever fires first — the
        # watchdog's SIGKILL or the pool breaking under the kill rule —
        # recovery is the same respawn + requeue path.  (The watchdog alone
        # is pinned deterministically in tests/test_service_faults.py.)
        FaultRule(site="worker.step", action="stall",
                  match="/seed=1/", at=5,
                  seconds=watchdog_seconds * 4),
        FaultRule(site="store.append", action="error", at=1),
        FaultRule(site="daemon.dispatch", action="exit", probability=0.25),
        FaultRule(site="sse.frame", action="drop", probability=0.10,
                  max_fires=2),
    ))


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class DaemonSupervisor:
    """Run the daemon as a subprocess; restart it when it crashes.

    This is the process-manager role (systemd, k8s) the service is designed
    to run under: a crashed daemon comes back on the same root and port, and
    its ``recover()`` re-registers every persisted job.
    """

    def __init__(self, root: Path, port: int, n_workers: int,
                 watchdog_seconds: float, tenant_quota: int,
                 plan_path: Path) -> None:
        self.root = root
        self.port = port
        self.restarts = 0
        self.failures: list[str] = []
        self._argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--root", str(root), "--port", str(port),
            "--n-workers", str(n_workers),
            "--step-period", "10",
            "--max-attempts", "5",
            "--tenant-quota", str(tenant_quota),
            "--watchdog-seconds", str(watchdog_seconds),
            "--worker-heartbeat-seconds", "0.5",
            "--fault-plan", str(plan_path),
        ]
        self._log = open(root / "daemon.log", "ab")
        self._stop = threading.Event()
        self._proc: subprocess.Popen | None = None
        self._thread = threading.Thread(target=self._watch, daemon=True)

    def _spawn(self) -> None:
        self._proc = subprocess.Popen(self._argv, stdout=self._log,
                                      stderr=subprocess.STDOUT)

    def start(self) -> None:
        self._spawn()
        self._thread.start()

    def _watch(self) -> None:
        while not self._stop.is_set():
            status = self._proc.wait()
            if self._stop.is_set():
                return
            if self.restarts >= MAX_RESTARTS:
                self.failures.append(
                    f"daemon kept crashing (exit {status}); gave up after "
                    f"{self.restarts} restarts")
                return
            self.restarts += 1
            print(f"  supervisor: daemon exited with status {status}; "
                  f"restart #{self.restarts}")
            self._spawn()

    def stop(self) -> None:
        """Graceful shutdown: SIGTERM -> daemon drains -> exit 0."""
        self._stop.set()
        proc = self._proc
        if proc is not None and proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                self.failures.append("daemon did not drain within 60s")
        self._thread.join(timeout=5)
        self._log.close()


def wait_healthy(client: Client, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            client.healthz()
            return
        except Exception as error:  # noqa: BLE001 - daemon still starting
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"daemon not healthy after {timeout:.0f}s: "
                    f"{error!r}") from None
            time.sleep(0.25)


def run_chaos(jobs_per_tenant: int, budget: int, n_workers: int,
              watchdog_seconds: float) -> int:
    if jobs_per_tenant < 2:
        print("FAIL: need --jobs-per-tenant >= 2 so every tenant has at "
              "least one fault-free job for the fairness bound")
        return 1
    root = Path(tempfile.mkdtemp(prefix="bench-chaos-"))
    plan_path = root / "fault_plan.json"
    build_plan(watchdog_seconds).save(plan_path)
    port = free_port()
    total_jobs = len(TENANTS) * jobs_per_tenant
    supervisor = DaemonSupervisor(
        root, port, n_workers=n_workers, watchdog_seconds=watchdog_seconds,
        tenant_quota=jobs_per_tenant + 1, plan_path=plan_path)
    print(f"chaos: {len(TENANTS)} tenants x {jobs_per_tenant} jobs "
          f"({STRATEGY}@{NETWORK}, budget={budget}), {n_workers} workers, "
          f"watchdog {watchdog_seconds:.0f}s, plan seed {PLAN_SEED}")
    supervisor.start()

    def make_client() -> Client:
        return Client(f"http://127.0.0.1:{port}", timeout=120.0,
                      retries=6, backoff_cap=2.0)

    wait_healthy(make_client())

    results: dict[int, dict] = {}
    completions: list[tuple[str, int]] = []
    failures: list[str] = []
    lock = threading.Lock()

    def one_job(tenant: str, seed: int, follow_events: bool) -> None:
        try:
            client = make_client()
            job = client.submit_search(NETWORK, strategy=STRATEGY,
                                       seed=seed, budget=budget,
                                       tenant=tenant)
            job_id = job["job_id"]
            if follow_events:
                # Follow the SSE stream through drops and daemon restarts;
                # the reconnect loop ends at the terminal frame.
                terminal = None
                for name, _ in client.events(job_id, reconnect=True,
                                             reconnect_grace=120.0):
                    if name in ("done", "failed", "cancelled"):
                        terminal = name
                if terminal != "done":
                    raise RuntimeError(
                        f"event stream ended with {terminal!r}")
            record = client.wait(job_id, timeout=600.0, poll=0.1,
                                 restart_grace=120.0)
            served = client.result_bytes(job_id, deterministic=True)
            with lock:
                completions.append((tenant, seed))
                results[seed] = {"job_id": job_id,
                                 "state": record["state"],
                                 "attempts": record.get("attempts"),
                                 "served": served}
        except Exception as error:  # noqa: BLE001 - recorded as a failure
            with lock:
                failures.append(f"{tenant}/seed={seed}: {error!r}")

    wall_start = time.perf_counter()
    threads = []
    for index in range(jobs_per_tenant):
        for tenant_index, tenant in enumerate(TENANTS):
            seed = index * len(TENANTS) + tenant_index
            threads.append(threading.Thread(
                target=one_job, args=(tenant, seed, seed % 2 == 0)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start

    # Registry census before shutdown: exactly the submitted jobs, no
    # duplicates minted by submit retries or crash/requeue cycles.
    census_problems = []
    try:
        records = make_client().jobs()
        if len(records) != total_jobs:
            census_problems.append(
                f"registry holds {len(records)} jobs, expected {total_jobs}")
        for record in records:
            if record["state"] != "done":
                census_problems.append(
                    f"job {record['job_id']} ended {record['state']!r} "
                    f"(error: {record.get('error')})")
    except Exception as error:  # noqa: BLE001 - daemon unreachable at the end
        census_problems.append(f"final registry census failed: {error!r}")

    supervisor.stop()
    print(f"all clients finished in {wall_seconds:.2f}s; "
          f"daemon restarts: {supervisor.restarts}")

    problems = list(supervisor.failures)
    problems.extend(failures)
    problems.extend(census_problems)
    if len(results) != total_jobs:
        problems.append(f"only {len(results)}/{total_jobs} jobs completed")

    # The plan must actually have fired: one ledger marker per rule.
    fired = sorted(path.name
                   for path in (root / "fault-ledger").glob("rule*"))
    print(f"fault ledger: {fired}")
    for index, label in enumerate(RULE_LABELS):
        if not any(name.startswith(f"rule{index}.") for name in fired):
            problems.append(f"fault rule {index} ({label}) never fired")
    if supervisor.restarts < 1:
        problems.append("the daemon was never crashed + restarted")

    # Fairness: round-robin dispatch must get every tenant started early,
    # even while workers are being killed out from under it.
    fairness_bound = n_workers + len(TENANTS) + 1
    order = [tenant for tenant, _ in completions]
    for tenant in TENANTS:
        position = order.index(tenant) if tenant in order else None
        if position is None:
            problems.append(f"tenant {tenant} completed nothing")
        elif position >= fairness_bound:
            problems.append(
                f"tenant {tenant}'s first completion was #{position + 1}, "
                f"past the fairness bound of {fairness_bound}")

    if problems:
        print(f"FAIL: {len(problems)} invariant violations:")
        for line in problems[:20]:
            print(f"  {line}")
        return 1

    # Byte-identity: every served result must equal the offline canonical
    # form of the same seeded search, faults or not.
    mismatched = []
    for seed, entry in sorted(results.items()):
        offline = repro.optimize(NETWORK, strategy=STRATEGY, seed=seed,
                                 budget=budget)
        if entry["served"] != canonical_outcome_json(offline).encode():
            mismatched.append(seed)
    if mismatched:
        print(f"FAIL: served results diverge from offline runs for seeds "
              f"{mismatched}")
        return 1

    retried = sum(1 for entry in results.values()
                  if (entry["attempts"] or 1) > 1)
    print(f"OK: {total_jobs} jobs done across {len(TENANTS)} tenants under "
          f"{len(fired)} injected faults + {supervisor.restarts} daemon "
          f"restart(s); {retried} jobs retried; every result byte-identical "
          "to its offline twin")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2 tenants x 3 jobs, small budget")
    parser.add_argument("--jobs-per-tenant", type=int, default=None,
                        help="jobs per tenant (default: 5, or 3 with "
                             "--quick)")
    parser.add_argument("--budget", type=int, default=None,
                        help="max_samples per job (default: 120, or 60 "
                             "with --quick)")
    parser.add_argument("--n-workers", type=int, default=2,
                        help="daemon fork-pool size (default: 2)")
    parser.add_argument("--watchdog-seconds", type=float, default=None,
                        help="daemon watchdog timeout (default: 6, or 4 "
                             "with --quick)")
    args = parser.parse_args(argv)
    jobs_per_tenant = args.jobs_per_tenant or (3 if args.quick else 5)
    budget = args.budget or (60 if args.quick else 120)
    watchdog = args.watchdog_seconds or (4.0 if args.quick else 6.0)
    return run_chaos(jobs_per_tenant=jobs_per_tenant, budget=budget,
                     n_workers=args.n_workers, watchdog_seconds=watchdog)


if __name__ == "__main__":
    sys.exit(main())
