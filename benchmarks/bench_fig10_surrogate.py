"""Benchmark regenerating Figures 10 and 11: latency-model accuracy."""

from repro.experiments import fig10_11_surrogate


def test_fig10_11_latency_model_accuracy(benchmark, record_results):
    study = benchmark.pedantic(
        fig10_11_surrogate.run,
        kwargs={"samples_per_layer": 8, "training_epochs": 300,
                "dosa_workloads": ("bert",), "dosa_gd_steps": 100,
                "dosa_rounding_period": 50, "seed": 0},
        rounds=1, iterations=1,
    )
    record_results(
        benchmark,
        random_mapping_spearman=study.random_mapping_accuracy,
        dosa_mapping_spearman=study.dosa_mapping_accuracy,
        paper_random_mapping={"analytical": 0.87, "dnn_only": 0.84, "analytical_dnn": 0.92},
        paper_dosa_mapping={"analytical": 0.97, "dnn_only": 0.79, "analytical_dnn": 0.97},
    )
    # Shape checks: every model ranks latencies far better than chance, and the
    # analytical/combined models stay accurate on unseen DOSA mappings.
    assert study.random_mapping_accuracy["analytical"] > 0.5
    assert study.random_mapping_accuracy["analytical_dnn"] > 0.5
    assert study.dosa_mapping_accuracy["analytical_dnn"] > 0.5
