"""Service load test: many concurrent clients against one job daemon.

Starts an in-process search-service daemon (the same :func:`create_server` /
:class:`SearchService` stack ``repro.cli serve`` runs), then fires N client
threads at it concurrently.  Each client submits one seeded search job,
follows it to completion (every fourth client over the SSE stream, the rest
by polling) and fetches the result.  The harness then:

* verifies **zero failures** across all clients,
* re-runs every job's search offline through :func:`repro.optimize` and
  verifies the served results are **byte-identical** (canonical outcome
  JSON, wall-clock stripped) — the service must be a transport, never a
  perturbation,
* reports the submit→done latency distribution (p50 / p99) and job
  throughput.

CI smoke (enforces the bars, records the baseline)::

    PYTHONPATH=src python benchmarks/bench_service.py --quick \\
        --record benchmarks/BENCH_service.json

A larger load: ``--clients 64 --budget 200 --n-workers 8``.
"""

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.service import (
    Client,
    SearchService,
    ServiceConfig,
    create_server,
    write_endpoint_file,
)
from repro.service.metrics import percentile
from repro.utils.serialization import canonical_outcome_json

NETWORK = "bert"
STRATEGY = "random"
MIN_CLIENTS = 16  # the acceptance floor for the concurrency bar


def run_load(clients: int, budget: int, n_workers: int,
             record: str | None = None) -> int:
    if clients < MIN_CLIENTS:
        print(f"FAIL: --clients {clients} is below the {MIN_CLIENTS}-client "
              "concurrency bar")
        return 1
    root = Path(tempfile.mkdtemp(prefix="bench-service-"))
    config = ServiceConfig(root=root, n_workers=n_workers,
                           queue_limit=max(64, clients), step_period=25)
    service = SearchService(config)
    service.start()
    server = create_server(service)
    write_endpoint_file(service, server)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    results: dict[int, dict] = {}
    failures: list[str] = []
    lock = threading.Lock()

    def one_client(seed: int) -> None:
        try:
            client = Client.from_root(root, timeout=600.0)
            t0 = time.perf_counter()
            job = client.submit_search(NETWORK, strategy=STRATEGY, seed=seed,
                                       budget=budget,
                                       tenant=f"tenant-{seed % 4}")
            job_id = job["job_id"]
            if seed % 4 == 0:
                # Every fourth client follows the SSE stream to completion
                # (exercises the event path under load); the rest poll.
                terminal = None
                for name, _ in client.events(job_id):
                    if name in ("done", "failed", "interrupted"):
                        terminal = name
                if terminal != "done":
                    raise RuntimeError(f"stream ended with {terminal!r}")
            client.wait(job_id, timeout=600.0, poll=0.05)
            latency = time.perf_counter() - t0
            served = client.result_bytes(job_id, deterministic=True)
            with lock:
                results[seed] = {"job_id": job_id, "latency": latency,
                                 "served": served}
        except Exception as error:  # noqa: BLE001 - recorded as a failure
            with lock:
                failures.append(f"seed={seed}: {error!r}")

    print(f"service load: {clients} concurrent clients x "
          f"{STRATEGY}@{NETWORK} budget={budget}, {n_workers} workers")
    wall_start = time.perf_counter()
    threads = [threading.Thread(target=one_client, args=(seed,))
               for seed in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_start

    metrics = Client.from_root(root).metrics()
    service.drain()
    server.shutdown()
    server.server_close()

    if failures:
        print(f"FAIL: {len(failures)}/{clients} clients failed:")
        for line in failures[:10]:
            print(f"  {line}")
        return 1

    latencies = [entry["latency"] for entry in results.values()]
    p50 = percentile(latencies, 50.0)
    p99 = percentile(latencies, 99.0)
    throughput = clients / wall_seconds
    print(f"all {clients} clients completed in {wall_seconds:.2f}s "
          f"({throughput:.1f} jobs/s)")
    print(f"submit->done latency: p50 {p50:.3f}s | p99 {p99:.3f}s "
          f"| max {max(latencies):.3f}s")
    print(f"cache hit rate across tenants: "
          f"{metrics['cache']['hit_rate']:.3f}")

    # Byte-identity: every served result must equal the offline canonical
    # form of the same seeded search.
    mismatched = []
    for seed, entry in sorted(results.items()):
        offline = repro.optimize(NETWORK, strategy=STRATEGY, seed=seed,
                                 budget=budget)
        if entry["served"] != canonical_outcome_json(offline).encode():
            mismatched.append(seed)
    if mismatched:
        print(f"FAIL: served results diverge from offline runs for seeds "
              f"{mismatched}")
        return 1
    print(f"OK: {clients} served results byte-identical to offline "
          f"repro.optimize() runs")

    if record:
        payload = {
            "benchmark": "service_load",
            "network": NETWORK,
            "strategy": STRATEGY,
            "clients": clients,
            "budget_samples": budget,
            "n_workers": n_workers,
            "failures": 0,
            "byte_identical_results": clients,
            "wall_seconds": round(wall_seconds, 3),
            "jobs_per_second": round(throughput, 2),
            "latency_p50_seconds": round(p50, 4),
            "latency_p99_seconds": round(p99, 4),
            "cache_hit_rate": round(metrics["cache"]["hit_rate"], 4),
            "command": ("PYTHONPATH=src python benchmarks/bench_service.py "
                        "--quick --record benchmarks/BENCH_service.json"),
        }
        with open(record, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"recorded baseline -> {record}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke: {MIN_CLIENTS} clients with a small "
                             "budget (bars: zero failures, byte-identity)")
    parser.add_argument("--clients", type=int, default=None,
                        help=f"concurrent clients (default: 32, or "
                             f"{MIN_CLIENTS} with --quick)")
    parser.add_argument("--budget", type=int, default=None,
                        help="max_samples per search job (default: 200, or "
                             "60 with --quick)")
    parser.add_argument("--n-workers", type=int, default=4,
                        help="daemon fork-pool size (default: 4)")
    parser.add_argument("--record", default=None, metavar="PATH",
                        help="write the measurements to PATH as a JSON "
                             "baseline")
    args = parser.parse_args(argv)
    clients = args.clients or (MIN_CLIENTS if args.quick else 32)
    budget = args.budget or (60 if args.quick else 200)
    return run_load(clients=clients, budget=budget, n_workers=args.n_workers,
                    record=args.record)


if __name__ == "__main__":
    sys.exit(main())
