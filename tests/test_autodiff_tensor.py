"""Tests for the autodiff Tensor: arithmetic, broadcasting, backward."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, no_grad
from repro.autodiff import ops


def scalar(value, requires_grad=True):
    return Tensor(np.array(value, dtype=float), requires_grad=requires_grad)


class TestForward:
    def test_add_mul(self):
        x = Tensor([1.0, 2.0])
        y = Tensor([3.0, 4.0])
        assert np.allclose((x + y).data, [4.0, 6.0])
        assert np.allclose((x * y).data, [3.0, 8.0])

    def test_scalar_broadcast(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((x + 1.0).data, [[2, 3], [4, 5]])
        assert np.allclose((2.0 * x).data, [[2, 4], [6, 8]])

    def test_division_and_power(self):
        x = Tensor([2.0, 4.0])
        assert np.allclose((1.0 / x).data, [0.5, 0.25])
        assert np.allclose((x**2).data, [4.0, 16.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose((a @ b).data, a.data)

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_reductions(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert x.sum().item() == 10.0
        assert x.mean().item() == 2.5
        assert x.max().item() == 4.0
        assert x.min().item() == 1.0
        assert x.prod().item() == 24.0


class TestBackward:
    def test_simple_chain(self):
        x = scalar(3.0)
        y = (x * x + 2.0 * x + 1.0)
        y.backward()
        assert x.grad == pytest.approx(2 * 3.0 + 2.0)

    def test_shared_subexpression_accumulates(self):
        x = scalar(2.0)
        y = x * x
        z = y + y
        z.backward()
        assert x.grad == pytest.approx(8.0)

    def test_broadcast_gradient_shape(self):
        x = Tensor(np.ones((3, 1)), requires_grad=True)
        y = Tensor(np.ones((1, 4)), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad.shape == (3, 1)
        assert y.grad.shape == (1, 4)
        assert np.allclose(x.grad, 4.0)
        assert np.allclose(y.grad, 3.0)

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_suppresses_graph(self):
        with no_grad():
            x = Tensor([1.0], requires_grad=True)
            y = x * 2
        assert not y.requires_grad

    def test_zero_grad(self):
        x = scalar(1.0)
        (x * 3).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_breaks_graph(self):
        x = scalar(2.0)
        y = (x * 3).detach()
        assert not y.requires_grad

    def test_gradcheck_polynomial(self):
        x = Tensor(np.array([1.5, -0.5, 2.0]), requires_grad=True)

        def func(inputs):
            (a,) = inputs
            return (a**3 - 2.0 * a + 1.0).sum()

        assert check_gradients(func, [x])

    def test_gradcheck_matmul(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 2)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(2, 4)), requires_grad=True)

        def func(inputs):
            x, y = inputs
            return (x @ y).sum()

        assert check_gradients(func, [a, b])

    def test_gradcheck_division_prod(self):
        x = Tensor(np.array([1.3, 2.7, 0.9]), requires_grad=True)
        y = Tensor(np.array([2.0, 0.5, 1.5]), requires_grad=True)

        def func(inputs):
            a, b = inputs
            return (a / b).prod()

        assert check_gradients(func, [x, y])

    def test_gradcheck_indexing(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)

        def func(inputs):
            (a,) = inputs
            return a[0] * a[2] + a[1]

        assert check_gradients(func, [x])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.5, max_value=5.0), min_size=2, max_size=6))
    def test_gradcheck_random_expressions(self, values):
        x = Tensor(np.array(values), requires_grad=True)

        def func(inputs):
            (a,) = inputs
            return ((a * a).sum() / a.sum() + a.prod() ** 0.1).sum()

        assert check_gradients(func, [x], rtol=1e-3, atol=1e-5)


class TestLeafGradients:
    def test_max_splits_ties(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5])

    def test_gradient_accumulates_across_backwards(self):
        x = scalar(1.0)
        (x * 2).backward()
        (x * 3).backward()
        assert x.grad == pytest.approx(5.0)
