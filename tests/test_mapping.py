"""Tests for the mapping package: representation, rounding, mappers, constraints."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import HardwareConfig
from repro.mapping import (
    LoopOrdering,
    Mapping,
    capacity_requirements,
    cosa_mapping,
    mapping_fits_hardware,
    mapping_is_valid,
    minimal_hardware_for_mapping,
    minimal_hardware_for_mappings,
    random_mapping,
    random_mapping_for_hardware,
    round_factors_for_dimension,
    round_mapping,
    validate_mapping,
)
from repro.mapping.mapping import identity_mapping, ordering_for_tensor
from repro.workloads import LayerDims, conv2d_layer, matmul_layer
from repro.workloads.registry import correlation_layer_pool


def fig3_layer() -> LayerDims:
    return LayerDims(R=1, S=1, P=56, Q=56, C=64, K=64, N=1, name="fig3")


def fig3_mapping() -> Mapping:
    mapping = Mapping(layer=fig3_layer())
    mapping.set_spatial(1, "C", 64)
    mapping.set_spatial(2, "K", 64)
    mapping.set_temporal(0, "Q", 14)
    mapping.set_temporal(3, "Q", 4)
    mapping.set_temporal(3, "P", 56)
    return mapping


# Strategy: layers with highly-composite-ish dimensions, as DNN layers are.
layer_strategy = st.builds(
    LayerDims,
    R=st.sampled_from([1, 3, 5, 7]),
    S=st.sampled_from([1, 3, 5, 7]),
    P=st.sampled_from([1, 7, 14, 28, 56, 112]),
    Q=st.sampled_from([1, 7, 14, 28, 56]),
    C=st.sampled_from([3, 16, 64, 128, 512]),
    K=st.sampled_from([8, 64, 256, 1000]),
    N=st.sampled_from([1, 2, 4]),
)


class TestMappingContainer:
    def test_defaults_are_all_ones(self):
        mapping = Mapping(layer=fig3_layer())
        assert mapping.factor_product("C") == 1.0
        assert mapping.spatial_product() == 1.0

    def test_factor_product(self):
        mapping = fig3_mapping()
        for dim in ("P", "Q", "C", "K"):
            assert mapping.factor_product(dim) == mapping.layer.dim(dim)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Mapping(layer=fig3_layer(), temporal=np.ones((2, 7)))

    def test_ordering_validation(self):
        with pytest.raises(ValueError):
            Mapping(layer=fig3_layer(), orderings=(LoopOrdering.WEIGHT_STATIONARY,))

    def test_ordering_for_tensor_places_irrelevant_innermost(self):
        order = ordering_for_tensor(LoopOrdering.WEIGHT_STATIONARY)
        # P, Q, N are irrelevant to weights and must appear before R, S, C, K.
        assert set(order[:3]) == {"P", "Q", "N"}

    def test_with_dram_inferred(self):
        mapping = Mapping(layer=fig3_layer())
        mapping.set_temporal(0, "Q", 14)
        inferred = mapping.with_dram_inferred()
        assert inferred.factor_product("Q") == pytest.approx(56)
        assert inferred.temporal_factor(3, "Q") == pytest.approx(4)

    def test_serialization_roundtrip(self):
        mapping = fig3_mapping()
        restored = Mapping.from_dict(mapping.as_dict())
        assert np.allclose(restored.temporal, mapping.temporal)
        assert np.allclose(restored.spatial, mapping.spatial)
        assert restored.orderings == mapping.orderings
        assert restored.layer.dims_key() == mapping.layer.dims_key()

    def test_describe_contains_spatial_loop(self):
        assert "spatial_for" in fig3_mapping().describe()

    def test_identity_mapping_is_valid(self):
        assert mapping_is_valid(identity_mapping(fig3_layer()))


class TestConstraints:
    def test_fig3_capacities_match_paper(self):
        caps = capacity_requirements(fig3_mapping())
        assert caps[0] == pytest.approx(4096)     # per-PE registers: one weight each
        assert caps[1] == pytest.approx(896)      # accumulator output tile
        assert caps[2] == pytest.approx(4096 + 896)  # scratchpad weights + inputs

    def test_fig3_minimal_hardware_matches_figure(self):
        config = minimal_hardware_for_mapping(fig3_mapping())
        assert config.pe_dim == 64
        assert config.accumulator_kb == 4      # 896 words x 4 B -> 3.5 KB -> 4 KB
        assert config.scratchpad_kb == 5       # 4992 words x 1 B -> 4.875 KB -> 5 KB

    def test_validate_detects_bad_product(self):
        mapping = fig3_mapping()
        mapping.set_temporal(3, "P", 55)
        assert any("multiply" in problem for problem in validate_mapping(mapping))

    def test_validate_detects_small_factor(self):
        mapping = fig3_mapping()
        mapping.set_temporal(0, "Q", 0.5)
        assert not mapping_is_valid(mapping)

    def test_validate_detects_illegal_spatial_position(self):
        mapping = fig3_mapping()
        mapping.spatial[0, 2] = 2.0  # spatial P at the register level: unsupported
        assert not mapping_is_valid(mapping)

    def test_fits_hardware(self):
        mapping = fig3_mapping()
        assert mapping_fits_hardware(mapping, HardwareConfig(64, 4, 8))
        assert not mapping_fits_hardware(mapping, HardwareConfig(32, 4, 8))
        assert not mapping_fits_hardware(mapping, HardwareConfig(64, 1, 8))
        assert not mapping_fits_hardware(mapping, HardwareConfig(64, 4, 2))

    def test_minimal_hardware_for_mappings_takes_max(self):
        small = cosa_mapping(matmul_layer(16, 16, 16), HardwareConfig(4, 8, 16))
        large = fig3_mapping()
        merged = minimal_hardware_for_mappings([small, large])
        assert merged.pe_dim == 64


class TestRounding:
    def test_rounding_preserves_valid_mapping(self):
        mapping = fig3_mapping()
        rounded = round_mapping(mapping)
        assert np.allclose(rounded.temporal, mapping.temporal)
        assert np.allclose(rounded.spatial, mapping.spatial)

    def test_rounding_fixes_fractional_factors(self):
        mapping = fig3_mapping()
        mapping.set_temporal(0, "Q", 13.7)
        rounded = round_mapping(mapping)
        assert mapping_is_valid(rounded)
        assert rounded.temporal_factor(0, "Q") == 14

    def test_max_spatial_cap(self):
        mapping = fig3_mapping()
        rounded = round_mapping(mapping, max_spatial=16)
        assert mapping_is_valid(rounded)
        assert rounded.spatial_factor(1, "C") <= 16
        assert rounded.spatial_factor(2, "K") <= 16

    @settings(max_examples=40, deadline=None)
    @given(layer_strategy, st.integers(0, 10_000))
    def test_rounding_random_perturbations_always_valid(self, layer, seed):
        rng = np.random.default_rng(seed)
        mapping = random_mapping(layer, seed=seed)
        noisy = mapping.copy()
        noisy.temporal *= rng.uniform(0.4, 2.5, size=noisy.temporal.shape)
        noisy.spatial *= rng.uniform(0.4, 2.5, size=noisy.spatial.shape)
        rounded = round_mapping(noisy, max_spatial=128)
        assert mapping_is_valid(rounded)


class TestRoundingEdgeCases:
    def test_remaining_exhausted_by_innermost_level(self):
        # Q=7 is prime: once the innermost factor takes all of it, every
        # outer position (including DRAM) must round to 1 regardless of its
        # raw value.
        layer = LayerDims(R=1, S=1, P=4, Q=7, C=8, K=8, N=1, name="edge")
        mapping = Mapping(layer=layer)
        mapping.set_temporal(0, "Q", 6.9)
        mapping.set_temporal(1, "Q", 5.0)
        mapping.set_temporal(2, "Q", 3.0)
        round_factors_for_dimension(mapping, "Q")
        assert mapping.temporal_factor(0, "Q") == 7
        assert mapping.temporal_factor(1, "Q") == 1
        assert mapping.temporal_factor(2, "Q") == 1
        assert mapping.temporal_factor(3, "Q") == 1

    def test_dimension_of_size_one(self):
        layer = LayerDims(R=1, S=1, P=4, Q=4, C=8, K=8, N=1, name="unit")
        mapping = Mapping(layer=layer)
        mapping.set_temporal(0, "R", 3.7)
        mapping.set_temporal(2, "R", 2.2)
        round_factors_for_dimension(mapping, "R")
        assert all(mapping.temporal_factor(level, "R") == 1
                   for level in range(4))

    def test_cap_below_one_is_rejected(self):
        mapping = fig3_mapping()
        with pytest.raises(ValueError):
            round_factors_for_dimension(mapping, "C", max_spatial=0.25)
        with pytest.raises(ValueError):
            round_mapping(mapping, max_spatial=0.999)

    def test_fractional_cap_rounds_to_nearest_integer(self):
        # A mesh bound computed as 15.999999… must behave as 16, not 15.
        mapping = fig3_mapping()
        rounded = round_mapping(mapping, max_spatial=15.999999)
        assert rounded.spatial_factor(1, "C") == 16
        assert rounded.spatial_factor(2, "K") == 16


class TestRandomMapper:
    @settings(max_examples=40, deadline=None)
    @given(layer_strategy, st.integers(0, 10_000))
    def test_random_mappings_are_valid(self, layer, seed):
        mapping = random_mapping(layer, seed=seed)
        assert mapping_is_valid(mapping)

    def test_spatial_cap_respected(self):
        layer = LayerDims(C=1024, K=1024, P=8, Q=8)
        for seed in range(10):
            mapping = random_mapping(layer, seed=seed, max_spatial=32)
            assert mapping.spatial_factor(1, "C") <= 32
            assert mapping.spatial_factor(2, "K") <= 32

    def test_seed_reproducibility(self):
        layer = conv2d_layer(64, 64, 28)
        a = random_mapping(layer, seed=7)
        b = random_mapping(layer, seed=7)
        assert np.allclose(a.temporal, b.temporal)
        assert np.allclose(a.spatial, b.spatial)
        assert a.orderings == b.orderings

    def test_random_mapping_for_hardware_fits(self):
        layer = conv2d_layer(64, 64, 28)
        config = HardwareConfig(16, 32, 128)
        mapping = random_mapping_for_hardware(layer, config, seed=0)
        assert mapping is not None
        assert mapping_fits_hardware(mapping, config)

    def test_random_mapping_for_hardware_can_fail(self):
        # A tiny accumulator cannot hold even one output row of a large layer
        # for most random mappings; with one attempt failure is expected.
        layer = conv2d_layer(512, 512, 56)
        config = HardwareConfig(1, 1, 1)
        result = random_mapping_for_hardware(layer, config, seed=1, max_attempts=1)
        assert result is None or mapping_fits_hardware(result, config)


class TestCosaMapper:
    @pytest.mark.parametrize("config", [
        HardwareConfig(4, 8, 32),
        HardwareConfig(16, 32, 128),
        HardwareConfig(64, 256, 512),
    ])
    def test_cosa_mappings_valid_and_fit(self, config):
        for layer in correlation_layer_pool()[:20]:
            mapping = cosa_mapping(layer, config)
            assert mapping_is_valid(mapping)
            assert mapping_fits_hardware(mapping, config)

    def test_cosa_uses_spatial_parallelism(self):
        config = HardwareConfig(16, 32, 128)
        mapping = cosa_mapping(conv2d_layer(64, 64, 56), config)
        assert mapping.spatial_factor(1, "C") == 16
        assert mapping.spatial_factor(2, "K") == 16

    def test_cosa_beats_random_mapping_on_average(self):
        from repro.arch import GemminiSpec
        from repro.timeloop import evaluate_mapping

        config = HardwareConfig(16, 32, 128)
        spec = GemminiSpec(config)
        layers = correlation_layer_pool()[:8]
        cosa_edp = np.mean([np.log(evaluate_mapping(cosa_mapping(l, config), spec).edp)
                            for l in layers])
        random_edp = np.mean([np.log(evaluate_mapping(random_mapping(l, seed=0, max_spatial=16), spec).edp)
                              for l in layers])
        assert cosa_edp < random_edp

    def test_cosa_rejects_bad_partition(self):
        with pytest.raises(ValueError):
            cosa_mapping(conv2d_layer(3, 8, 8), HardwareConfig(4, 8, 8), scratchpad_partition=1.5)
