"""Tests for the optimizers and the neural-network layer library."""

import numpy as np
import pytest

from repro.autodiff import Adam, SGD, Tensor, nn
from repro.autodiff.optim import LearningRateSchedule


class TestSGD:
    def test_minimizes_quadratic(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = SGD([x], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((x - 2.0) ** 2).sum()
            loss.backward()
            optimizer.step()
        assert x.data[0] == pytest.approx(2.0, abs=1e-3)

    def test_momentum_changes_trajectory(self):
        def run(momentum):
            x = Tensor(np.array([5.0]), requires_grad=True)
            optimizer = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(10):
                optimizer.zero_grad()
                ((x - 2.0) ** 2).sum().backward()
                optimizer.step()
            return float(x.data[0])

        assert run(0.9) != pytest.approx(run(0.0))

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_rejects_non_grad_parameters(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_minimizes_rosenbrock_like(self):
        x = Tensor(np.array([-1.0, 1.5]), requires_grad=True)
        optimizer = Adam([x], lr=0.05)
        for _ in range(800):
            optimizer.zero_grad()
            a, b = x[0], x[1]
            loss = (1.0 - a) ** 2 + 10.0 * (b - a * a) ** 2
            loss.backward()
            optimizer.step()
        assert float(x.data[0]) == pytest.approx(1.0, abs=0.05)
        assert float(x.data[1]) == pytest.approx(1.0, abs=0.1)

    def test_skips_parameters_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([x, y], lr=0.1)
        (x * 2).sum().backward()
        optimizer.step()
        assert float(y.data[0]) == 1.0
        assert float(x.data[0]) != 1.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], betas=(1.0, 0.9))

    def test_lr_schedule_decays(self):
        optimizer = Adam([Tensor([1.0], requires_grad=True)], lr=1.0)
        schedule = LearningRateSchedule(optimizer, decay=0.5, every=2)
        schedule.step()
        assert optimizer.lr == 1.0
        schedule.step()
        assert optimizer.lr == 0.5


class TestLinearMLP:
    def test_linear_shapes(self):
        layer = nn.Linear(4, 3, seed=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_mlp_parameter_count(self):
        model = nn.MLP(4, [8, 8], 1, seed=0)
        expected = 4 * 8 + 8 + 8 * 8 + 8 + 8 * 1 + 1
        assert model.num_parameters() == expected

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            nn.MLP(2, [2], 1, activation="swish")

    def test_mlp_fits_linear_function(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(128, 3))
        targets = features @ np.array([1.0, -2.0, 0.5]) + 0.3
        model = nn.MLP(3, [16, 16], 1, seed=1)
        optimizer = Adam(model.parameters(), lr=1e-2)
        for _ in range(400):
            optimizer.zero_grad()
            predictions = model(Tensor(features)).reshape(-1)
            loss = nn.mse_loss(predictions, Tensor(targets))
            loss.backward()
            optimizer.step()
        assert float(loss.data) < 0.05

    def test_state_dict_roundtrip(self):
        model = nn.MLP(3, [4], 1, seed=0)
        clone = nn.MLP(3, [4], 1, seed=99)
        clone.load_state_dict(model.state_dict())
        x = Tensor(np.random.default_rng(2).normal(size=(5, 3)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_load_state_dict_shape_mismatch(self):
        model = nn.MLP(3, [4], 1, seed=0)
        other = nn.MLP(3, [5], 1, seed=0)
        with pytest.raises(ValueError):
            other.load_state_dict(model.state_dict())


class TestLossesAndScaler:
    def test_mse_loss_zero_for_equal(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert nn.mse_loss(x, Tensor(np.array([1.0, 2.0]))).item() == 0.0

    def test_l1_loss(self):
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([2.0, 1.0]))
        assert nn.l1_loss(pred, target).item() == pytest.approx(1.5)

    def test_huber_matches_mse_for_small_errors(self):
        pred = Tensor(np.array([0.1, -0.1]))
        target = Tensor(np.array([0.0, 0.0]))
        huber = nn.huber_loss(pred, target, delta=1.0).item()
        assert huber == pytest.approx(0.5 * 0.01, abs=1e-9)

    def test_standard_scaler(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaler = nn.StandardScaler()
        transformed = scaler.fit_transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_scaler_requires_fit(self):
        with pytest.raises(RuntimeError):
            nn.StandardScaler().transform(np.zeros((2, 2)))
